#!/usr/bin/env python
"""End-to-end gate for the service plane, across real process boundaries.

Boots the monitor daemon as a *subprocess* (``python -m
repro.service.monitor``), runs a Chord workload in this process, pushes
its logs over the framed socket transport, then proves the PR 8
acceptance bar:

1. **bit-identical audits** — N concurrent REST clients sharing the
   daemon all receive exactly the summary a direct in-process
   ``QueryProcessor`` audit of the same deployment produces;
2. **subscription alerting** — subscribers watching the audited vertex
   are told about an injected adversary's green→red downgrade within one
   push;
3. the daemon shuts down cleanly on SIGTERM.

Exit status 0 on success, 1 on any failed check — CI's ``service-e2e``
job runs exactly this file.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.apps.chord import ChordNetwork                     # noqa: E402
from repro.service import MonitorClient, ServicePusher, tup_spec  # noqa: E402
from repro.snp import Deployment, QueryProcessor              # noqa: E402
from repro.snp.adversary import ForkingNode                   # noqa: E402

CHECKS = []


def check(name, ok, detail=""):
    CHECKS.append((name, bool(ok)))
    print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f" — {detail}" if detail else ""),
          flush=True)
    return bool(ok)


def spawn_daemon():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--host", "127.0.0.1", "--push-port", "0", "--http-port", "0"],
        stdout=subprocess.PIPE, env=env, text=True)
    line = proc.stdout.readline()
    try:
        ports = json.loads(line)
    except ValueError:
        proc.kill()
        raise SystemExit(f"daemon did not report ports, said: {line!r}")
    return proc, ports


def build_workload(adversary_name, seed=11):
    dep = Deployment(seed=seed, key_bits=256)
    net = ChordNetwork(dep, n_nodes=8, ring_bits=12, seed=seed,
                       node_overrides={adversary_name: ForkingNode})
    net.bootstrap(neighbors=2)
    net.stabilize(rounds=2)
    # A lookup that *routes through* the (future) adversary: a key
    # strictly inside its successor arc makes it the closest preceding
    # hop, so it resolves the lookup and the audited vertex's provenance
    # crosses its log. (A key the requester's own successor pointer
    # covers would be answered locally and audit nothing remote.)
    names = [name for name, _r in net.members]
    index = names.index(adversary_name)
    successor = names[(index + 1) % len(names)]
    key = (net.ring_id(successor) - 1) % net.size
    requester = names[index - 1]
    results = net.lookup(requester, key, "e2e-0")
    if not results:
        raise SystemExit("chord lookup produced no result")
    return dep, net, results[0]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent REST clients (acceptance: >= 16)")
    parser.add_argument("--subscribers", type=int, default=3)
    parser.add_argument("--alert-timeout", type=float, default=60.0,
                        help="seconds a subscriber may wait for the alert")
    parser.add_argument("--adversary", default="n3")
    args = parser.parse_args(argv)

    print("service e2e: building chord workload", flush=True)
    dep, net, target = build_workload(args.adversary)
    with QueryProcessor(dep) as qp:
        qp.refresh()
        direct = qp.why(target).summary()
    check("clean direct audit is green", direct["verdict"] == "green",
          f"verdict={direct['verdict']}")

    print("service e2e: starting daemon subprocess", flush=True)
    proc, ports = spawn_daemon()
    exit_code = 1
    try:
        pusher = ServicePusher(dep, "127.0.0.1", ports["push_port"])
        ack = pusher.push_once()
        check("first push accepted", ack is not None and not ack["shed"])

        watch = tup_spec(target)
        client = MonitorClient("127.0.0.1", ports["http_port"], timeout=60)

        streams = [client.subscribe([watch])
                   for _ in range(args.subscribers)]
        for stream in streams:
            banner = stream.next_event(timeout=30)
            assert banner["type"] == "subscribed"
            state = stream.events_until(
                lambda e: e.get("type") == "state", timeout=30)[-1]
            check("subscriber baseline is green",
                  state["verdict"] == "green")

        print(f"service e2e: {args.clients} concurrent clients", flush=True)
        results = [None] * args.clients
        errors = []

        def worker(slot):
            try:
                own = MonitorClient("127.0.0.1", ports["http_port"],
                                    timeout=120)
                results[slot] = own.query(watch)
            except Exception as exc:
                errors.append(f"client {slot}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(args.clients)]
        started = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        elapsed = time.monotonic() - started
        check("no client errors", not errors, "; ".join(errors[:3]))
        identical = all(out is not None and out.get("ok")
                        and out["result"] == direct for out in results)
        check(f"{args.clients} concurrent audits bit-identical to direct",
              identical, f"{elapsed:.2f}s wall")

        print("service e2e: injecting fork at " + args.adversary,
              flush=True)
        adversary = dep.node(args.adversary)
        adversary.fork_log(keep_upto=3)
        net.stabilize(rounds=1)   # the forked branch keeps operating
        push_at = time.monotonic()
        ack = pusher.push_once()
        check("post-fork push accepted",
              ack is not None and not ack["shed"])

        for index, stream in enumerate(streams):
            alert = stream.events_until(
                lambda e: e.get("type") == "alert",
                timeout=args.alert_timeout)[-1]
            latency = time.monotonic() - push_at
            ok = (alert["from"] == "green" and alert["to"] == "red"
                  and args.adversary in alert["faulty_nodes"])
            check(f"subscriber {index} alerted green->red",
                  ok, f"{latency:.2f}s after push")

        out = client.query(dict(watch, fresh=True))
        check("service audit convicts the forker",
              out.get("ok") and out["result"]["verdict"] == "red"
              and args.adversary in out["result"]["faulty_nodes"])
        with QueryProcessor(dep) as qp:
            qp.refresh()
            direct_red = qp.why(target).summary()
        check("direct audit agrees on the conviction",
              direct_red["verdict"] == "red"
              and args.adversary in direct_red["faulty_nodes"])

        for stream in streams:
            stream.close()
        status = client.status()
        print("daemon meter:", json.dumps(
            {k: v for k, v in status["meter"].items() if v}), flush=True)
        pusher.close()

        failed = [name for name, ok in CHECKS if not ok]
        exit_code = 1 if failed else 0
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    check("daemon exited cleanly on SIGTERM", proc.returncode == 0,
          f"returncode={proc.returncode}")
    failed = [name for name, ok in CHECKS if not ok]
    if failed:
        print(f"service e2e: FAILED ({len(failed)}): " + "; ".join(failed),
              flush=True)
        return 1
    print(f"service e2e: PASS ({len(CHECKS)} checks)", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
