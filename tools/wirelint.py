"""wirelint: static checks for the process-boundary serialization contract.

The wire layer (``repro.snp.wire``) promises two properties that plain
tests are bad at guarding — both rot silently as code grows, and both
produce heisenbugs when they do (hash-randomized dicts make the failure
probabilistic). This lint enforces them over the python AST, no imports:

**WL001 — boundary classes need an explicit wire path.** Every class
``wire.py`` imports from the library is a candidate to cross the
executor boundary. Each one must either define ``__reduce__`` /
``to_wire`` (it carries its own codec) or be constructed inside
``wire.py`` itself (the module is its codec). A class that merely
*passes through* via default pickling would drag process-specific state
— memoized ``hash()`` values, open handles — into worker processes.

**WL002 — no unordered iteration into hashed or signed payloads.**
Within the ``snp``/``crypto``/serialization modules, the argument of a
hashing or signing sink (``canonical_bytes``, ``sign``, ``verify``,
``sha256``/``.update``, Merkle helpers) must not iterate a dict or set
(``.items()``/``.keys()``/``.values()``, ``set(...)``,
``frozenset(...)``) unless the iteration is wrapped in ``sorted(...)``.
Set/dict order is per-process under hash randomization, so an unsorted
iteration signs a byte string another process cannot reproduce.

Run it over a source tree (CI does ``python tools/wirelint.py src``);
exits 1 when any violation is found.
"""

import ast
import sys
from pathlib import Path

#: Calls whose arguments become hashed/signed bytes.
SINK_NAMES = {
    "canonical_bytes", "sign", "verify", "update",
    "sha256", "sha1", "sha512", "md5", "blake2b",
    "MerkleTree", "merkle_root", "leaf_hash", "node_hash",
}

#: Attribute calls that iterate an unordered container.
UNORDERED_METHODS = {"items", "keys", "values"}

#: Constructors that yield an unordered container.
UNORDERED_BUILTINS = {"set", "frozenset"}

#: Directories (relative to the source root) whose modules hash and sign.
DETERMINISM_SCOPES = ("repro/snp", "repro/crypto", "repro/util")

WIRE_MODULE = "repro/snp/wire.py"

#: Methods that mark a class as carrying its own serialization codec.
CODEC_METHODS = {"__reduce__", "__reduce_ex__", "to_wire", "__getstate__"}


class Violation:
    __slots__ = ("path", "line", "col", "code", "message")

    def __init__(self, path, line, col, code, message):
        self.path = path
        self.line = line
        self.col = col
        self.code = code
        self.message = message

    def format(self):
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code}: {self.message}")


def _callee_name(call):
    """The last name component of a call's target (``f`` or ``o.f``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _parse(path):
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


# ------------------------------------------------- WL001: boundary classes


def _wire_imported_names(wire_tree):
    """Names ``wire.py`` imports from within the library."""
    names = []
    for node in ast.walk(wire_tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.split(".")[0] == "repro":
            for alias in node.names:
                names.append((alias.asname or alias.name, node.lineno))
    return names

def _locally_handled_names(wire_tree):
    """Names wire.py itself constructs (decode path) or subclasses."""
    handled = set()
    for node in ast.walk(wire_tree):
        if isinstance(node, ast.Call):
            name = _callee_name(node)
            if name is not None:
                handled.add(name)
        elif isinstance(node, ast.ClassDef):
            for base in node.bases:
                if isinstance(base, ast.Name):
                    handled.add(base.id)
    return handled


def _class_codec_index(src_root):
    """``class name → (path, has codec method)`` over the whole tree."""
    index = {}
    for path in sorted(src_root.rglob("*.py")):
        try:
            tree = _parse(path)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            has_codec = any(
                isinstance(item, ast.FunctionDef)
                and item.name in CODEC_METHODS
                for item in node.body
            )
            # First definition wins; duplicate class names across modules
            # are resolved pessimistically (any codec-less def counts).
            if node.name not in index or not has_codec:
                index[node.name] = (path, has_codec)
    return index


def check_boundary_classes(src_root, violations):
    wire_path = src_root / WIRE_MODULE
    if not wire_path.exists():
        return
    wire_tree = _parse(wire_path)
    handled = _locally_handled_names(wire_tree)
    index = _class_codec_index(src_root)
    for name, lineno in _wire_imported_names(wire_tree):
        entry = index.get(name)
        if entry is None:
            continue  # a function or constant, not a class
        _defined_in, has_codec = entry
        if has_codec or name in handled:
            continue
        violations.append(Violation(
            wire_path, lineno, 1, "WL001",
            f"class '{name}' crosses the executor boundary but defines "
            "no __reduce__/to_wire and is never constructed in wire.py; "
            "default pickling would carry process-specific state into "
            "workers",
        ))


# ------------------------------------------- WL002: unordered iteration


def _unordered_uses(node):
    """(line, col, what) for unordered iterations under *node*, skipping
    anything wrapped in ``sorted(...)``."""
    found = []

    def visit(current):
        if isinstance(current, ast.Call):
            name = _callee_name(current)
            if isinstance(current.func, ast.Name) and name == "sorted":
                return  # sorted(...) restores determinism for its subtree
            if isinstance(current.func, ast.Attribute) \
                    and name in UNORDERED_METHODS:
                found.append((current.lineno, current.col_offset,
                              f".{name}()"))
            elif isinstance(current.func, ast.Name) \
                    and name in UNORDERED_BUILTINS:
                found.append((current.lineno, current.col_offset,
                              f"{name}(...)"))
        for child in ast.iter_child_nodes(current):
            visit(child)

    visit(node)
    return found


def check_unordered_iteration(path, tree, violations):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        sink = _callee_name(node)
        if sink not in SINK_NAMES:
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for line, col, what in _unordered_uses(arg):
                violations.append(Violation(
                    path, line, col + 1, "WL002",
                    f"{what} iterated into '{sink}' without sorted(); "
                    "set/dict order is per-process, so the hashed or "
                    "signed bytes are not reproducible",
                ))


def _in_determinism_scope(path, src_root):
    rel = path.relative_to(src_root).as_posix()
    return any(rel.startswith(scope) for scope in DETERMINISM_SCOPES)


# --------------------------------------------------------------- driver


def lint(src_root):
    src_root = Path(src_root)
    violations = []
    check_boundary_classes(src_root, violations)
    for path in sorted(src_root.rglob("*.py")):
        if not _in_determinism_scope(path, src_root):
            continue
        try:
            tree = _parse(path)
        except SyntaxError as exc:
            violations.append(Violation(
                path, exc.lineno or 1, exc.offset or 1, "WL000",
                f"syntax error: {exc.msg}",
            ))
            continue
        check_unordered_iteration(path, tree, violations)
    # Nested sinks (sign(canonical_bytes(...))) would report the same
    # iteration once per sink; keep the first per source location.
    seen = set()
    unique = []
    for violation in violations:
        key = (str(violation.path), violation.line, violation.col,
               violation.code)
        if key not in seen:
            seen.add(key)
            unique.append(violation)
    return unique


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python tools/wirelint.py <src-root>", file=sys.stderr)
        return 2
    violations = []
    for root in argv:
        violations.extend(lint(root))
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"wirelint: {len(violations)} violation(s)")
        return 1
    print("wirelint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
