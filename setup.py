"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access, so
PEP 660 editable installs (``pip install -e .``) cannot build. ``python
setup.py develop`` installs the same editable package through the legacy
path. All metadata lives in pyproject.toml; this file only bridges the gap.
"""

from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
