#!/usr/bin/env python
"""Adversary gallery: every Byzantine behavior and how SNP exposes it.

Walks the threat model of paper Section 2.1 one attack at a time on the
MinCost network — fabrication, log tampering, equivocation (log forking),
query refusal, message suppression, and input lying — printing what the
investigator sees in each case.

Run:  python examples/adversary_gallery.py
"""

from repro import Deployment, QueryProcessor
from repro.apps.mincost import best_cost, build_paper_network, cost, link
from repro.snp.adversary import (
    FabricatorNode, ForkingNode, InputLiarNode, SilentNode,
    SuppressorNode, TamperingNode,
)


def _banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def fabrication():
    _banner("1. Message fabrication -> red send vertex")
    dep = Deployment(seed=41)
    nodes = build_paper_network(dep, node_overrides={"b": FabricatorNode})
    dep.run()
    nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
    dep.run()
    res = QueryProcessor(dep).why(best_cost("c", "d", 1))
    print(f"   faulty: {res.faulty_nodes()}")


def tampering():
    _banner("2. Log tampering -> hash chain fails to recompute")
    dep = Deployment(seed=42)
    nodes = build_paper_network(dep, node_overrides={"b": TamperingNode})
    dep.run()
    nodes["b"].tamper_entry(2, ("history, rewritten",))
    qp = QueryProcessor(dep)
    res = qp.why(best_cost("c", "d", 5))
    view = qp.mq.view_of("b")
    print(f"   b's view: {view.status} ({view.verdict_reason})")
    print(f"   faulty: {res.faulty_nodes()}")


def equivocation():
    _banner("3. Equivocation (forked log) -> consistency check")
    dep = Deployment(seed=43)
    nodes = build_paper_network(dep, node_overrides={"b": ForkingNode})
    dep.run()
    nodes["b"].fork_log(keep_upto=3)
    qp = QueryProcessor(dep)
    res = qp.why(best_cost("c", "d", 5))
    view = qp.mq.view_of("b")
    print(f"   b's view: {view.status} ({view.verdict_reason})")
    print(f"   faulty: {res.faulty_nodes()}")


def refusal():
    _banner("4. Query refusal -> yellow vertices (suspect, not proof)")
    dep = Deployment(seed=44)
    nodes = build_paper_network(dep, node_overrides={"b": SilentNode})
    dep.run()
    res = QueryProcessor(dep).why(best_cost("c", "d", 5))
    print(f"   suspects: {res.suspect_nodes()}  "
          f"(proven faulty: {res.faulty_nodes()})")


def suppression():
    _banner("5. Message suppression -> stale peers + red unsent outputs")
    dep = Deployment(seed=45)
    nodes = build_paper_network(dep, node_overrides={"b": SuppressorNode})
    dep.run()
    nodes["b"].suppress_to.add("c")
    nodes["b"].delete(link("b", "d", 3))
    dep.run()
    qp = QueryProcessor(dep)
    stale = nodes["c"].app.has_tuple(cost("c", "d", "b", 5))
    print(f"   c's table is stale: {stale}")
    res = qp.effects(cost("c", "d", "b", 5), node="b", scope=4)
    print(f"   damage assessment on b finds: faulty={res.faulty_nodes()}")


def input_lying():
    _banner("6. Input lying -> black, but the lie is the visible root cause")
    dep = Deployment(seed=46)
    nodes = build_paper_network(dep, node_overrides={"b": InputLiarNode})
    dep.run()
    nodes["b"].lie_insert(link("b", "d", 1))
    dep.run()
    res = QueryProcessor(dep).why(best_cost("c", "d", 3))
    roots = [v.describe() for v in res.base_causes()
             if v.tup == link("b", "d", 1)]
    print(f"   clean={res.is_clean()} (not automatically detectable)")
    print(f"   but the root cause is on display: {roots}")


if __name__ == "__main__":
    fabrication()
    tampering()
    equivocation()
    refusal()
    suppression()
    input_lying()
    print("\nDone. Every *detectable* fault produced red/yellow evidence; "
          "the input lie (by design) did not.")
