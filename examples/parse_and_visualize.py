#!/usr/bin/env python
"""Bonus example: text-DSL programs and graph export.

Writes the MinCost program in the DDlog-style surface syntax, runs it
under SNooPy, and exports the Figure-2 provenance tree as Graphviz dot and
JSON (the paper points at VisTrails-style visualization, Section 5.9).

Run:  python examples/parse_and_visualize.py
Then: dot -Tpng /tmp/fig2.dot -o fig2.png   (if graphviz is installed)
"""

from repro import Deployment, QueryProcessor, Tup
from repro.datalog.parser import parse_program
from repro.provgraph.export import to_dot, to_json

MINCOST = """
# The paper's Section 3.3 MinCost protocol, in surface syntax.
R1: cost(@X, Y, Y, K) :- link(@X, Y, K).
R2: cost(@C, D, X, K1+K2) :- link(@X, C, K1), bestCost(@X, D, K2),
    C != D, K1+K2 <= 255.
R3: bestCost(@X, D, min<K>) :- cost(@X, D, Z, K).
"""


def main():
    program = parse_program(MINCOST)
    print(f"parsed {len(program.rules)} rules: "
          f"{[r.name for r in program.rules]}")

    from repro.datalog import DatalogApp
    dep = Deployment(seed=9)
    factory = lambda node_id: DatalogApp(node_id, program)  # noqa: E731
    for name in "bcd":
        dep.add_node(name, factory)
    for x, y, k in (("b", "d", 3), ("d", "b", 3), ("b", "c", 2),
                    ("c", "b", 2), ("c", "d", 5), ("d", "c", 5)):
        dep.node(x).insert(Tup("link", x, y, k))
        dep.run()

    qp = QueryProcessor(dep)
    result = qp.why(Tup("bestCost", "c", "d", 5))
    print(f"query clean={result.is_clean()}, "
          f"|V|={len(result.graph)}")

    dot = to_dot(result.graph, title="why bestCost(@c,d,5)?")
    with open("/tmp/fig2.dot", "w") as handle:
        handle.write(dot)
    print(f"wrote /tmp/fig2.dot ({len(dot)} bytes)")

    blob = to_json(result.graph)
    with open("/tmp/fig2.json", "w") as handle:
        handle.write(blob)
    print(f"wrote /tmp/fig2.json ({len(blob)} bytes)")


if __name__ == "__main__":
    main()
