#!/usr/bin/env python
"""Chord forensics: lookups, finger provenance, and the Eclipse attack.

Reproduces the Chord-Lookup and Chord-Finger investigations of paper
Section 7.2. An Eclipse attacker [Singh et al.] tries to interpose itself
on overlay routes. Two attack flavors:

* **fabricated lookup results** — the attacker answers lookups it never
  legitimately resolved. Detected: deterministic replay cannot reproduce
  the message, so its send vertex turns red.
* **poisoned node knowledge** — the attacker lies about its *inputs*
  (knownNode base tuples pointing at itself). Not automatically detectable
  (paper Section 4.2), but the Chord-Finger provenance query shows every
  poisoned finger bottoming out at the attacker's inserts.

Run:  python examples/chord_eclipse.py
"""

from repro import Deployment, QueryProcessor
from repro.apps.chord import ChordNetwork, lookup_result
from repro.snp.adversary import FabricatorNode


def healthy_lookup():
    print("=" * 72)
    print("Chord-Lookup: which nodes were involved in this lookup?")
    print("=" * 72)
    dep = Deployment(seed=11)
    net = ChordNetwork(dep, n_nodes=10, ring_bits=10, seed=3)
    net.bootstrap(neighbors=2)
    net.stabilize(rounds=2)

    key = 500
    results = net.lookup("n0", key, "req-1")
    owner, owner_id = net.owner_of(key)
    print(f"\nlookup({key}) from n0 -> {results[0]}")
    print(f"ground truth owner: {owner} (ring id {owner_id})")

    qp = QueryProcessor(dep)
    res = qp.why(results[0], node="n0")
    hops = sorted({str(v.node) for v in res.vertices()})
    print(f"provenance spans nodes: {hops}")
    print(f"clean={res.is_clean()}")
    return dep, net


def eclipse_by_fabrication():
    print("\n" + "=" * 72)
    print("Eclipse attack, flavor 1: fabricated lookup results")
    print("=" * 72)
    dep = Deployment(seed=12)
    net = ChordNetwork(dep, n_nodes=10, ring_bits=10, seed=3,
                       node_overrides={"n4": FabricatorNode})
    net.bootstrap(neighbors=2)
    net.stabilize(rounds=2)

    attacker = dep.node("n4")
    bogus = lookup_result("n0", "req-evil", 500, "n4", net.ring_id("n4"))
    attacker.fabricate("+", bogus, "n0")
    dep.run()
    print(f"\nn0 received a forged result: {bogus}")

    qp = QueryProcessor(dep)
    res = qp.why(bogus, node="n0")
    print(res.pretty(max_depth=4))
    print(f"\nverdict: faulty={res.faulty_nodes()} — replay of n4's log "
          "cannot produce that send")


def eclipse_by_input_lies():
    print("\n" + "=" * 72)
    print("Eclipse attack, flavor 2: poisoned knownNode gossip")
    print("=" * 72)
    dep = Deployment(seed=13)
    net = ChordNetwork(dep, n_nodes=10, ring_bits=10, seed=3)
    net.bootstrap(neighbors=2)
    claimed = net.poison_known_nodes("n2")
    net.stabilize(rounds=3)
    print(f"\nn2 claims to know a node at ring id {claimed} "
          "(really itself)")

    qp = QueryProcessor(dep)
    for name, _rid in net.members:
        for finger in dep.node(name).app.tuples_of("finger"):
            if finger.args[2] == claimed:
                print(f"\npoisoned finger found: {finger} at {name}")
                res = qp.why(finger, node=name, scope=30)
                origin = [v for v in res.vertices()
                          if v.vtype == "insert"
                          and v.tup.relation == "knownNode"
                          and v.tup.args[1] == claimed]
                print(f"clean={res.is_clean()} (input lies are not "
                      "automatically detectable)")
                print("but the provenance bottoms out at:")
                for vertex in origin:
                    print(f"  {vertex.describe()}   <-- the attacker's lie")
                return


if __name__ == "__main__":
    healthy_lookup()
    eclipse_by_fabrication()
    eclipse_by_input_lies()
