#!/usr/bin/env python
"""Hadoop-Squirrel: auditing a MapReduce job with a corrupt mapper.

Reproduces paper Section 7.3 / Figure 4: a WordCount job whose output
claims an implausible number of 'squirrel's. The analyst queries the
provenance of the suspicious output tuple, sees one mapper contributing
far more than the others, zooms into that mapper, and finds that replaying
its task against the *registered* map program cannot reproduce what it
shipped — a provably corrupt worker.

Run:  python examples/hadoop_squirrel.py
"""

from repro import Deployment, QueryProcessor
from repro.apps.mapreduce import WordCountJob, OFFSETS
from repro.workloads import ZipfCorpus

N_MAPPERS = 3
BOGUS = 40


def main():
    print("=" * 72)
    print("Hadoop-Squirrel: why does the output say there are so many "
          "squirrels?")
    print("=" * 72)
    dep = Deployment(seed=31)
    store = {}
    job = WordCountJob(
        dep, store, n_mappers=N_MAPPERS, n_reducers=2,
        granularity=OFFSETS,
        corrupt_mappers={"map2": {"target_word": "squirrel",
                                  "extra_count": BOGUS}},
    )
    corpus = ZipfCorpus(n_words=200, vocabulary=40, seed=3,
                        planted={"squirrel": 5})
    results = job.run(corpus.splits(N_MAPPERS))
    truth = corpus.true_count("squirrel")

    print(f"\nWordCount says 'squirrel' appears {results['squirrel']} "
          f"times; the corpus really contains {truth}.")
    out = job.output_tuple_for("squirrel")
    print(f"suspicious output tuple: {out}")

    qp = QueryProcessor(dep)
    print("\nStep 1 — scope-3 macroquery (the reduce side, Figure 4 top):\n")
    shallow = qp.why(out, scope=3)
    print(shallow.pretty(max_depth=3))
    print("\nOne mapper shuffled far more squirrels than the others. "
          "Zooming in (scope 8):\n")
    deep = qp.why(out, scope=8)
    for vertex in deep.red_vertices():
        print(f"  RED: {vertex.describe()}")
    print(f"\nverdict: faulty nodes = {deep.faulty_nodes()}")

    stats = deep.stats
    print(f"\nquery cost: {stats.downloaded_bytes()/1024:.1f} kB "
          f"downloaded, {stats.events_replayed} events replayed, "
          f"~{stats.turnaround_seconds():.2f}s turnaround")


if __name__ == "__main__":
    main()
