#!/usr/bin/env python
"""BGP forensics: the Quagga-Disappear and Quagga-BadGadget queries.

Reproduces the two interdomain-routing investigations of paper Section 7.2:

1. **Why did that route disappear?** Alice's route to a prefix vanishes.
   The dynamic query traces the disappearance through AS j's export
   withdrawal to j's policy decision: j switched to a shorter route through
   customer c2, which its export filter does not announce to Alice.

2. **Why is this route fluttering?** A BadGadget [Griffin et al.] dispute
   wheel has no stable solution; the route's history shows it appearing
   and disappearing forever, and its provenance exposes the preference
   cycle — a misconfiguration, not an attack (everything stays black).

Run:  python examples/bgp_forensics.py
"""

from repro import Deployment, QueryProcessor
from repro.apps.bgp import (
    build_bad_gadget, build_disappear_scenario, route, trigger_disappear,
)


def disappear_investigation():
    print("=" * 72)
    print("Quagga-Disappear: why did Alice's route vanish?")
    print("=" * 72)
    dep = Deployment(seed=21)
    net, prefix = build_disappear_scenario(dep)
    net.converge()
    alice_routes = dep.node("alice").app.tuples_of("route")
    print(f"\nAlice's table before: {alice_routes}")

    trigger_disappear(net, prefix)
    print(f"Alice's table after:  "
          f"{dep.node('alice').app.tuples_of('route')}")

    qp = QueryProcessor(dep)
    gone = route("alice", prefix, ("alice", "j", "c1", "mid", "origin"))
    result = qp.why_disappear(gone)
    print("\nWhy did the route disappear?\n")
    print(result.pretty(max_depth=9))
    print(f"\nverdict: clean={result.is_clean()} — a legitimate policy "
          "decision at AS j (its export-filter choice token), not an attack")


def bad_gadget_investigation():
    print("\n" + "=" * 72)
    print("Quagga-BadGadget: why does this route keep changing?")
    print("=" * 72)
    dep = Deployment(seed=22)
    net, prefix = build_bad_gadget(dep)
    rounds = net.converge(max_rounds=12)
    print(f"\nran {rounds} rounds; {len(net.route_changes)} route changes "
          "(no fixpoint — the dispute wheel spins forever)")
    print("\nas1's route flapping (round, old path -> new path):")
    for change in net.route_changes:
        if change[1] == "as1":
            print(f"  round {change[0]:2d}: {change[3]} -> {change[4]}")

    qp = QueryProcessor(dep)
    direct = route("as1", prefix, ("as1", "as0"))
    intervals = qp.history_of(direct)
    print(f"\nhistorical intervals of the direct route at as1: "
          f"{len(intervals)} appearances")
    selection = net.routing_table("as1").get(prefix)
    if selection:
        result = qp.why(route("as1", prefix, selection[0]), scope=20)
        print(f"\ncurrent selection {selection[0]}: "
              f"clean={result.is_clean()} "
              "(BadGadget is a misconfiguration — nobody is lying)")


if __name__ == "__main__":
    disappear_investigation()
    bad_gadget_investigation()
