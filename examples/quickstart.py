#!/usr/bin/env python
"""Quickstart: the paper's Section 3.3 MinCost example, end to end.

Builds the five-router network from the paper's figure, runs the MinCost
protocol under SNooPy, and asks the Figure 2 question: *why does router c
have a best cost of 5 to router d?* The answer is the provenance tree —
every vertex black, bottoming out at link insertions — followed by a
demonstration of what changes when a node starts lying.

Run:  python examples/quickstart.py
"""

from repro import Deployment, QueryProcessor, Tup
from repro.apps.mincost import best_cost, build_paper_network, cost
from repro.snp.adversary import FabricatorNode


def healthy_network():
    print("=" * 72)
    print("Scenario 1: a healthy network")
    print("=" * 72)
    dep = Deployment(seed=1)
    nodes = build_paper_network(dep)
    dep.run()

    print("\nRouting state at c:")
    for tup in nodes["c"].app.tuples_of("bestCost"):
        print(f"  {tup}")

    qp = QueryProcessor(dep)
    result = qp.why(best_cost("c", "d", 5))
    print("\nWhy does bestCost(@c,d,5) exist?  (Figure 2)\n")
    print(result.pretty())
    print(f"\nverdict: clean={result.is_clean()}, "
          f"faulty={result.faulty_nodes()}")
    stats = result.stats
    print(f"cost: {stats.downloaded_bytes()/1024:.1f} kB downloaded, "
          f"{stats.logs_fetched} logs fetched, "
          f"{stats.events_replayed} events replayed, "
          f"~{stats.turnaround_seconds():.2f}s turnaround")


def compromised_network():
    print("\n" + "=" * 72)
    print("Scenario 2: router b is compromised and advertises a fake route")
    print("=" * 72)
    dep = Deployment(seed=2)
    nodes = build_paper_network(dep, node_overrides={"b": FabricatorNode})
    dep.run()

    # b fabricates a +cost message claiming a cost-1 route to d via b.
    nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
    dep.run()

    print("\nRouting state at c (poisoned):")
    for tup in nodes["c"].app.tuples_of("bestCost"):
        print(f"  {tup}")

    qp = QueryProcessor(dep)
    result = qp.why(best_cost("c", "d", 1))
    print("\nWhy does the suspicious bestCost(@c,d,1) exist?\n")
    print(result.pretty())
    print(f"\nverdict: faulty nodes = {result.faulty_nodes()}  "
          "(the red '!' vertex is b's unexplainable send)")


if __name__ == "__main__":
    healthy_network()
    compromised_network()
