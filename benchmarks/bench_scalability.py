"""Figure 9: Chord scalability — per-node traffic and log growth vs N.

Paper result: both overheads grow only slowly with system size (the
per-node cost follows Chord's O(log N) message growth, unlike PeerReview
whose witness sets make the *overhead itself* grow with N). The paper
sweeps N = 10..500; we sweep a scaled range and assert the sublinear
shape: doubling N must far less than double per-node cost.
"""

import math

import pytest

from scenarios import CHORD_STABILIZATION_PERIOD_S, print_table, run_chord


SWEEP = (8, 16, 32)


@pytest.fixture(scope="module")
def sweep_results():
    out = {}
    for n_nodes in SWEEP:
        scenario = run_chord(n_nodes=n_nodes, rounds=2, lookups=6, seed=90)
        dep = scenario.deployment
        duration = scenario.nominal_duration_s
        per_node_traffic = (
            dep.traffic.total_bytes() / len(dep.nodes) / duration
        )
        baseline_traffic = (
            dep.traffic.baseline_bytes() / len(dep.nodes) / duration
        )
        # Steady-state log growth: bytes beyond the post-bootstrap
        # baseline (the paper measures a stabilized ring).
        log_baseline = scenario.extra["log_baseline"]
        log_bytes = sum(
            node.log.size_bytes() - log_baseline.get(name, 0)
            for name, node in dep.nodes.items()
        )
        per_node_log = log_bytes / len(dep.nodes) / duration * 60 / 1e3
        out[n_nodes] = {
            "traffic_Bps": per_node_traffic,
            "baseline_Bps": baseline_traffic,
            "log_kB_min": per_node_log,
        }
    return out


class TestFigure9Shape:
    def test_per_node_traffic_grows_sublinearly(self, sweep_results):
        small = sweep_results[SWEEP[0]]["traffic_Bps"]
        large = sweep_results[SWEEP[-1]]["traffic_Bps"]
        n_ratio = SWEEP[-1] / SWEEP[0]
        assert large / small < n_ratio / 1.5, (
            "per-node traffic should follow O(log N), not O(N)"
        )

    def test_log_growth_sublinear(self, sweep_results):
        small = sweep_results[SWEEP[0]]["log_kB_min"]
        large = sweep_results[SWEEP[-1]]["log_kB_min"]
        n_ratio = SWEEP[-1] / SWEEP[0]
        assert large / small < n_ratio / 1.5

    def test_overhead_tracks_baseline(self, sweep_results):
        # The SNP overhead is a function of message count, so the ratio of
        # total to baseline traffic stays roughly constant across N
        # (PeerReview's would grow).
        ratios = [
            sweep_results[n]["traffic_Bps"] /
            max(1e-9, sweep_results[n]["baseline_Bps"])
            for n in SWEEP
        ]
        assert max(ratios) / min(ratios) < 1.8

    def test_print_figure9(self, sweep_results, benchmark):
        ratio = benchmark.pedantic(
            lambda: (sweep_results[SWEEP[-1]]["traffic_Bps"]
                     / sweep_results[SWEEP[0]]["traffic_Bps"]),
            rounds=1, iterations=1,
        )
        assert ratio < (SWEEP[-1] / SWEEP[0]) / 1.5
        rows = []
        for n_nodes in SWEEP:
            data = sweep_results[n_nodes]
            rows.append([
                n_nodes,
                f"{data['traffic_Bps']:.1f}",
                f"{data['baseline_Bps']:.1f}",
                f"{data['log_kB_min']:.2f}",
                f"{math.log2(n_nodes):.1f}",
            ])
        print_table(
            "Figure 9 — Chord scalability (paper: per-node cost follows "
            "O(log N), N = 10..500)",
            ["N", "traffic B/s", "baseline B/s", "log kB/min", "log2 N"],
            rows,
        )


class TestFigure9Benchmarks:
    def test_ring_construction_time(self, benchmark):
        benchmark.pedantic(
            lambda: run_chord(n_nodes=16, rounds=1, lookups=2, seed=91),
            rounds=1, iterations=1,
        )
