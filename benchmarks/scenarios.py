"""Benchmark scenario runners for the paper's five configurations.

Paper Section 7.1 configurations → scaled-down simulator equivalents
(scale factors are recorded in EXPERIMENTS.md):

=============  ===============================  =============================
Configuration  Paper                            Here (default)
=============  ===============================  =============================
Quagga         35 daemons / 10 ASes, ~15,000    10 ASes (2 tier-1, 3 mid,
               RouteViews updates over 15 min   5 stubs), 120 synthetic
                                                updates
Chord-Small    50 nodes, 15 simulated minutes   16 nodes, 3 stabilization
                                                rounds, 8 lookups
Chord-Large    250 nodes                        40 nodes
Hadoop-Small   1.2 GB corpus, 20 mappers /      ~1,200-word Zipf corpus,
               10 reducers                      4 mappers / 2 reducers
Hadoop-Large   10.3 GB corpus, 165 mappers      ~4,800-word corpus,
                                                8 mappers / 4 reducers
=============  ===============================  =============================

Each runner returns a :class:`ScenarioResult` with the deployment and a
*nominal duration*: the wall-clock time the paper's workload rate implies
for the amount of work executed (Quagga: 1,350 route updates/min; Chord:
one stabilization round per 50 s; Hadoop: the paper's measured job
runtimes, scaled by corpus size). Per-minute metrics (Figure 6) divide by
this nominal duration so the *shape* of the comparison matches the paper's
even though the simulator compresses time.
"""

from repro.apps.bgp import BgpNetwork, bgp_native_sizer
from repro.apps.chord import ChordNetwork
from repro.apps.mapreduce import WordCountJob, COMBINED
from repro.snp import Deployment
from repro.workloads import RouteViewsTrace, ZipfCorpus, tiered_as_topology

# Paper-reported per-operation costs for 1024-bit RSA on the evaluation
# hardware (Section 7.6): "1.3 ms and 66 µs per 1,024-bit signature".
PAPER_SIGN_SECONDS = 1.3e-3
PAPER_VERIFY_SECONDS = 66e-6
PAPER_HASH_SECONDS_PER_MB = 5e-3

QUAGGA_UPDATES_PER_MINUTE = 1350.0
CHORD_STABILIZATION_PERIOD_S = 50.0
HADOOP_SMALL_RUNTIME_S = 79.0
HADOOP_LARGE_RUNTIME_S = 255.0


class ScenarioResult:
    def __init__(self, name, deployment, nominal_duration_s, extra=None):
        self.name = name
        self.deployment = deployment
        self.nominal_duration_s = nominal_duration_s
        self.extra = extra or {}

    @property
    def traffic(self):
        return self.deployment.traffic


def run_quagga(n_updates=120, seed=0, t_batch=0.0):
    """Tiered-AS BGP under a synthetic RouteViews-style update stream."""
    dep = Deployment(seed=seed, key_bits=256, t_batch=t_batch)
    daemons, prefixes = tiered_as_topology(n_tier1=2, n_mid=3, n_stub=5,
                                           seed=seed)
    net = BgpNetwork(dep)
    by_prefix = {}
    for daemon in daemons:
        net.add_as(daemon)
        for prefix in daemon.originated:
            by_prefix[prefix] = daemon.asn
    net.converge(max_rounds=20)

    trace = RouteViewsTrace(n_updates=n_updates,
                            n_prefixes=len(by_prefix), seed=seed)
    # Map synthetic trace prefixes onto the stubs' prefixes round-robin.
    stub_prefixes = sorted(by_prefix)
    applied = 0
    from repro.apps.bgp import originate
    for index, event in enumerate(trace.events()):
        prefix = stub_prefixes[index % len(stub_prefixes)]
        asn = by_prefix[prefix]
        daemon = net.daemons[asn]
        node = dep.node(asn)
        if event.kind == "announce" and prefix not in daemon.originated:
            daemon.originated.add(prefix)
            node.insert(originate(asn, prefix))
            applied += 1
        elif event.kind == "withdraw" and prefix in daemon.originated:
            daemon.originated.discard(prefix)
            node.delete(originate(asn, prefix))
            applied += 1
        if applied % 10 == 0:
            net.converge(max_rounds=6)
    net.converge(max_rounds=10)
    nominal = max(1.0, 60.0 * n_updates / QUAGGA_UPDATES_PER_MINUTE)
    return ScenarioResult("Quagga", dep, nominal,
                          extra={"net": net, "updates": n_updates})


def run_chord(n_nodes=16, rounds=3, lookups=8, seed=0, ring_bits=12,
              t_batch=0.0, steady_state=True):
    """A Chord ring: bootstrap, periodic stabilization, lookups.

    With *steady_state* (the default, matching the paper's measurements of
    a stabilized ring), the traffic meter and log-size baselines are reset
    after bootstrap plus one warm-up round, so the one-time membership
    flood does not masquerade as per-round cost.
    """
    dep = Deployment(seed=seed, key_bits=256, t_batch=t_batch)
    net = ChordNetwork(dep, n_nodes=n_nodes, ring_bits=ring_bits, seed=seed)
    net.bootstrap(neighbors=2)
    net.stabilize(rounds=1)  # warm-up: gossip flood settles
    log_baseline = {}
    if steady_state:
        dep.traffic.reset()
        log_baseline = {name: node.log.size_bytes()
                        for name, node in dep.nodes.items()}
    net.stabilize(rounds=rounds)
    import random
    rng = random.Random(seed)
    for index in range(lookups):
        source = net.members[rng.randrange(len(net.members))][0]
        key = rng.randrange(net.size)
        net.lookup(source, key, f"bench-{index}")
    nominal = max(1.0, rounds * CHORD_STABILIZATION_PERIOD_S)
    return ScenarioResult(f"Chord-{n_nodes}", dep, nominal,
                          extra={"net": net, "log_baseline": log_baseline})


def run_hadoop(n_words=1200, n_mappers=4, n_reducers=2, seed=0,
               corrupt=False, granularity=COMBINED, t_batch=0.0,
               runtime_s=HADOOP_SMALL_RUNTIME_S):
    """A WordCount job over a Zipf corpus."""
    dep = Deployment(seed=seed, key_bits=256, t_batch=t_batch)
    store = {}
    corrupt_spec = (
        {f"map{n_mappers - 1}": {"target_word": "squirrel",
                                 "extra_count": 200}}
        if corrupt else None
    )
    job = WordCountJob(dep, store, n_mappers=n_mappers,
                       n_reducers=n_reducers, granularity=granularity,
                       corrupt_mappers=corrupt_spec)
    corpus = ZipfCorpus(n_words=n_words, vocabulary=max(50, n_words // 20),
                        seed=seed, planted={"squirrel": 7})
    results = job.run(corpus.splits(n_mappers))
    return ScenarioResult(f"Hadoop-{n_mappers}m", dep, runtime_s,
                          extra={"job": job, "results": results,
                                 "corpus": corpus})


def five_configurations(seed=0, scale=1.0):
    """The paper's five evaluation configurations (Section 7.1), scaled."""
    return {
        "Quagga": run_quagga(n_updates=int(120 * scale), seed=seed),
        "Chord-Small": run_chord(n_nodes=max(8, int(16 * scale)),
                                 seed=seed),
        "Chord-Large": run_chord(n_nodes=max(16, int(40 * scale)),
                                 seed=seed),
        "Hadoop-Small": run_hadoop(n_words=int(1200 * scale), seed=seed,
                                   runtime_s=HADOOP_SMALL_RUNTIME_S),
        "Hadoop-Large": run_hadoop(n_words=int(4800 * scale), n_mappers=8,
                                   n_reducers=4, seed=seed,
                                   runtime_s=HADOOP_LARGE_RUNTIME_S),
    }


def print_table(title, headers, rows):
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    print(f"\n{title}")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
