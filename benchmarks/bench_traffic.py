"""Figure 5: network traffic with SNooPy, normalized to baseline.

Paper result: overhead ranges from 16.1× (Quagga — tiny 68-byte messages,
so the fixed per-message additions dominate) down to 0.2% (Hadoop — megabyte
messages amortize them); Chord sits in between. Batching (Section 5.6)
drops Quagga's factor from 16.1 to 4.8.

We assert the *shape*: Quagga ≫ Chord > Hadoop ≈ 1, and each category
breakdown is non-trivial where the paper shows one (authenticators and
acknowledgments for all; proxy overhead only for Quagga).
"""

from scenarios import print_table, run_quagga

from repro.metrics import TRAFFIC_CATEGORIES


def _figure5_rows(configurations):
    rows = []
    for name, scenario in configurations.items():
        meter = scenario.traffic
        totals = meter.totals()
        baseline = totals["baseline"] or 1
        row = [name, f"{meter.overhead_factor():.2f}x"]
        row += [f"{totals[cat] / baseline:.3f}" for cat in
                TRAFFIC_CATEGORIES]
        rows.append(row)
    return rows


class TestFigure5Shape:
    def test_overhead_ordering_matches_paper(self, configurations):
        factor = {name: s.traffic.overhead_factor()
                  for name, s in configurations.items()}
        assert factor["Quagga"] > factor["Chord-Small"]
        assert factor["Chord-Small"] > factor["Hadoop-Small"]
        assert factor["Chord-Large"] > factor["Hadoop-Large"]

    def test_quagga_overhead_is_large(self, configurations):
        # Paper: 16.1x. Small messages -> dominated by fixed overheads.
        assert configurations["Quagga"].traffic.overhead_factor() > 4.0

    def test_hadoop_overhead_is_small(self, configurations):
        # Paper: +0.2%. Large messages amortize the fixed additions; at
        # our (much smaller) message sizes the factor stays below 2.
        assert configurations["Hadoop-Small"].traffic.overhead_factor() < 2.0
        assert configurations["Hadoop-Large"].traffic.overhead_factor() < 2.0

    def test_quagga_has_proxy_overhead_others_not(self, configurations):
        assert configurations["Quagga"].traffic.totals()["proxy"] > 0
        assert configurations["Hadoop-Small"].traffic.totals()["proxy"] == 0
        assert configurations["Chord-Small"].traffic.totals()["proxy"] == 0

    def test_authenticators_and_acks_present_everywhere(self,
                                                        configurations):
        for scenario in configurations.values():
            totals = scenario.traffic.totals()
            assert totals["authenticators"] > 0
            assert totals["acknowledgments"] > 0

    def test_print_figure5(self, configurations, benchmark):
        rows = benchmark.pedantic(
            _figure5_rows, args=(configurations,), rounds=1, iterations=1
        )
        print_table(
            "Figure 5 — traffic normalized to baseline "
            "(paper: Quagga 16.1x ... Hadoop 1.002x)",
            ["config", "total"] + [f"{c}/base" for c in TRAFFIC_CATEGORIES],
            rows,
        )
        factor = {name: s.traffic.overhead_factor()
                  for name, s in configurations.items()}
        assert factor["Quagga"] > factor["Chord-Small"] \
            > factor["Hadoop-Small"]
        assert factor["Hadoop-Small"] < 2.0


class TestBatchingAblation:
    """Section 7.4: Tbatch=100ms drops Quagga's factor (16.1 -> 4.8)."""

    def test_batching_reduces_quagga_overhead(self, configurations,
                                               benchmark):
        unbatched = configurations["Quagga"].traffic.overhead_factor()
        batched_run = benchmark.pedantic(
            lambda: run_quagga(n_updates=120, seed=0, t_batch=0.1),
            rounds=1, iterations=1,
        )
        batched = batched_run.traffic.overhead_factor()
        print(f"\nQuagga overhead: unbatched {unbatched:.2f}x, "
              f"Tbatch=100ms {batched:.2f}x "
              "(paper: 16.1x -> 4.8x)")
        assert batched < unbatched * 0.75


class TestFigure5Benchmarks:
    def test_quagga_scenario_runtime(self, benchmark):
        benchmark.pedantic(
            lambda: run_quagga(n_updates=40, seed=1),
            rounds=1, iterations=1,
        )
