"""Benchmark regression gate: compare smoke outputs against baselines.

CI runs the three benchmark smokes (bench_engine, bench_audit,
bench_parallel), then this script compares their JSON output against the
committed baselines in ``benchmarks/baselines/`` and fails the job when

* any tracked metric regresses by more than ``--threshold`` (default 30%)
  in its bad direction — slower speedups, more bytes fetched, more events
  replayed;
* a baseline metric disappears from the current output (schema drift must
  not silently retire a gate);
* ``bench_engine`` misses the three-way engine equivalence verdict
  (differential ≡ indexed ≡ naive) on any row, emits more output deltas
  than the naive reference derives, or the 1-event refresh re-derives
  more than a small fraction of the from-scratch suffix — all checked
  on the *current* output alone with zero tolerance;
* ``bench_parallel`` reports any serial ≠ parallel mismatch
  (``results_match: false``) — this one is checked on the *current*
  output alone and tolerates nothing. The same zero tolerance covers
  the warm-refresh and concurrent-querier phases: a serial ≠ resident
  divergence, a warm refresh that never hits the resident view cache
  (or rebuilds entries cold), or a missing warm/resident arm all fail
  the gate outright.

Only machine-portable metrics are tracked: deterministic counters (log
bytes, events replayed, signatures verified) and within-run ratios
(indexed-vs-naive speedup, cold-vs-requery ratios, parallel speedups).
Raw wall-clock seconds are never compared across machines.

Usage::

    python benchmarks/check_regression.py            # gate all three
    python benchmarks/check_regression.py --update-baselines

``--update-baselines`` copies the current outputs over the baselines —
run it (and commit the result) when a deliberate change moves the
numbers.
"""

import argparse
import json
import os
import shutil
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_DIR = BENCH_DIR / "baselines"

HIGHER_IS_BETTER = "higher"
LOWER_IS_BETTER = "lower"


# ------------------------------------------------------- metric extraction


# Below this much naive-evaluator wall time, the indexed-vs-naive speedup
# ratio is scheduler noise, not signal — smoke sizes can dip under a
# millisecond. Rows faster than this are not gated (the smoke's own
# indexed ≡ naive equality assertion still covers their correctness).
ENGINE_MIN_NAIVE_SECONDS = 0.05


def engine_metrics(payload):
    """Indexed-vs-naive speedup per workload/size (within-run ratio),
    plus the deterministic evaluation and scheduling counters.

    Join candidates are exact counts of the work the indexed engine
    enumerates — unlike speedups they gate at every size, smoke
    included, and the differential arm's delta counters gate the same
    way: more output deltas or support re-derivations for the same
    schedule means the delta plane started doing redundant work. The
    1-event refresh ratio (marginal deltas over a from-scratch
    re-derivation) is a within-run ratio, portable across machines.
    The static guard-placement counts (``plans`` section)
    catch a scheduler regression where guards drift from early (pre/mid,
    pruning partial matches) to full-binding (late) even when the tiny
    smoke wall times hide the slowdown."""
    out = {}
    for row in payload.get("results", []):
        key = f"{row['workload']}@{row['size']}"
        if "indexed_join_candidates" in row:
            out[f"{key}.indexed_join_candidates"] = (
                row["indexed_join_candidates"], LOWER_IS_BETTER)
        for field in ("delta_tuples_out", "support_rederivations"):
            if field in row:
                out[f"{key}.{field}"] = (row[field], LOWER_IS_BETTER)
        if row.get("naive_seconds", 0.0) < ENGINE_MIN_NAIVE_SECONDS:
            continue
        out[f"{key}.speedup"] = (row["speedup"], HIGHER_IS_BETTER)
    refresh = payload.get("refresh")
    if refresh:
        out["refresh.incremental_delta_tuples_out"] = (
            refresh["incremental_delta_tuples_out"], LOWER_IS_BETTER)
        out["refresh.ratio"] = (refresh["ratio"], LOWER_IS_BETTER)
    for plan in payload.get("plans", []):
        name = plan["program"]
        early = plan.get("guard_pre", 0) + plan.get("guard_mid", 0)
        out[f"plans.{name}.guard_early"] = (early, HIGHER_IS_BETTER)
        out[f"plans.{name}.guard_late"] = (plan.get("guard_late", 0),
                                           LOWER_IS_BETTER)
    return out


# The 1-event refresh must re-derive well under this fraction of what a
# from-scratch replay of the whole schedule derives — the differential
# engine's reason to exist. Generous enough for the tiny smoke sizes
# (observed ~0.01 at chord@8); the baseline comparison above tracks
# drift much more tightly.
REFRESH_MAX_RATIO = 0.1


def engine_hard_checks(payload):
    """Zero-tolerance checks on the current engine output alone: the
    indexed engine must never enumerate more join candidates than the
    naive scan does (indexes may only skip work); every row must carry
    the three-way engine equivalence verdict (differential ≡ indexed ≡
    naive, asserted byte-for-byte by the bench itself); the
    differential arm must not emit more output deltas than the naive
    reference derives for the same schedule; the 1-event refresh must
    stay far cheaper than a from-scratch re-derivation; and the static
    plans section must be present so the guard-schedule gate stays
    real."""
    failures = []
    for row in payload.get("results", []):
        indexed = row.get("indexed_join_candidates")
        naive = row.get("naive_join_candidates")
        if indexed is None or naive is None:
            failures.append(
                f"{row.get('workload')}@{row.get('size')}: bench output "
                "carries no join-candidate counters"
            )
            continue
        if indexed > naive:
            failures.append(
                f"{row['workload']}@{row['size']}: indexed engine "
                f"enumerated {indexed} join candidates, more than the "
                f"naive scan's {naive} (indexes must only skip work)"
            )
        key = f"{row['workload']}@{row['size']}"
        if not row.get("engines_agree", False):
            failures.append(
                f"{key}: bench output carries no three-way engine "
                "equivalence verdict (differential ≡ indexed ≡ naive "
                "was not checked)"
            )
        delta_out = row.get("delta_tuples_out")
        naive_out = row.get("naive_delta_tuples_out")
        if delta_out is None or naive_out is None:
            failures.append(
                f"{key}: bench output carries no delta counters "
                "(the differential gate would be vacuous)"
            )
        elif delta_out > naive_out:
            failures.append(
                f"{key}: differential engine emitted {delta_out} output "
                f"deltas, more than the naive reference's {naive_out} "
                "derivations (the delta plane must not do redundant "
                "work)"
            )
    refresh = payload.get("refresh")
    if not refresh:
        failures.append(
            "bench output has no refresh section (the 1-event "
            "incremental-vs-scratch gate would be vacuous)"
        )
    else:
        incremental = refresh.get("incremental_delta_tuples_out", 0)
        full = refresh.get("full_rederive_delta_tuples_out", 0)
        if full <= 0:
            failures.append(
                "refresh: from-scratch re-derivation produced no "
                "deltas (the refresh ratio is meaningless)"
            )
        elif incremental > full * REFRESH_MAX_RATIO:
            failures.append(
                f"refresh: 1-event refresh re-derived {incremental} "
                f"deltas vs {full} from scratch — above the "
                f"{REFRESH_MAX_RATIO:.0%} ceiling (incremental refresh "
                "must stay far cheaper than replaying the suffix)"
            )
    if not payload.get("plans"):
        failures.append(
            "bench output has no plans section (the guard-schedule "
            "gate would be vacuous)"
        )
    return failures


def audit_metrics(payload):
    """Cold-vs-requery ratios plus the requery's deterministic costs."""
    out = {}
    for name, entry in payload.get("scenarios", {}).items():
        for field, ratio in entry.get("ratios", {}).items():
            out[f"{name}.ratio.{field}"] = (ratio, HIGHER_IS_BETTER)
        requery = entry.get("requery_after_run", {})
        for field in ("log_bytes", "events_replayed"):
            if field in requery:
                out[f"{name}.requery.{field}"] = (requery[field],
                                                  LOWER_IS_BETTER)
    return out


# Below this much blob-arm wall time, the warm-refresh resident-vs-blob
# speedup is scheduler noise (smoke refreshes run in tens of
# milliseconds); the deterministic resident counters below still gate
# the cache's behaviour at every size.
WARM_MIN_BLOB_SECONDS = 0.1


def parallel_metrics(payload):
    """Parallel speedups and the serial build's deterministic costs.

    Only the *refresh* speedup is gated: its wall time is almost pure
    simulated RTT (50 delta fetches, trivial compute), so the ratio is
    stable across machines. The cold speedup mixes in GIL-serialized
    compute whose share grows on slower runners — it is reported in the
    JSON but covered here through the deterministic counters and
    ``results_match`` instead.

    The warm-refresh phase contributes the resident cache's
    deterministic counters (cache hits, pickle bytes the resident plane
    avoided shipping) and — when the blob arm ran long enough to be
    signal — the within-run resident-vs-blob speedup.
    """
    out = {}
    for name, entry in payload.get("scenarios", {}).items():
        speedups = entry.get("speedup_refresh", {})
        if "4" in speedups:
            out[f"{name}.refresh.speedup@4"] = (speedups["4"],
                                                HIGHER_IS_BETTER)
        serial = entry.get("cold", {}).get("1", {}).get("counters", {})
        for field in ("log_bytes", "events_replayed", "signatures_verified"):
            if field in serial:
                out[f"{name}.cold.{field}"] = (serial[field],
                                               LOWER_IS_BETTER)
        warm = entry.get("warm_refresh", {})
        blob_wall = min(
            (arm["wall_seconds"]
             for key, arm in warm.get("refresh", {}).items()
             if str(key).startswith("process-blob:")),
            default=0.0,
        )
        if blob_wall >= WARM_MIN_BLOB_SECONDS:
            out[f"{name}.warm.resident_speedup"] = (
                warm["resident_speedup"], HIGHER_IS_BETTER)
        for key, arm in warm.get("refresh", {}).items():
            if not str(key).startswith("process:"):
                continue
            resident = arm.get("resident", {})
            for field in ("view_cache_hits", "pickle_bytes_avoided"):
                if field in resident:
                    out[f"{name}.warm.{field}"] = (resident[field],
                                                   HIGHER_IS_BETTER)
    return out


def parallel_hard_checks(payload):
    """Zero-tolerance checks on the current output alone.

    ``results_match`` covers every arm the bench ran — thread *and*
    process pools — so any serial ≠ process mismatch (colors, verdicts,
    or merged non-timing counters) fails here; the presence check keeps
    the process arm from silently dropping out of the bench matrix.
    """
    failures = []
    for name, entry in payload.get("scenarios", {}).items():
        if not entry.get("results_match", False):
            failures.append(
                f"{name}: serial and parallel builds disagree "
                "(results_match is false)"
            )
        if not any(str(key).startswith("process:")
                   for key in entry.get("cold", {})):
            failures.append(
                f"{name}: bench output has no process arm (the "
                "serial ≡ process gate would be vacuous)"
            )
        warm = entry.get("warm_refresh")
        if warm is None:
            failures.append(
                f"{name}: bench output has no warm_refresh phase (the "
                "serial ≡ resident gate would be vacuous)"
            )
        else:
            if not warm.get("results_match", False):
                failures.append(
                    f"{name}: serial and resident warm refreshes "
                    "disagree (warm_refresh.results_match is false)"
                )
            resident_arms = [
                arm for key, arm in warm.get("refresh", {}).items()
                if str(key).startswith("process:")
            ]
            if not resident_arms:
                failures.append(
                    f"{name}: warm_refresh ran without a resident "
                    "process arm"
                )
            for arm in resident_arms:
                resident = arm.get("resident", {})
                if resident.get("view_cache_hits", 0) <= 0:
                    failures.append(
                        f"{name}: resident warm refresh never hit the "
                        "view cache"
                    )
                if resident.get("view_cache_misses", 0) > 0:
                    failures.append(
                        f"{name}: resident warm refresh rebuilt "
                        f"{resident['view_cache_misses']} views cold "
                        "(cache entries were lost between refreshes)"
                    )
        concurrent = entry.get("concurrent")
        if concurrent is not None and not concurrent.get("results_match",
                                                         False):
            failures.append(
                f"{name}: concurrent queriers diverged from the serial "
                "oracle (concurrent.results_match is false)"
            )
    return failures


def storage_metrics(payload):
    """Checkpoint-GC boundedness: the no-GC/GC size ratio and the GC'd
    steady-state bytes themselves (both deterministic counters)."""
    out = {}
    for name, entry in payload.get("scenarios", {}).items():
        out[f"{name}.gc_reduction"] = (entry["reduction_factor"],
                                       HIGHER_IS_BETTER)
        out[f"{name}.gc.mean_log_bytes"] = (
            entry["gc"]["mean_log_bytes"], LOWER_IS_BETTER)
        out[f"{name}.gc.max_log_bytes"] = (
            entry["gc"]["max_log_bytes"], LOWER_IS_BETTER)
    return out


def storage_hard_checks(payload):
    """Zero-tolerance: truncation must never dirty a healthy audit, and
    honest nodes must never be convicted of retention faults."""
    failures = []
    for name, entry in payload.get("scenarios", {}).items():
        if not entry.get("query_clean_no_gc", False):
            failures.append(
                f"{name}: the no-GC baseline audit is not clean (the "
                "ring itself is unhealthy; the GC comparison is void)"
            )
        if not entry.get("query_clean_gc", False):
            failures.append(
                f"{name}: post-GC audit of a healthy ring is not clean"
            )
        if entry.get("retention_faults", 0):
            failures.append(
                f"{name}: honest nodes convicted of retention faults"
            )
    return failures


def service_metrics(payload):
    """Deterministic counters from the service-plane bench. Wall-clock
    throughput and latency are reported in the JSON but never compared
    across machines; what gates is push efficiency (bytes the pusher
    shipped for the fixed workload — a delta regression shows up as a
    re-shipped log) and that subscription fan-out stayed dedup'd."""
    out = {}
    for name, entry in payload.get("scenarios", {}).items():
        pusher = entry.get("pusher", {})
        if "bytes_sent" in pusher:
            out[f"{name}.pusher.bytes_sent"] = (pusher["bytes_sent"],
                                                LOWER_IS_BETTER)
        meter = entry.get("meter", {})
        for field in ("pushes_shed", "push_retries", "alerts_dropped"):
            if field in meter:
                out[f"{name}.meter.{field}"] = (meter[field],
                                                LOWER_IS_BETTER)
    return out


def service_hard_checks(payload):
    """Zero-tolerance checks on the service bench's current output: the
    REST audits must be bit-identical to the direct ones, the injected
    adversary must be convicted through the service exactly as directly,
    and every standing subscriber must have received the green→red
    alert."""
    failures = []
    scenarios = payload.get("scenarios", {})
    if not scenarios:
        failures.append("BENCH_service.json carries no scenarios "
                        "(the service gate would be vacuous)")
    for name, entry in scenarios.items():
        if not entry.get("results_match", False):
            failures.append(
                f"{name}: service audits diverged from the direct "
                "in-process audit (results_match is false)"
            )
        if not entry.get("conviction_match", False):
            failures.append(
                f"{name}: the service audit did not convict the "
                "injected adversary exactly like the direct audit"
            )
        fanout = entry.get("fanout", {})
        subscribers = fanout.get("subscribers", 0)
        if subscribers <= 0:
            failures.append(f"{name}: fan-out phase ran no subscribers")
        elif fanout.get("alerts_delivered", 0) != subscribers:
            failures.append(
                f"{name}: only {fanout.get('alerts_delivered', 0)} of "
                f"{subscribers} subscribers received the downgrade alert"
            )
        meter = entry.get("meter", {})
        if meter.get("pushes_accepted", 0) < 2:
            failures.append(
                f"{name}: daemon accepted "
                f"{meter.get('pushes_accepted', 0)} pushes (needs the "
                "clean push and the post-fork push)"
            )
        for field in ("corrupt_frames", "garbage_bytes"):
            if meter.get(field, 0):
                failures.append(
                    f"{name}: transport damage on loopback "
                    f"({field}={meter[field]})"
                )
    return failures


BENCHMARKS = {
    "BENCH_engine.json": (engine_metrics, engine_hard_checks),
    "BENCH_audit.json": (audit_metrics, None),
    "BENCH_parallel.json": (parallel_metrics, parallel_hard_checks),
    "BENCH_storage.json": (storage_metrics, storage_hard_checks),
    "BENCH_service.json": (service_metrics, service_hard_checks),
}


# ------------------------------------------------------------- comparison


def compare(filename, current, baseline, threshold):
    """Failure strings for metrics of *current* vs *baseline*."""
    failures = []
    for key, (base_value, direction) in sorted(baseline.items()):
        if key not in current:
            failures.append(f"{filename}: metric {key} missing from "
                            "current output (present in baseline)")
            continue
        value, _dir = current[key]
        if base_value == 0:
            continue  # nothing to regress against
        if direction == HIGHER_IS_BETTER:
            floor = base_value * (1.0 - threshold)
            if value < floor:
                failures.append(
                    f"{filename}: {key} regressed: {value:g} < "
                    f"{floor:g} (baseline {base_value:g}, "
                    f"-{threshold:.0%} tolerance)"
                )
        else:
            ceiling = base_value * (1.0 + threshold)
            if value > ceiling:
                failures.append(
                    f"{filename}: {key} regressed: {value:g} > "
                    f"{ceiling:g} (baseline {base_value:g}, "
                    f"+{threshold:.0%} tolerance)"
                )
    return failures


def write_step_summary(reports, threshold):
    """Append per-suite verdicts and metric tables to the file named by
    ``$GITHUB_STEP_SUMMARY`` (the job-summary markdown GitHub renders).
    A no-op outside Actions."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Benchmark regression gate",
             f"Tolerance: ±{threshold:.0%} per metric "
             "(counters and within-run ratios only; wall-clock is "
             "never compared across machines).", ""]
    for filename, report in reports.items():
        verdict = "✅ pass" if not report["failures"] else "❌ **FAIL**"
        lines.append(f"### `{filename}` — {verdict}")
        rows = report.get("rows") or []
        if rows:
            lines.append("")
            lines.append("| metric | current | baseline | better |")
            lines.append("|---|---:|---:|---|")
            for metric, current, base, direction in rows:
                cur = "—" if current is None else f"{current:g}"
                lines.append(f"| `{metric}` | {cur} | {base:g} "
                             f"| {direction} |")
        for failure in report["failures"]:
            lines.append(f"- ⚠️ {failure}")
        lines.append("")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current-dir", type=Path, default=BENCH_DIR,
                        help="directory holding the just-produced "
                             "BENCH_*.json files")
    parser.add_argument("--baseline-dir", type=Path, default=BASELINE_DIR)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional slowdown tolerated per metric "
                             "(default 0.30)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy current outputs over the baselines "
                             "instead of gating")
    args = parser.parse_args(argv)

    failures = []
    reports = {}
    for filename, (extract, hard_checks) in BENCHMARKS.items():
        report = {"failures": [], "rows": []}
        reports[filename] = report
        current_path = args.current_dir / filename
        baseline_path = args.baseline_dir / filename
        if not current_path.exists():
            report["failures"].append(
                f"{filename}: no current output at "
                f"{current_path} (did the smoke run?)")
            failures.extend(report["failures"])
            continue
        payload = json.loads(current_path.read_text())
        if hard_checks is not None:
            report["failures"].extend(hard_checks(payload))
        if args.update_baselines:
            args.baseline_dir.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(current_path, baseline_path)
            print(f"baseline updated: {baseline_path}")
            failures.extend(report["failures"])
            continue
        if not baseline_path.exists():
            report["failures"].append(
                f"{filename}: no committed baseline at {baseline_path}")
            failures.extend(report["failures"])
            continue
        baseline = extract(json.loads(baseline_path.read_text()))
        current = extract(payload)
        report["rows"] = [
            (key, current.get(key, (None, None))[0], base_value, direction)
            for key, (base_value, direction) in sorted(baseline.items())
        ]
        file_failures = compare(filename, current, baseline,
                                args.threshold)
        report["failures"].extend(file_failures)
        failures.extend(report["failures"])
        if not file_failures:
            print(f"{filename}: {len(baseline)} metrics within "
                  f"{args.threshold:.0%} of baseline")

    write_step_summary(reports, args.threshold)

    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
