"""Audit-path benchmark: cold query vs. re-query-after-run.

The paper's query costs (Figure 8) are dominated by downloading,
verifying and replaying whole logs. This benchmark measures what the
incremental audit pipeline saves for a *standing* auditor: after a cold
macroquery, the deployment keeps running, and the auditor re-asks the
same question via ``QueryProcessor.refresh()`` — which fetches, verifies
and replays only each node's log suffix past the previously verified
head — instead of rebuilding every view from entry 1.

Three deployments (the paper's application families):

* **chord** — a ring after bootstrap + stabilization; the post-query run
  is one extra stabilization round plus a lookup;
* **bgp**   — the tiered-AS Quagga stand-in under a RouteViews-style
  stream; the post-query run announces fresh prefixes and re-converges;
* **hadoop** — a WordCount job; the post-query run is a second, smaller
  job wave on the same workers.

``python benchmarks/bench_audit.py`` writes ``BENCH_audit.json`` next to
this file; ``--smoke`` runs tiny sizes (used by CI). Both modes enforce
that the re-query fetches strictly fewer log bytes and replays strictly
fewer events than a cold query against the same (grown) deployment; the
full-size run additionally enforces the ≥5× log-byte win on chord@50.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from scenarios import run_chord, run_hadoop, run_quagga  # noqa: E402

from repro.apps.bgp import originate, route  # noqa: E402
from repro.snp import QueryProcessor  # noqa: E402
from repro.workloads import ZipfCorpus  # noqa: E402

OUT_PATH = Path(__file__).parent / "BENCH_audit.json"


def _measure(qp, fn):
    """Run *fn*, returning the QueryStats delta it accumulated on *qp*."""
    before = qp.mq.stats.copy()
    started = time.perf_counter()
    fn()
    wall = time.perf_counter() - started
    delta = qp.mq.stats.delta_since(before)
    return delta, wall


def _row(delta, wall):
    return {
        "log_bytes": delta.log_bytes,
        "events_replayed": delta.events_replayed,
        "signatures_verified": delta.signatures_verified,
        "logs_fetched": delta.logs_fetched,
        "delta_fetches": delta.delta_fetches,
        "auth_checks_skipped": delta.auth_checks_skipped,
        "auth_check_seconds": round(delta.auth_check_seconds, 6),
        "replay_seconds": round(delta.replay_seconds, 6),
        "turnaround_seconds": round(delta.turnaround_seconds(), 6),
        "wall_seconds": round(wall, 6),
    }


def _ratio(cold, requery, field):
    denominator = requery[field]
    if denominator <= 0:
        return float("inf") if cold[field] > 0 else 1.0
    return cold[field] / denominator


# --------------------------------------------------------------- scenarios


def chord_scenario(n_nodes, rounds, lookups, seed=7):
    scen = run_chord(n_nodes=n_nodes, rounds=rounds, lookups=lookups,
                     seed=seed)
    dep = scen.deployment
    net = scen.extra["net"]
    source = net.members[0][0]
    results = net.lookup(source, net.size // 3, "audit-probe")
    target = results[0]

    def query(qp):
        return qp.why(target, node=source, scope=6)

    def run_further():
        net.stabilize(rounds=1)
        net.lookup(net.members[1][0], net.size // 2, "audit-post")

    return f"chord@{n_nodes}", dep, query, run_further


def bgp_scenario(n_updates, extra_prefixes, seed=7):
    scen = run_quagga(n_updates=n_updates, seed=seed)
    dep = scen.deployment
    net = scen.extra["net"]
    # Query a stub's originated prefix at a transit AS: stable under the
    # post-query run below, which only announces *new* prefixes.
    asn = sorted(net.daemons)[0]
    table = net.routing_table(asn)
    prefix = sorted(table)[0]
    target = route(asn, prefix, table[prefix][0])

    def query(qp):
        return qp.why(target, scope=12)

    # run_further must be repeatable (bench_parallel drives several
    # waves: refresh, warm-refresh, concurrent); per-wave prefix names
    # keep every wave inserting genuinely new tuples.
    wave = [0]

    def run_further():
        wave[0] += 1
        origin_asn = sorted(net.daemons)[-1]
        daemon = net.daemons[origin_asn]
        for k in range(extra_prefixes):
            fresh = f"audit-prefix-{wave[0]}-{k}"
            daemon.originated.add(fresh)
            dep.node(origin_asn).insert(originate(origin_asn, fresh))
        net.converge(max_rounds=10)

    return f"bgp@{n_updates}", dep, query, run_further


def hadoop_scenario(n_words, seed=7):
    scen = run_hadoop(n_words=n_words, seed=seed)
    dep = scen.deployment
    job = scen.extra["job"]
    results = scen.extra["results"]
    word = max(sorted(results), key=lambda w: results[w])
    target = job.output_tuple_for(word)

    def query(qp):
        return qp.why(target, scope=8)

    wave = [0]

    def run_further():
        wave[0] += 1
        job.job_id = f"job-audit-{wave[0] + 1}"
        extra = ZipfCorpus(n_words=max(80, n_words // 4),
                           vocabulary=max(50, n_words // 20),
                           seed=seed + wave[0])
        job.run(extra.splits(len(job.mappers)))

    return f"hadoop@{n_words}", dep, query, run_further


# -------------------------------------------------------------------- main


def run_scenario(name, dep, query, run_further):
    qp = QueryProcessor(dep)
    cold_initial, wall_ci = _measure(qp, lambda: query(qp))

    run_further()

    def refresh_and_requery():
        qp.refresh()
        query(qp)

    requery, wall_rq = _measure(qp, refresh_and_requery)

    qp_cold = QueryProcessor(dep)
    cold_after, wall_ca = _measure(qp_cold, lambda: query(qp_cold))

    cold_after_row = _row(cold_after, wall_ca)
    requery_row = _row(requery, wall_rq)
    entry = {
        "cold_initial": _row(cold_initial, wall_ci),
        "requery_after_run": requery_row,
        "cold_after_run": cold_after_row,
        "ratios": {
            field: round(_ratio(cold_after_row, requery_row, field), 3)
            for field in ("log_bytes", "events_replayed",
                          "signatures_verified")
        },
        "epoch": qp.epoch,
    }
    print(f"{name:>14}  cold {cold_after_row['log_bytes']:>9} B "
          f"/ {cold_after_row['events_replayed']:>6} ev   "
          f"requery {requery_row['log_bytes']:>8} B "
          f"/ {requery_row['events_replayed']:>5} ev   "
          f"({entry['ratios']['log_bytes']}x bytes, "
          f"{entry['ratios']['events_replayed']}x events)")
    return entry


def check(name, entry, require_5x_log_bytes=False):
    # Explicit raises, not asserts: this is CI's acceptance gate and must
    # survive `python -O`.
    cold = entry["cold_after_run"]
    requery = entry["requery_after_run"]
    if requery["log_bytes"] >= cold["log_bytes"]:
        raise SystemExit(
            f"{name}: re-query fetched {requery['log_bytes']} log bytes, "
            f"cold query only {cold['log_bytes']}"
        )
    if requery["events_replayed"] >= cold["events_replayed"]:
        raise SystemExit(
            f"{name}: re-query replayed {requery['events_replayed']} "
            f"events, cold query only {cold['events_replayed']}"
        )
    if require_5x_log_bytes and entry["ratios"]["log_bytes"] < 5.0:
        raise SystemExit(
            f"{name}: log-byte win {entry['ratios']['log_bytes']}x "
            "below the 5x target"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI; still enforces the "
                             "strict cold-vs-requery inequalities")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        builders = [
            chord_scenario(n_nodes=10, rounds=2, lookups=2),
            bgp_scenario(n_updates=24, extra_prefixes=1),
            hadoop_scenario(n_words=300),
        ]
    else:
        builders = [
            chord_scenario(n_nodes=50, rounds=3, lookups=8),
            bgp_scenario(n_updates=120, extra_prefixes=2),
            hadoop_scenario(n_words=1200),
        ]

    scenarios = {}
    for name, dep, query, run_further in builders:
        entry = run_scenario(name, dep, query, run_further)
        check(name, entry,
              require_5x_log_bytes=(not args.smoke
                                    and name.startswith("chord")))
        scenarios[name] = entry

    payload = {
        "benchmark": "audit",
        "smoke": args.smoke,
        "scenarios": scenarios,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
