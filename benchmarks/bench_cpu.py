"""Figure 7: additional CPU load from crypto (RSA sign/verify, SHA hashing).

Paper result: below 4% of one core for all three applications; Quagga and
Chord dominated by the two signatures per message (authenticator + ack),
Hadoop by hashing its large data. Batching cuts Quagga's signature count
by ~6x (Section 7.6).

We count every crypto operation (the CryptoCounter on each node identity)
and convert to CPU load with the paper's measured per-operation costs for
1024-bit RSA (1.3 ms sign / 66 µs verify), which makes the percentages
directly comparable to the figure. We also measure this machine's actual
pure-Python RSA costs for reference.
"""

from scenarios import (
    PAPER_HASH_SECONDS_PER_MB, PAPER_SIGN_SECONDS, PAPER_VERIFY_SECONDS,
    print_table, run_quagga,
)

from repro.metrics import CpuReport


def _cpu_report(scenario):
    dep = scenario.deployment
    counter = dep.crypto_counter_totals()
    n_nodes = max(1, len(dep.nodes))
    per_node = CpuReport(
        counter, scenario.nominal_duration_s * n_nodes,
        sign_cost=PAPER_SIGN_SECONDS,
        verify_cost=PAPER_VERIFY_SECONDS,
        hash_cost_per_mb=PAPER_HASH_SECONDS_PER_MB,
    )
    return per_node


class TestFigure7Shape:
    def test_all_loads_below_paper_bound(self, configurations):
        # Paper: "the average additional CPU load is below 4% for all
        # three applications". Our workload rates are the paper's, so the
        # same bound (with slack for scale-down artifacts) must hold.
        for name, scenario in configurations.items():
            load = _cpu_report(scenario).load_percent()
            assert load < 15.0, (name, load)

    def test_signature_counts_track_messages(self, configurations):
        # Two signatures per message batch: authenticator + ack.
        for name, scenario in configurations.items():
            meter = scenario.traffic
            counter = scenario.deployment.crypto_counter_totals()
            expected = meter.batches_sent + meter.acks_sent
            assert counter.signatures >= expected, name

    def test_quagga_dominated_by_signatures(self, configurations):
        counter = configurations["Quagga"].deployment.crypto_counter_totals()
        sign_cost = counter.signatures * PAPER_SIGN_SECONDS
        verify_cost = counter.verifications * PAPER_VERIFY_SECONDS
        hash_cost = (counter.bytes_hashed / 1e6) * PAPER_HASH_SECONDS_PER_MB
        assert sign_cost > hash_cost
        assert sign_cost > verify_cost

    def test_batching_cuts_signatures(self, benchmark):
        plain = run_quagga(n_updates=80, seed=2, t_batch=0.0)
        batched = benchmark.pedantic(
            lambda: run_quagga(n_updates=80, seed=2, t_batch=0.1),
            rounds=1, iterations=1,
        )
        plain_sigs = plain.deployment.crypto_counter_totals().signatures
        batched_sigs = batched.deployment.crypto_counter_totals().signatures
        print(f"\nQuagga signatures: unbatched {plain_sigs}, "
              f"Tbatch=100ms {batched_sigs} "
              "(paper: ~6x reduction)")
        assert batched_sigs < plain_sigs * 0.6

    def test_print_figure7(self, configurations, benchmark):
        loads = benchmark.pedantic(
            lambda: {name: _cpu_report(s).load_percent()
                     for name, s in configurations.items()},
            rounds=1, iterations=1,
        )
        assert all(load < 15.0 for load in loads.values())
        rows = []
        for name, scenario in configurations.items():
            counter = scenario.deployment.crypto_counter_totals()
            report = _cpu_report(scenario)
            rows.append([
                name,
                f"{report.load_percent():.2f}%",
                counter.signatures,
                counter.verifications,
                f"{counter.bytes_hashed / 1e6:.2f}",
            ])
        print_table(
            "Figure 7 — additional CPU load from crypto "
            "(paper: < 4% of one core everywhere)",
            ["config", "load/core", "RSA sign", "RSA verify", "MB hashed"],
            rows,
        )


class TestFigure7Benchmarks:
    def test_local_rsa_sign_cost(self, benchmark, configurations):
        dep = configurations["Quagga"].deployment
        identity = dep.identity_of("t1-0")
        benchmark(lambda: identity.sign(("probe", 1)))

    def test_local_rsa_verify_cost(self, benchmark, configurations):
        dep = configurations["Quagga"].deployment
        identity = dep.identity_of("t1-0")
        signature = identity.sign(("probe", 1))
        public = identity.keypair.public_only()
        benchmark(
            lambda: identity.verify(public, ("probe", 1), signature)
        )
