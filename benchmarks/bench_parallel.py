"""Parallel view-build benchmark: worker-pool builds vs. serial.

The per-node retrieve→verify→replay pipeline is independent per queried
node (the views share only the querier's evidence store), so
``MicroQuerier`` schedules it onto a configurable executor. This
benchmark measures what that buys a *remote* auditor on the paper's three
application families, at 1/2/4/8 workers:

* **cold build** — ``QueryProcessor.prefetch()`` (build every node's
  verified view as one executor batch) followed by the scenario's
  macroquery;
* **refresh** — the deployment runs further, then ``refresh()`` advances
  every cached view by its log suffix (one delta fetch per node).

Downloads are modeled with ``Deployment.set_query_transport``: each
fetched segment sleeps RTT + bytes/bandwidth on the worker thread that
fetched it (the paper's Figure 8 query model assumes a 10 Mbps download;
the RTT here places the auditor across a WAN). Replay and signature
checks execute under the GIL, so the speedup comes from overlapping
downloads with each other and with compute — wall-clock converges toward
the pure-compute floor as workers are added.

Every run also enforces the determinism contract: vertex/color
fingerprints, proven-faulty verdicts and merged QueryStats counters must
be identical across all worker counts (``results_match``), or the run
fails. ``--smoke`` uses tiny sizes + a short RTT (used by CI, which then
compares the output against ``baselines/`` via check_regression.py);
the full run additionally enforces the ≥2x cold speedup at 4 workers on
chord@50. Writes ``BENCH_parallel.json`` next to this file.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_audit import (  # noqa: E402
    bgp_scenario, chord_scenario, hadoop_scenario,
)

from repro.snp import QueryProcessor  # noqa: E402

OUT_PATH = Path(__file__).parent / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4, 8)

# The paper's assumed 10 Mbps query download link; the RTT places the
# auditor across a WAN (full) or a regional link (smoke — CI machines
# should not spend minutes sleeping).
BANDWIDTH_BYTES_PER_S = 10e6 / 8
FULL_RTT_S = 0.25
SMOKE_RTT_S = 0.1


def _fingerprint(result):
    """Order-independent digest of a query result's observable output."""
    return {
        "vertices": sorted(
            (str(vertex.key()), vertex.color)
            for vertex in result.graph.vertices()
        ),
        "faulty_nodes": [str(n) for n in result.faulty_nodes()],
    }


def _round_speedups(walls):
    base = walls[WORKER_COUNTS[0]]
    return {
        str(w): round(base / walls[w], 3) if walls[w] > 0 else float("inf")
        for w in WORKER_COUNTS[1:]
    }


def run_scenario(name, dep, query, run_further, rtt_seconds):
    dep.set_query_transport(rtt_seconds=rtt_seconds,
                            bandwidth_bytes_per_s=BANDWIDTH_BYTES_PER_S)
    processors = {}
    cold = {}
    cold_walls = {}
    cold_prints = {}
    for workers in WORKER_COUNTS:
        qp = QueryProcessor(dep, executor=workers)
        processors[workers] = qp
        started = time.perf_counter()
        qp.prefetch()
        result = query(qp)
        wall = time.perf_counter() - started
        cold_walls[workers] = wall
        cold_prints[workers] = _fingerprint(result)
        cold[str(workers)] = {
            "wall_seconds": round(wall, 4),
            "counters": qp.mq.stats.counters(),
        }

    run_further()

    refresh = {}
    refresh_walls = {}
    refresh_prints = {}
    for workers in WORKER_COUNTS:
        qp = processors[workers]
        before = qp.mq.stats.copy()
        started = time.perf_counter()
        qp.refresh()
        wall = time.perf_counter() - started
        result = query(qp)
        refresh_walls[workers] = wall
        refresh_prints[workers] = _fingerprint(result)
        refresh[str(workers)] = {
            "wall_seconds": round(wall, 4),
            "counters": qp.mq.stats.delta_since(before).counters(),
        }
        qp.close()

    base = WORKER_COUNTS[0]
    results_match = all(
        cold_prints[w] == cold_prints[base]
        and cold[str(w)]["counters"] == cold[str(base)]["counters"]
        and refresh_prints[w] == refresh_prints[base]
        and refresh[str(w)]["counters"] == refresh[str(base)]["counters"]
        for w in WORKER_COUNTS
    )
    entry = {
        "cold": cold,
        "refresh": refresh,
        "speedup_cold": _round_speedups(cold_walls),
        "speedup_refresh": _round_speedups(refresh_walls),
        "results_match": results_match,
    }
    print(f"{name:>14}  cold {cold_walls[1]:6.2f}s → "
          f"{cold_walls[4]:6.2f}s @4w ({entry['speedup_cold']['4']}x)   "
          f"refresh {refresh_walls[1]:6.3f}s → {refresh_walls[4]:6.3f}s "
          f"@4w ({entry['speedup_refresh']['4']}x)   "
          f"match={results_match}")
    return entry


def check(name, entry, require_2x_cold=False):
    # Explicit raises, not asserts: this is CI's acceptance gate and must
    # survive `python -O`.
    if not entry["results_match"]:
        raise SystemExit(
            f"{name}: parallel and serial builds disagree on query "
            "results or merged counters"
        )
    if require_2x_cold and entry["speedup_cold"]["4"] < 2.0:
        raise SystemExit(
            f"{name}: cold speedup at 4 workers is "
            f"{entry['speedup_cold']['4']}x, below the 2x target"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes + short RTT for CI; still "
                             "enforces parallel ≡ serial")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    rtt = SMOKE_RTT_S if args.smoke else FULL_RTT_S
    if args.smoke:
        builders = [
            chord_scenario(n_nodes=10, rounds=2, lookups=2),
            bgp_scenario(n_updates=24, extra_prefixes=1),
            hadoop_scenario(n_words=300),
        ]
    else:
        builders = [
            chord_scenario(n_nodes=50, rounds=3, lookups=8),
            bgp_scenario(n_updates=120, extra_prefixes=2),
            hadoop_scenario(n_words=1200),
        ]

    scenarios = {}
    for name, dep, query, run_further in builders:
        entry = run_scenario(name, dep, query, run_further, rtt)
        check(name, entry,
              require_2x_cold=(not args.smoke and name.startswith("chord")))
        scenarios[name] = entry

    payload = {
        "benchmark": "parallel",
        "smoke": args.smoke,
        "workers": list(WORKER_COUNTS),
        "transport": {
            "rtt_seconds": rtt,
            "bandwidth_bytes_per_s": BANDWIDTH_BYTES_PER_S,
        },
        "scenarios": scenarios,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
