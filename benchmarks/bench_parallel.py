"""Parallel view-build benchmark: worker pools and process pools vs. serial.

The per-node retrieve→verify→replay pipeline is independent per queried
node (the views share only the querier's evidence store), so
``MicroQuerier`` schedules it onto a configurable executor. This
benchmark measures what that buys a *remote* auditor on the paper's three
application families, at 1/2/4/8 threads and on 2/4-worker process pools:

* **cold build** — ``QueryProcessor.prefetch()`` (build every node's
  verified view as one executor batch) followed by the scenario's
  macroquery;
* **refresh** — the deployment runs further, then ``refresh()`` advances
  every cached view by its log suffix (one delta fetch per node);
* **warm refresh** — transport zeroed and pools pre-warmed, the refresh
  is timed on the PR 4 blob pool (``process-blob:4``, which re-ships and
  re-decodes whole replays) against the PR 6 resident pool
  (``process:4``, which ships verified heads + deltas into
  worker-resident replays) — the full run enforces the resident arm is
  ≥2x faster on chord@50 and actually hit its cache
  (``pickle_bytes_avoided`` > 0);
* **concurrent** — several queriers share one resident executor; the
  gate is correctness (every querier ≡ a serial oracle), since
  head-keyed cache entries make cross-querier reuse miss, not corrupt.

Downloads are modeled with ``Deployment.set_query_transport``: each
fetched segment sleeps RTT + bytes/bandwidth on the worker thread that
fetched it (the paper's Figure 8 query model assumes a 10 Mbps download;
the RTT here places the auditor across a WAN). On the thread arms, replay
and signature checks execute under the GIL, so wall-clock converges
toward the pure-compute floor as workers are added. The ``process:N``
arms break that floor: the verify+replay step crosses the wire layer
(repro/snp/wire.py) into a warm spawn-based pool, fetch threads keep the
downloads overlapped, and worker-built views come back as lazily-decoded
blobs — the full run enforces that ``process:4`` beats the 4-thread arm
on the compute-bound chord@50 cold build.

Every run also enforces the determinism contract: vertex/color
fingerprints, proven-faulty verdicts and merged QueryStats counters must
be identical across all worker counts (``results_match``), or the run
fails. ``--smoke`` uses tiny sizes + a short RTT (used by CI, which then
compares the output against ``baselines/`` via check_regression.py);
the full run additionally enforces the ≥2x cold speedup at 4 workers on
chord@50. Writes ``BENCH_parallel.json`` next to this file.
"""

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_audit import (  # noqa: E402
    bgp_scenario, chord_scenario, hadoop_scenario,
)

from repro.snp import QueryProcessor  # noqa: E402
from repro.snp.executor import ProcessExecutor  # noqa: E402

OUT_PATH = Path(__file__).parent / "BENCH_parallel.json"

ARMS = (1, 2, 4, 8, "process:2", "process:4", "process-blob:4")
BASE_ARM = ARMS[0]

#: The warm-refresh phase isolates the PR 6 resident cache: transport is
#: zeroed and pools/caches pre-warmed, so the timed refresh measures
#: verify+replay+*serialization* only — the resident arm ships heads and
#: deltas where the blob arm re-ships (and re-decodes) whole replays.
WARM_ARMS = (1, "process-blob:4", "process:4")
RESIDENT_FIELDS = ("view_cache_hits", "view_cache_misses",
                   "view_cache_evictions", "shm_bytes",
                   "pickle_bytes_avoided")

# The paper's assumed 10 Mbps query download link; the RTT places the
# auditor across a WAN (full) or a regional link (smoke — CI machines
# should not spend minutes sleeping).
BANDWIDTH_BYTES_PER_S = 10e6 / 8
FULL_RTT_S = 0.25
SMOKE_RTT_S = 0.1


def _fingerprint(result):
    """Order-independent digest of a query result's observable output."""
    return {
        "vertices": sorted(
            (str(vertex.key()), vertex.color)
            for vertex in result.graph.vertices()
        ),
        "faulty_nodes": [str(n) for n in result.faulty_nodes()],
    }


def _round_speedups(walls):
    base = walls[BASE_ARM]
    return {
        str(a): round(base / walls[a], 3) if walls[a] > 0 else float("inf")
        for a in ARMS[1:]
    }


def run_scenario(name, dep, query, run_further, rtt_seconds):
    dep.set_query_transport(rtt_seconds=rtt_seconds,
                            bandwidth_bytes_per_s=BANDWIDTH_BYTES_PER_S)
    processors = {}
    cold = {}
    cold_walls = {}
    cold_prints = {}
    for arm in ARMS:
        qp = QueryProcessor(dep, executor=arm)
        processors[arm] = qp
        started = time.perf_counter()
        qp.prefetch()
        result = query(qp)
        wall = time.perf_counter() - started
        cold_walls[arm] = wall
        cold_prints[arm] = _fingerprint(result)
        cold[str(arm)] = {
            "wall_seconds": round(wall, 4),
            "counters": qp.mq.stats.counters(),
        }

    run_further()

    refresh = {}
    refresh_walls = {}
    refresh_prints = {}
    for arm in ARMS:
        qp = processors[arm]
        before = qp.mq.stats.copy()
        started = time.perf_counter()
        qp.refresh()
        wall = time.perf_counter() - started
        result = query(qp)
        refresh_walls[arm] = wall
        refresh_prints[arm] = _fingerprint(result)
        refresh[str(arm)] = {
            "wall_seconds": round(wall, 4),
            "counters": qp.mq.stats.delta_since(before).counters(),
        }
        qp.close()

    results_match = all(
        cold_prints[a] == cold_prints[BASE_ARM]
        and cold[str(a)]["counters"] == cold[str(BASE_ARM)]["counters"]
        and refresh_prints[a] == refresh_prints[BASE_ARM]
        and refresh[str(a)]["counters"] == refresh[str(BASE_ARM)]["counters"]
        for a in ARMS
    )
    entry = {
        "cold": cold,
        "refresh": refresh,
        "speedup_cold": _round_speedups(cold_walls),
        "speedup_refresh": _round_speedups(refresh_walls),
        "results_match": results_match,
    }
    print(f"{name:>14}  cold {cold_walls[1]:6.2f}s → "
          f"{cold_walls[4]:6.2f}s @4t ({entry['speedup_cold']['4']}x) → "
          f"{cold_walls['process:4']:6.2f}s @4p "
          f"({entry['speedup_cold']['process:4']}x)   "
          f"refresh {refresh_walls[1]:6.3f}s → {refresh_walls[4]:6.3f}s "
          f"@4t ({entry['speedup_refresh']['4']}x)   "
          f"match={results_match}")
    return entry


def run_warm_refresh(name, dep, query, run_further):
    """Warm-pool refresh: spawn cost, transport and cold builds all
    excluded from the timer. Each arm pre-builds every view (populating
    the resident arm's worker caches), the deployment runs one more
    wave, and only the refresh+requery is timed."""
    dep.set_query_transport(rtt_seconds=0.0,
                            bandwidth_bytes_per_s=1e12)
    processors = {}
    for arm in WARM_ARMS:
        qp = QueryProcessor(dep, executor=arm)
        qp.prefetch()
        query(qp)
        processors[arm] = qp

    run_further()

    refresh = {}
    walls = {}
    prints = {}
    for arm in WARM_ARMS:
        qp = processors[arm]
        before = qp.mq.stats.copy()
        started = time.perf_counter()
        qp.refresh()
        result = query(qp)
        wall = time.perf_counter() - started
        delta = qp.mq.stats.delta_since(before)
        walls[arm] = wall
        prints[arm] = _fingerprint(result)
        refresh[str(arm)] = {
            "wall_seconds": round(wall, 4),
            "counters": delta.counters(),
            "resident": {f: getattr(delta, f) for f in RESIDENT_FIELDS},
        }
        qp.close()

    results_match = all(
        prints[a] == prints[WARM_ARMS[0]]
        and refresh[str(a)]["counters"]
        == refresh[str(WARM_ARMS[0])]["counters"]
        for a in WARM_ARMS
    )
    resident_speedup = (
        walls["process-blob:4"] / walls["process:4"]
        if walls["process:4"] > 0 else float("inf")
    )
    entry = {
        "refresh": refresh,
        "resident_speedup": round(resident_speedup, 3),
        "results_match": results_match,
    }
    resident = refresh["process:4"]["resident"]
    print(f"{name:>14}  warm refresh {walls['process-blob:4']:6.3f}s blob → "
          f"{walls['process:4']:6.3f}s resident "
          f"({entry['resident_speedup']}x)   "
          f"hits={resident['view_cache_hits']} "
          f"avoided={resident['pickle_bytes_avoided']}B   "
          f"match={results_match}")
    return entry


def run_concurrent(name, dep, query, run_further, n_queriers=3):
    """Concurrent queriers sharing one resident executor: the worker
    caches are keyed by verified head, so queriers at different heads
    miss (and rebuild cold) rather than read stale state — correctness
    is the gate here, walls are reported for context."""
    dep.set_query_transport(rtt_seconds=0.0,
                            bandwidth_bytes_per_s=1e12)
    executor = ProcessExecutor(2)
    queriers = [QueryProcessor(dep, executor=executor)
                for _ in range(n_queriers)]
    serial = QueryProcessor(dep)
    try:
        for qp in queriers:
            qp.prefetch()
        run_further()

        def refresh_and_query(qp):
            qp.refresh()
            return _fingerprint(query(qp))

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_queriers,
                                thread_name_prefix="querier") as pool:
            prints = list(pool.map(refresh_and_query, queriers))
        wall = time.perf_counter() - started
        serial.prefetch()
        oracle = _fingerprint(query(serial))
        results_match = all(p == oracle for p in prints)
        hits = sum(qp.mq.stats.view_cache_hits for qp in queriers)
        misses = sum(qp.mq.stats.view_cache_misses for qp in queriers)
        entry = {
            "queriers": n_queriers,
            "wall_seconds": round(wall, 4),
            "view_cache_hits": hits,
            "view_cache_misses": misses,
            "results_match": results_match,
        }
        print(f"{name:>14}  {n_queriers} concurrent queriers "
              f"{wall:6.3f}s   hits={hits} misses={misses}   "
              f"match={results_match}")
        return entry
    finally:
        for qp in queriers:
            qp.close()
        serial.close()
        executor.close()


def check(name, entry, require_2x_cold=False, require_process_beats_threads=False):
    # Explicit raises, not asserts: this is CI's acceptance gate and must
    # survive `python -O`.
    if not entry["results_match"]:
        raise SystemExit(
            f"{name}: parallel and serial builds disagree on query "
            "results or merged counters"
        )
    if require_2x_cold and entry["speedup_cold"]["4"] < 2.0:
        raise SystemExit(
            f"{name}: cold speedup at 4 workers is "
            f"{entry['speedup_cold']['4']}x, below the 2x target"
        )
    if require_process_beats_threads:
        process_wall = entry["cold"]["process:4"]["wall_seconds"]
        thread_wall = entry["cold"]["4"]["wall_seconds"]
        if process_wall >= thread_wall:
            raise SystemExit(
                f"{name}: process:4 cold build ({process_wall:.2f}s) does "
                f"not beat the 4-thread arm ({thread_wall:.2f}s) — the "
                "GIL floor is supposed to be broken"
            )


def check_warm(name, entry, require_2x_resident=False):
    if not entry["results_match"]:
        raise SystemExit(
            f"{name}: warm-refresh arms disagree on query results or "
            "merged counters (serial ≠ resident is a hard failure)"
        )
    resident = entry["refresh"]["process:4"]["resident"]
    if resident["view_cache_hits"] <= 0:
        raise SystemExit(
            f"{name}: the resident arm's warm refresh never hit its "
            "worker view cache"
        )
    if resident["pickle_bytes_avoided"] <= 0:
        raise SystemExit(
            f"{name}: cache-hit refreshes avoided no pickle bytes — the "
            "resident plane is shipping blobs it should keep put"
        )
    if require_2x_resident and entry["resident_speedup"] < 2.0:
        raise SystemExit(
            f"{name}: resident warm refresh is only "
            f"{entry['resident_speedup']}x over the blob pool, below the "
            "2x target"
        )


def check_concurrent(name, entry):
    if not entry["results_match"]:
        raise SystemExit(
            f"{name}: a concurrent querier diverged from the serial "
            "oracle"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes + short RTT for CI; still "
                             "enforces parallel ≡ serial")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    rtt = SMOKE_RTT_S if args.smoke else FULL_RTT_S
    if args.smoke:
        builders = [
            chord_scenario(n_nodes=10, rounds=2, lookups=2),
            bgp_scenario(n_updates=24, extra_prefixes=1),
            hadoop_scenario(n_words=300),
        ]
    else:
        builders = [
            chord_scenario(n_nodes=50, rounds=3, lookups=8),
            bgp_scenario(n_updates=120, extra_prefixes=2),
            hadoop_scenario(n_words=1200),
        ]

    scenarios = {}
    for name, dep, query, run_further in builders:
        entry = run_scenario(name, dep, query, run_further, rtt)
        is_chord = name.startswith("chord")
        check(name, entry,
              require_2x_cold=(not args.smoke and is_chord),
              require_process_beats_threads=(not args.smoke and is_chord))
        entry["warm_refresh"] = run_warm_refresh(name, dep, query,
                                                 run_further)
        check_warm(name, entry["warm_refresh"],
                   require_2x_resident=(not args.smoke and is_chord))
        entry["concurrent"] = run_concurrent(name, dep, query, run_further)
        check_concurrent(name, entry["concurrent"])
        scenarios[name] = entry

    payload = {
        "benchmark": "parallel",
        "smoke": args.smoke,
        "workers": [str(a) for a in ARMS],
        "transport": {
            "rtt_seconds": rtt,
            "bandwidth_bytes_per_s": BANDWIDTH_BYTES_PER_S,
        },
        "scenarios": scenarios,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
