"""Parallel view-build benchmark: worker pools and process pools vs. serial.

The per-node retrieve→verify→replay pipeline is independent per queried
node (the views share only the querier's evidence store), so
``MicroQuerier`` schedules it onto a configurable executor. This
benchmark measures what that buys a *remote* auditor on the paper's three
application families, at 1/2/4/8 threads and on 2/4-worker process pools:

* **cold build** — ``QueryProcessor.prefetch()`` (build every node's
  verified view as one executor batch) followed by the scenario's
  macroquery;
* **refresh** — the deployment runs further, then ``refresh()`` advances
  every cached view by its log suffix (one delta fetch per node).

Downloads are modeled with ``Deployment.set_query_transport``: each
fetched segment sleeps RTT + bytes/bandwidth on the worker thread that
fetched it (the paper's Figure 8 query model assumes a 10 Mbps download;
the RTT here places the auditor across a WAN). On the thread arms, replay
and signature checks execute under the GIL, so wall-clock converges
toward the pure-compute floor as workers are added. The ``process:N``
arms break that floor: the verify+replay step crosses the wire layer
(repro/snp/wire.py) into a warm spawn-based pool, fetch threads keep the
downloads overlapped, and worker-built views come back as lazily-decoded
blobs — the full run enforces that ``process:4`` beats the 4-thread arm
on the compute-bound chord@50 cold build.

Every run also enforces the determinism contract: vertex/color
fingerprints, proven-faulty verdicts and merged QueryStats counters must
be identical across all worker counts (``results_match``), or the run
fails. ``--smoke`` uses tiny sizes + a short RTT (used by CI, which then
compares the output against ``baselines/`` via check_regression.py);
the full run additionally enforces the ≥2x cold speedup at 4 workers on
chord@50. Writes ``BENCH_parallel.json`` next to this file.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_audit import (  # noqa: E402
    bgp_scenario, chord_scenario, hadoop_scenario,
)

from repro.snp import QueryProcessor  # noqa: E402

OUT_PATH = Path(__file__).parent / "BENCH_parallel.json"

ARMS = (1, 2, 4, 8, "process:2", "process:4")
BASE_ARM = ARMS[0]

# The paper's assumed 10 Mbps query download link; the RTT places the
# auditor across a WAN (full) or a regional link (smoke — CI machines
# should not spend minutes sleeping).
BANDWIDTH_BYTES_PER_S = 10e6 / 8
FULL_RTT_S = 0.25
SMOKE_RTT_S = 0.1


def _fingerprint(result):
    """Order-independent digest of a query result's observable output."""
    return {
        "vertices": sorted(
            (str(vertex.key()), vertex.color)
            for vertex in result.graph.vertices()
        ),
        "faulty_nodes": [str(n) for n in result.faulty_nodes()],
    }


def _round_speedups(walls):
    base = walls[BASE_ARM]
    return {
        str(a): round(base / walls[a], 3) if walls[a] > 0 else float("inf")
        for a in ARMS[1:]
    }


def run_scenario(name, dep, query, run_further, rtt_seconds):
    dep.set_query_transport(rtt_seconds=rtt_seconds,
                            bandwidth_bytes_per_s=BANDWIDTH_BYTES_PER_S)
    processors = {}
    cold = {}
    cold_walls = {}
    cold_prints = {}
    for arm in ARMS:
        qp = QueryProcessor(dep, executor=arm)
        processors[arm] = qp
        started = time.perf_counter()
        qp.prefetch()
        result = query(qp)
        wall = time.perf_counter() - started
        cold_walls[arm] = wall
        cold_prints[arm] = _fingerprint(result)
        cold[str(arm)] = {
            "wall_seconds": round(wall, 4),
            "counters": qp.mq.stats.counters(),
        }

    run_further()

    refresh = {}
    refresh_walls = {}
    refresh_prints = {}
    for arm in ARMS:
        qp = processors[arm]
        before = qp.mq.stats.copy()
        started = time.perf_counter()
        qp.refresh()
        wall = time.perf_counter() - started
        result = query(qp)
        refresh_walls[arm] = wall
        refresh_prints[arm] = _fingerprint(result)
        refresh[str(arm)] = {
            "wall_seconds": round(wall, 4),
            "counters": qp.mq.stats.delta_since(before).counters(),
        }
        qp.close()

    results_match = all(
        cold_prints[a] == cold_prints[BASE_ARM]
        and cold[str(a)]["counters"] == cold[str(BASE_ARM)]["counters"]
        and refresh_prints[a] == refresh_prints[BASE_ARM]
        and refresh[str(a)]["counters"] == refresh[str(BASE_ARM)]["counters"]
        for a in ARMS
    )
    entry = {
        "cold": cold,
        "refresh": refresh,
        "speedup_cold": _round_speedups(cold_walls),
        "speedup_refresh": _round_speedups(refresh_walls),
        "results_match": results_match,
    }
    print(f"{name:>14}  cold {cold_walls[1]:6.2f}s → "
          f"{cold_walls[4]:6.2f}s @4t ({entry['speedup_cold']['4']}x) → "
          f"{cold_walls['process:4']:6.2f}s @4p "
          f"({entry['speedup_cold']['process:4']}x)   "
          f"refresh {refresh_walls[1]:6.3f}s → {refresh_walls[4]:6.3f}s "
          f"@4t ({entry['speedup_refresh']['4']}x)   "
          f"match={results_match}")
    return entry


def check(name, entry, require_2x_cold=False, require_process_beats_threads=False):
    # Explicit raises, not asserts: this is CI's acceptance gate and must
    # survive `python -O`.
    if not entry["results_match"]:
        raise SystemExit(
            f"{name}: parallel and serial builds disagree on query "
            "results or merged counters"
        )
    if require_2x_cold and entry["speedup_cold"]["4"] < 2.0:
        raise SystemExit(
            f"{name}: cold speedup at 4 workers is "
            f"{entry['speedup_cold']['4']}x, below the 2x target"
        )
    if require_process_beats_threads:
        process_wall = entry["cold"]["process:4"]["wall_seconds"]
        thread_wall = entry["cold"]["4"]["wall_seconds"]
        if process_wall >= thread_wall:
            raise SystemExit(
                f"{name}: process:4 cold build ({process_wall:.2f}s) does "
                f"not beat the 4-thread arm ({thread_wall:.2f}s) — the "
                "GIL floor is supposed to be broken"
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes + short RTT for CI; still "
                             "enforces parallel ≡ serial")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    rtt = SMOKE_RTT_S if args.smoke else FULL_RTT_S
    if args.smoke:
        builders = [
            chord_scenario(n_nodes=10, rounds=2, lookups=2),
            bgp_scenario(n_updates=24, extra_prefixes=1),
            hadoop_scenario(n_words=300),
        ]
    else:
        builders = [
            chord_scenario(n_nodes=50, rounds=3, lookups=8),
            bgp_scenario(n_updates=120, extra_prefixes=2),
            hadoop_scenario(n_words=1200),
        ]

    scenarios = {}
    for name, dep, query, run_further in builders:
        entry = run_scenario(name, dep, query, run_further, rtt)
        is_chord = name.startswith("chord")
        check(name, entry,
              require_2x_cold=(not args.smoke and is_chord),
              require_process_beats_threads=(not args.smoke and is_chord))
        scenarios[name] = entry

    payload = {
        "benchmark": "parallel",
        "smoke": args.smoke,
        "workers": [str(a) for a in ARMS],
        "transport": {
            "rtt_seconds": rtt,
            "bandwidth_bytes_per_s": BANDWIDTH_BYTES_PER_S,
        },
        "scenarios": scenarios,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
