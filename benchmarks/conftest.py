"""Shared fixtures for the figure benchmarks.

The five paper configurations are expensive to build, so they are computed
once per session and shared across benchmark modules. ``--benchmark-only``
runs measure the *query/scenario execution*; the figure tables are printed
to stdout (run with ``-s`` to see them) and the shape assertions run
regardless.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from scenarios import five_configurations  # noqa: E402


@pytest.fixture(scope="session")
def configurations():
    return five_configurations(seed=0)
