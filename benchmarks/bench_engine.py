"""Engine benchmark: indexed plans and differential deltas vs. the seed.

Runs the same fixpoint workloads through three engines — :class:`repro.
datalog.DatalogApp` (compiled plans + secondary indexes), :class:`repro.
datalog.DifferentialDatalogApp` (the indexed engine plus the weighted
z-set delta plane and the aggregate membership index), and
:class:`repro.datalog.NaiveDatalogApp` (the seed's interpretive scans,
kept as the reference evaluator) — checks their outputs are
byte-identical, and reports events processed per second. Workloads scale
node count and relation size:

* **chord** — an n-node Chord ring: bootstrap, one gossip/stabilization
  round, then a batch of iterative lookups (paper Section 6.1);
* **bgp** — path-vector route propagation (the protocol family behind the
  paper's Quagga application) over a ring-with-chords topology; the size
  label counts the route tuples in the converged network;
* **hadoop** — the reduce-side shuffle fixpoint of the paper's Hadoop
  application (Section 6.2) as Datalog: per-(job, word) sum aggregates
  plus per-job completion counts over one reducer's shuffle relation;
* **churn** — the retract-heavy schedule: the bgp network converges,
  then a third of its links flap (delete + re-insert) for two rounds,
  exercising retraction cascades and min-aggregate support
  re-derivation under every engine.

A separate **refresh** section measures the differential claim
directly: the marginal ``delta_tuples_out`` of ONE extra event on a
warm chord mesh vs. re-deriving the entire suffix from scratch —
``check_regression.py`` gates that ratio.

Messages between nodes are pumped through a deterministic FIFO (no
crypto, no logging — this isolates the evaluation core). Besides wall
time, every row carries the engines' deterministic evaluation counters
(join candidates enumerated, guard prunes, delta tuples in/out,
retractions applied, support re-derivations), and a static ``plans``
section records per-program analysis/plan-build time plus the guard
schedule shape (pre/mid/late placements) — the machine-portable signals
``check_regression.py`` gates on. ``python benchmarks/bench_engine.py``
writes ``BENCH_engine.json`` next to this file so later PRs can track
the trajectory; ``--smoke`` runs tiny sizes (used by CI) and still
enforces output equality between the engines.
"""

import argparse
import hashlib
import json
import sys
import time
from collections import deque
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datalog import (  # noqa: E402
    AggregateRule, Atom, DatalogApp, DifferentialDatalogApp, Guard,
    NaiveDatalogApp, Program, Rule, Var,
)
from repro.apps import chord as chord_app  # noqa: E402
from repro.apps import pathvector as pv  # noqa: E402
from repro.model import Snd, Tup  # noqa: E402


class Mesh:
    """A deterministic multi-node driver: FIFO message pump, no crypto."""

    def __init__(self, app_cls, program, names):
        self.apps = {name: app_cls(name, program) for name in names}
        self.queue = deque()
        self.events = 0
        self.digest = hashlib.sha256()

    def _absorb(self, outputs):
        for out in outputs:
            self.digest.update(repr(out).encode())
            if isinstance(out, Snd):
                self.queue.append(out.msg)
        self._pump()

    def _pump(self):
        while self.queue:
            msg = self.queue.popleft()
            self.events += 1
            outputs = self.apps[msg.dst].handle_receive(msg, 0.0)
            for out in outputs:
                self.digest.update(repr(out).encode())
                if isinstance(out, Snd):
                    self.queue.append(out.msg)

    def insert(self, name, tup):
        self.events += 1
        self._absorb(self.apps[name].handle_insert(tup, 0.0))

    def delete(self, name, tup):
        self.events += 1
        self._absorb(self.apps[name].handle_delete(tup, 0.0))

    def fingerprint(self):
        return self.digest.hexdigest()


# ------------------------------------------------------------------ chord

def run_chord(app_cls, n_nodes):
    import random
    ring_bits = 12
    size = 1 << ring_bits
    rng = random.Random(7)
    ids = sorted(rng.sample(range(size), n_nodes))
    members = [(f"n{i}", ring_id) for i, ring_id in enumerate(ids)]
    mesh = Mesh(app_cls, chord_app.chord_program(ring_bits=ring_bits),
                [name for name, _ in members])
    for index, (name, ring_id) in enumerate(members):
        mesh.insert(name, chord_app.node_tuple(name, ring_id))
        for j in range(6):
            offset = 1 << (ring_bits - 6 + j)
            mesh.insert(name, chord_app.finger_index(name, j, offset))
        for step in (1, 2):
            peer, peer_id = members[(index + step) % n_nodes]
            mesh.insert(name, chord_app.known_node(name, peer, peer_id))
            mesh.insert(name, chord_app.gossip_peer(name, peer))
        prev, _ = members[(index - 1) % n_nodes]
        mesh.insert(name, chord_app.gossip_peer(name, prev))
    for name, _ring_id in members:
        mesh.insert(name, chord_app.stab_tick(name, 0))
    for req, key in enumerate(rng.sample(range(size), min(n_nodes, 16))):
        origin, _ = members[req % n_nodes]
        mesh.insert(origin, chord_app.lookup_req(origin, key, req))
    return mesh


# -------------------------------------------------------------------- bgp

def _bgp_topology(n_nodes):
    names = [f"r{i:03d}" for i in range(n_nodes)]
    edges = {(names[i], names[(i + 1) % n_nodes]) for i in range(n_nodes)}
    for i in range(0, n_nodes, 3):  # chord shortcuts every third router
        edges.add(tuple(sorted((names[i], names[(i + n_nodes // 3)
                                                % n_nodes]))))
    return names, sorted(edges)


def run_bgp(app_cls, n_nodes):
    names, edges = _bgp_topology(n_nodes)
    mesh = Mesh(app_cls, pv.pathvector_program(), names)
    for x, y in edges:
        mesh.insert(x, pv.link(x, y))
        mesh.insert(y, pv.link(y, x))
    # Converged table size: the scenario's "route count" label.
    mesh.routes = sum(
        len(app.tuples_of("route")) for app in mesh.apps.values()
    )
    return mesh


# -------------------------------------------------------------- link churn

def run_churn(app_cls, n_nodes):
    """Retract-heavy path-vector schedule: converge the bgp topology,
    then flap every third link (delete both directions, re-insert both)
    for two rounds. Each deletion retracts derived routes transitively
    and forces min-aggregate best-path groups to re-derive from their
    remaining supports; each re-insertion re-derives the same routes, so
    the converged table must come back bit-identical every round."""
    names, edges = _bgp_topology(n_nodes)
    mesh = Mesh(app_cls, pv.pathvector_program(), names)
    for x, y in edges:
        mesh.insert(x, pv.link(x, y))
        mesh.insert(y, pv.link(y, x))
    flapping = edges[::3]
    for _round in range(2):
        for x, y in flapping:
            mesh.delete(x, pv.link(x, y))
            mesh.delete(y, pv.link(y, x))
        for x, y in flapping:
            mesh.insert(x, pv.link(x, y))
            mesh.insert(y, pv.link(y, x))
    mesh.routes = sum(
        len(app.tuples_of("route")) for app in mesh.apps.values()
    )
    return mesh


# ----------------------------------------------------------------- hadoop

def hadoop_program():
    """Reduce-side shuffle aggregation as Datalog (paper Section 6.2).

    One reducer believes per-(mapper, word) shuffle counts; its word
    totals are sum aggregates grouped by (job, word) and a job's output
    unlocks once every expected mapper reported done.
    """
    R, J, M, W, C, N, E = (Var(v) for v in ("R", "J", "M", "W", "C",
                                            "N", "E"))
    totals = AggregateRule(
        "WT",
        head=Atom("wordTotal", R, J, W, C),
        body=[Atom("shuffle", R, J, M, W, C)],
        agg_var=C, func="sum",
    )
    done = AggregateRule(
        "DC",
        head=Atom("doneCount", R, J, N),
        body=[Atom("mapDone", R, J, M)],
        agg_var=N, func="count",
    )
    ready = Rule(
        "RD",
        head=Atom("jobReady", R, J),
        body=[Atom("doneCount", R, J, N), Atom("expect", R, J, E)],
        guards=[Guard(lambda b: b["N"] >= b["E"], vars=("N", "E"),
                      label="N>=E")],
    )
    emit = Rule(
        "EM",
        head=Atom("output", R, J, W, C),
        body=[Atom("wordTotal", R, J, W, C), Atom("jobReady", R, J)],
    )
    return Program([totals, done, ready, emit])


def run_hadoop(app_cls, n_shuffle):
    """One reducer ingesting *n_shuffle* shuffle tuples across jobs."""
    reducer = "reducer0"
    mesh = Mesh(app_cls, hadoop_program(), [reducer])
    n_jobs = max(2, n_shuffle // 250)
    n_mappers = 5
    words = [f"w{i:02d}" for i in range(50)]
    for job in range(n_jobs):
        mesh.insert(reducer, Tup("expect", reducer, job, n_mappers))
    emitted = 0
    job = 0
    while emitted < n_shuffle:
        for mapper in range(n_mappers):
            for w_index, word in enumerate(words):
                if emitted >= n_shuffle:
                    break
                count = 1 + (emitted % 7)
                mesh.insert(reducer, Tup(
                    "shuffle", reducer, job, f"m{mapper}", word, count
                ))
                emitted += 1
        for mapper in range(n_mappers):
            mesh.insert(reducer, Tup("mapDone", reducer, job, f"m{mapper}"))
        job = (job + 1) % n_jobs
    return mesh


# ------------------------------------------------------------ static side

PLAN_PROGRAMS = {
    "chord": lambda: chord_app.chord_program(ring_bits=12),
    "pathvector": pv.pathvector_program,
    "hadoop": hadoop_program,
}


def measure_plans(repeats=5):
    """The static cost of a program: analysis + plan compilation time and
    the guard schedule shape. Wall times are recorded to watch the
    trajectory (an analyzer pass going quadratic shows up here); the
    regression gate only compares the deterministic guard-placement
    counts, where early→late drift means lost pruning."""
    from repro.datalog.plan import guard_schedule_counts

    rows = []
    for name, builder in PLAN_PROGRAMS.items():
        build_best = analyze_best = float("inf")
        program = None
        for _ in range(repeats):
            started = time.perf_counter()
            program = builder()
            build_best = min(build_best, time.perf_counter() - started)
            started = time.perf_counter()
            program.analyze()
            analyze_best = min(analyze_best, time.perf_counter() - started)
        counts = guard_schedule_counts(program)
        row = {
            "program": name,
            "rules": len(program.rules),
            "build_seconds": round(build_best, 6),
            "analyze_seconds": round(analyze_best, 6),
            "guard_pre": counts["pre"],
            "guard_mid": counts["mid"],
            "guard_late": counts["late"],
        }
        rows.append(row)
        print(
            f"{name:>10} rules={row['rules']:<3} "
            f"build={row['build_seconds'] * 1e3:.2f}ms "
            f"analyze={row['analyze_seconds'] * 1e3:.2f}ms "
            f"guards pre/mid/late="
            f"{counts['pre']}/{counts['mid']}/{counts['late']}"
        )
    return rows


# ---------------------------------------------------------------- harness

WORKLOADS = {
    "chord": (run_chord, "nodes"),
    "bgp": (run_bgp, "nodes"),
    "hadoop": (run_hadoop, "shuffle tuples"),
    "churn": (run_churn, "nodes"),
}

FULL_SIZES = {
    "chord": (20, 35, 50),
    "bgp": (20, 30, 40),
    "hadoop": (500, 1000, 2000),
    "churn": (20, 30, 40),
}

SMOKE_SIZES = {
    "chord": (8,),
    "bgp": (10,),
    "hadoop": (150,),
    "churn": (10,),
}

# The engines' per-event delta accounting, summed over a mesh. The
# in/out counters are trace properties (identical across engines for
# the same schedule); retractions/re-derivations count the deletion
# path's actual work.
DELTA_COUNTERS = ("delta_tuples_in", "delta_tuples_out",
                  "retractions_applied", "support_rederivations")


def _delta_totals(mesh):
    return {
        field: sum(getattr(app, field) for app in mesh.apps.values())
        for field in DELTA_COUNTERS
    }


def measure(runner, app_cls, size):
    started = time.perf_counter()
    mesh = runner(app_cls, size)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "events": mesh.events,
        "ops_per_sec": mesh.events / elapsed if elapsed else float("inf"),
        "fingerprint": mesh.fingerprint(),
        "routes": getattr(mesh, "routes", None),
        # Deterministic evaluation counters (summed over the mesh):
        # candidates enumerated by join steps, and candidates rejected by
        # a guard. Machine-portable, so the regression gate tracks them.
        "join_candidates": sum(
            app.join_candidates for app in mesh.apps.values()
        ),
        "guard_prunes": sum(
            app.guard_prunes for app in mesh.apps.values()
        ),
        "deltas": _delta_totals(mesh),
    }


def run_suite(sizes, min_speedup=None):
    results = []
    for name, (runner, size_label) in WORKLOADS.items():
        for size in sizes[name]:
            indexed = measure(runner, DatalogApp, size)
            differential = measure(runner, DifferentialDatalogApp, size)
            naive = measure(runner, NaiveDatalogApp, size)
            if indexed["fingerprint"] != naive["fingerprint"]:
                raise AssertionError(
                    f"{name}@{size}: indexed and naive outputs diverge"
                )
            if differential["fingerprint"] != indexed["fingerprint"]:
                raise AssertionError(
                    f"{name}@{size}: differential and indexed outputs "
                    "diverge"
                )
            speedup = naive["seconds"] / indexed["seconds"]
            differential_speedup = (naive["seconds"]
                                    / differential["seconds"])
            row = {
                "workload": name,
                "size": size,
                "size_label": size_label,
                "events": indexed["events"],
                "naive_ops_per_sec": round(naive["ops_per_sec"], 1),
                "indexed_ops_per_sec": round(indexed["ops_per_sec"], 1),
                "differential_ops_per_sec": round(
                    differential["ops_per_sec"], 1),
                "naive_seconds": round(naive["seconds"], 4),
                "indexed_seconds": round(indexed["seconds"], 4),
                "differential_seconds": round(
                    differential["seconds"], 4),
                "speedup": round(speedup, 2),
                "differential_speedup": round(differential_speedup, 2),
                "indexed_join_candidates": indexed["join_candidates"],
                "naive_join_candidates": naive["join_candidates"],
                "indexed_guard_prunes": indexed["guard_prunes"],
                "naive_guard_prunes": naive["guard_prunes"],
                # All three engines agreed byte-for-byte (asserted
                # above); recorded so the regression gate can refuse a
                # bench output whose equivalence check was edited away.
                "engines_agree": True,
                "naive_delta_tuples_out":
                    naive["deltas"]["delta_tuples_out"],
            }
            row.update(differential["deltas"])
            if name in ("bgp", "churn"):
                row["routes"] = indexed["routes"]
            results.append(row)
            print(
                f"{name:>7} size={size:<6} events={row['events']:<7} "
                f"naive={row['naive_ops_per_sec']:>9.1f}/s "
                f"indexed={row['indexed_ops_per_sec']:>9.1f}/s "
                f"differential={row['differential_ops_per_sec']:>9.1f}/s "
                f"speedup={speedup:.2f}x "
                f"retractions={row['retractions_applied']}"
            )
    best = max(results, key=lambda r: r["speedup"])
    print(f"\nbest speedup: {best['speedup']}x "
          f"({best['workload']} @ {best['size']} {best['size_label']})")
    if min_speedup is not None and best["speedup"] < min_speedup:
        raise AssertionError(
            f"expected a >= {min_speedup}x scenario, best was "
            f"{best['speedup']}x"
        )
    return results


def measure_refresh(n_nodes):
    """The differential claim in one number: the marginal cost of one
    more event on a warm mesh vs. re-deriving the whole suffix.

    Builds the chord workload twice. The *warm* arm keeps the
    differential mesh resident, records ``delta_tuples_out``, then
    applies ONE extra lookup — the counter's increase is the
    incremental derivation work. The *scratch* arm replays the entire
    schedule (including the extra lookup) through the naive reference
    from an empty store — its total ``delta_tuples_out`` is what a
    snapshot-restore replay would have re-derived. The two meshes must
    still agree byte-for-byte after the extra event; the ratio is the
    1-event refresh cost ``check_regression.py`` gates."""
    import random

    def one_more_lookup(mesh):
        rng = random.Random(11)  # distinct from run_chord's seed
        origin = sorted(mesh.apps)[0]
        mesh.insert(origin, chord_app.lookup_req(
            origin, rng.randrange(1 << 12), 999))

    warm = run_chord(DifferentialDatalogApp, n_nodes)
    before = _delta_totals(warm)["delta_tuples_out"]
    one_more_lookup(warm)
    incremental = _delta_totals(warm)["delta_tuples_out"] - before

    scratch = run_chord(NaiveDatalogApp, n_nodes)
    one_more_lookup(scratch)
    full = _delta_totals(scratch)["delta_tuples_out"]
    if warm.fingerprint() != scratch.fingerprint():
        raise AssertionError(
            f"refresh@chord@{n_nodes}: warm differential mesh diverged "
            "from the scratch re-derivation after the extra event"
        )
    ratio = incremental / full if full else 0.0
    print(
        f"refresh chord@{n_nodes}: 1-event delta_tuples_out="
        f"{incremental} vs full re-derivation={full} "
        f"(ratio {ratio:.4f})"
    )
    return {
        "workload": "chord",
        "size": n_nodes,
        "incremental_delta_tuples_out": incremental,
        "full_rederive_delta_tuples_out": full,
        "ratio": round(ratio, 6),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes; equality check only (CI)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless some scenario reaches this")
    parser.add_argument("--out", default=None,
                        help="JSON output path "
                             "(default: benchmarks/BENCH_engine.json)")
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    plans = measure_plans()
    results = run_suite(sizes, min_speedup=args.min_speedup)
    refresh = measure_refresh(max(sizes["chord"]))
    out_path = Path(args.out) if args.out else (
        Path(__file__).resolve().parent / "BENCH_engine.json"
    )
    payload = {
        "benchmark": ("datalog engine: indexed plans and differential "
                      "deltas vs seed scans"),
        "mode": "smoke" if args.smoke else "full",
        "plans": plans,
        "results": results,
        "refresh": refresh,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
