"""Figure 8: query turnaround time and data downloaded, per example query.

Paper result (Section 7.7): Chord and Quagga-BadGadget queries complete in
<5 s; Quagga-Disappear takes 19 s (checkpoint verification dominates);
Hadoop-Squirrel 68 s (replay dominates). Downloads range from 133 kB
(Quagga-BadGadget) to 20.8 MB (Hadoop-Squirrel, which replays whole
tasks). Turnaround includes an estimated download at 10 Mbps, the
authenticator check, and replay.

Also reproduces Section 7.2's usability results: each query *finds the
injected fault* (this file's assertions) — Figure 4's tree itself is
exercised in examples/hadoop_squirrel.py and the integration tests.
"""

import pytest

from scenarios import print_table, run_chord, run_hadoop

from repro.apps.bgp import (
    build_bad_gadget, build_disappear_scenario, route, trigger_disappear,
)
from repro.apps.mapreduce import OFFSETS
from repro.snp import Deployment, QueryProcessor


class QueryRow:
    def __init__(self, name, result):
        self.name = name
        self.result = result

    def row(self):
        stats = self.result.stats
        return [
            self.name,
            f"{stats.turnaround_seconds():.3f}s",
            f"{stats.downloaded_bytes() / 1024:.1f}",
            f"{stats.auth_check_seconds:.3f}s",
            f"{stats.replay_seconds:.3f}s",
            stats.logs_fetched,
            stats.events_replayed,
        ]


@pytest.fixture(scope="module")
def figure8_rows():
    rows = []

    # Quagga-Disappear (dynamic query, checkpoint verification).
    dep = Deployment(seed=80, key_bits=256)
    net, prefix = build_disappear_scenario(dep)
    net.converge()
    trigger_disappear(net, prefix)
    dep.checkpoint_all()
    qp = QueryProcessor(dep, use_checkpoints=False)
    gone = route("alice", prefix, ("alice", "j", "c1", "mid", "origin"))
    rows.append(QueryRow("Quagga-Disappear", qp.why_disappear(gone)))

    # Quagga-BadGadget (provenance of a fluttering route).
    dep2 = Deployment(seed=81, key_bits=256)
    net2, prefix2 = build_bad_gadget(dep2)
    net2.converge(max_rounds=10)
    qp2 = QueryProcessor(dep2)
    selection = net2.routing_table("as1")[prefix2]
    rows.append(QueryRow(
        "Quagga-BadGadget",
        qp2.why(route("as1", prefix2, selection[0]), scope=25),
    ))

    # Chord-Lookup, small and large rings.
    for label, n_nodes in (("Chord-Lookup (S)", 12), ("Chord-Lookup (L)", 24)):
        scen = run_chord(n_nodes=n_nodes, rounds=2, lookups=1, seed=82)
        net3 = scen.extra["net"]
        source = net3.members[0][0]
        results = net3.lookup(source, net3.size // 2, "fig8")
        qp3 = QueryProcessor(scen.deployment)
        rows.append(QueryRow(label, qp3.why(results[0], node=source)))

    # Hadoop-Squirrel (corrupt mapper).
    scen = run_hadoop(n_words=1500, corrupt=True, granularity=OFFSETS,
                      seed=83)
    job = scen.extra["job"]
    out = job.output_tuple_for("squirrel")
    qp4 = QueryProcessor(scen.deployment)
    rows.append(QueryRow("Hadoop-Squirrel", qp4.why(out, scope=10)))
    rows[-1].faulty = rows[-1].result.faulty_nodes()
    return rows


class TestFigure8Shape:
    def test_all_queries_complete_quickly(self, figure8_rows):
        # Paper turnarounds: 2s .. 68s at full scale. At our scale every
        # query must finish in seconds.
        for entry in figure8_rows:
            assert entry.result.stats.turnaround_seconds() < 30.0

    def test_hadoop_squirrel_downloads_most(self, figure8_rows):
        by_name = {e.name: e.result.stats for e in figure8_rows}
        squirrel = by_name["Hadoop-Squirrel"].downloaded_bytes()
        badgadget = by_name["Quagga-BadGadget"].downloaded_bytes()
        assert squirrel > badgadget  # paper: 20.8 MB vs 133 kB

    def test_chord_large_downloads_at_least_small(self, figure8_rows):
        by_name = {e.name: e.result.stats for e in figure8_rows}
        assert by_name["Chord-Lookup (L)"].downloaded_bytes() >= \
            by_name["Chord-Lookup (S)"].downloaded_bytes() * 0.5

    def test_squirrel_query_finds_the_corrupt_mapper(self, figure8_rows):
        squirrel = next(e for e in figure8_rows
                        if e.name == "Hadoop-Squirrel")
        assert squirrel.result.faulty_nodes()

    def test_badgadget_and_disappear_are_clean(self, figure8_rows):
        # Misconfigurations, not attacks: no red vertices.
        for name in ("Quagga-Disappear", "Quagga-BadGadget"):
            entry = next(e for e in figure8_rows if e.name == name)
            assert not entry.result.red_vertices()

    def test_print_figure8(self, figure8_rows, benchmark):
        benchmark.pedantic(lambda: [e.row() for e in figure8_rows],
                           rounds=1, iterations=1)
        for entry in figure8_rows:
            assert entry.result.stats.turnaround_seconds() < 30.0
        squirrel = next(e for e in figure8_rows
                        if e.name == "Hadoop-Squirrel")
        assert squirrel.result.faulty_nodes()
        print_table(
            "Figure 8 — query turnaround and download "
            "(paper: <5s Chord/BadGadget, 19s Disappear, 68s Squirrel; "
            "133kB .. 20.8MB)",
            ["query", "turnaround", "kB", "auth", "replay", "logs",
             "events"],
            [e.row() for e in figure8_rows],
        )


class TestFigure8Benchmarks:
    @pytest.fixture(scope="class")
    def mincost_deployment(self):
        from repro.apps.mincost import build_paper_network
        dep = Deployment(seed=84, key_bits=256)
        build_paper_network(dep)
        dep.run()
        return dep

    def test_cold_query_latency(self, benchmark, mincost_deployment):
        from repro.apps.mincost import best_cost

        def cold_query():
            qp = QueryProcessor(mincost_deployment)
            return qp.why(best_cost("c", "d", 5))

        benchmark.pedantic(cold_query, rounds=3, iterations=1)

    def test_warm_query_latency(self, benchmark, mincost_deployment):
        from repro.apps.mincost import best_cost
        qp = QueryProcessor(mincost_deployment)
        qp.why(best_cost("c", "d", 5))  # warm the view cache
        benchmark(lambda: qp.why(best_cost("c", "d", 5)))
