"""Figure 6: per-node log growth (MB/minute), excluding checkpoints.

Paper result: 0.066 MB/min (Chord-Small) to 0.74 MB/min (Quagga); Quagga
grows fastest because its baseline generates the largest number of
messages; Hadoop's incremental cost is tiny because input files are logged
by reference (hash). The breakdown is messages / signatures /
authenticators / index.

Run as a script, this module also measures the **checkpoint GC arm**:
the same phased chord workload with and without the retention handshake
(``Deployment.run_gc``), emitting steady-state per-node log bytes into
``BENCH_storage.json``. A standing auditor refreshes each phase, so GC
floors track its verified heads; the run enforces that GC'd logs stay
bounded (chord@50: ≥5× smaller than no-GC) while the post-run audit
stays clean. ``--smoke`` uses a tiny ring for CI, which then gates the
output against ``baselines/`` via check_regression.py.
"""

import argparse
import json
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from scenarios import print_table, run_chord, run_hadoop  # noqa: E402

from repro.metrics import StorageReport  # noqa: E402

OUT_PATH = Path(__file__).parent / "BENCH_storage.json"


def _reports(scenario):
    dep = scenario.deployment
    return [
        StorageReport.from_log(node.log, scenario.nominal_duration_s)
        for node in dep.nodes.values()
    ]


def _mean_growth(scenario):
    rates = [r.growth_mb_per_minute() for r in _reports(scenario)]
    return statistics.mean(rates) if rates else 0.0


class TestFigure6Shape:
    def test_quagga_grows_fastest(self, configurations):
        growth = {name: _mean_growth(s)
                  for name, s in configurations.items()}
        assert growth["Quagga"] == max(growth.values())

    def test_all_rates_positive_and_practical(self, configurations):
        for name, scenario in configurations.items():
            rate = _mean_growth(scenario)
            assert rate > 0, name
            # Paper rates are < 1 MB/min per node; ours are scaled down
            # but must stay within an order of magnitude of that.
            assert rate < 10.0, name

    def test_breakdown_components_present(self, configurations):
        for name, scenario in configurations.items():
            totals = _reports(scenario)
            assert sum(r.message_bytes for r in totals) > 0, name
            assert sum(r.authenticator_bytes for r in totals) > 0, name
            assert sum(r.index_bytes for r in totals) > 0, name

    def test_checkpoints_excluded_from_growth(self, configurations):
        scenario = configurations["Chord-Small"]
        scenario.deployment.checkpoint_all()
        for report in _reports(scenario):
            assert report.total_bytes(include_checkpoints=True) >= \
                report.total_bytes(include_checkpoints=False)

    def test_hadoop_logs_reference_files_not_contents(self, configurations):
        # The mapTask entries carry a hash, not the split text: each
        # node's log must be much smaller than the input corpus would be.
        scenario = configurations["Hadoop-Large"]
        corpus_bytes = sum(
            len(text) for text in
            scenario.extra["corpus"].splits(8)
        )
        for node_name in [m for m in scenario.deployment.nodes
                          if m.startswith("map")]:
            log = scenario.deployment.node(node_name).log
            ins_entries = [e for e in log.entries if e.entry_type == "ins"]
            from repro.util.serialization import canonical_size
            ins_bytes = sum(canonical_size(e.content) for e in ins_entries)
            assert ins_bytes < corpus_bytes / 4

    def test_print_figure6(self, configurations, benchmark):
        growth = benchmark.pedantic(
            lambda: {name: _mean_growth(s)
                     for name, s in configurations.items()},
            rounds=1, iterations=1,
        )
        assert growth["Quagga"] == max(growth.values())
        assert all(rate > 0 for rate in growth.values())
        rows = []
        for name, scenario in configurations.items():
            reports = _reports(scenario)
            rows.append([
                name,
                f"{_mean_growth(scenario):.4f}",
                f"{statistics.mean([r.message_bytes for r in reports]):.0f}",
                f"{statistics.mean([r.signature_bytes for r in reports]):.0f}",
                f"{statistics.mean([r.authenticator_bytes for r in reports]):.0f}",
                f"{statistics.mean([r.index_bytes for r in reports]):.0f}",
            ])
        print_table(
            "Figure 6 — per-node log growth "
            "(paper: 0.066 [Chord-S] ... 0.74 [Quagga] MB/min)",
            ["config", "MB/min", "msg B", "sig B", "auth B", "index B"],
            rows,
        )


class TestFigure6Benchmarks:
    def test_hadoop_scenario_runtime(self, benchmark):
        benchmark.pedantic(
            lambda: run_hadoop(n_words=600, seed=1),
            rounds=1, iterations=1,
        )


# --------------------------------------------------------- checkpoint GC arm


def _run_gc_arm(n_nodes, phases, gc, seed=7):
    """One phased chord run; returns (deployment, per-node log bytes,
    final-query result or None).

    Each phase is one stabilization round plus a lookup; a standing
    auditor refreshes after every phase. With *gc*, the auditor is
    registered for the retention handshake and ``run_gc`` runs per phase
    (checkpoint first, truncate to the floors the previous pass
    anchored), so steady-state log size is bounded by roughly one
    phase of entries plus the retained checkpoint — while without GC the
    logs keep the whole history.
    """
    from repro.snp import QueryProcessor

    scen = run_chord(n_nodes=n_nodes, rounds=1, lookups=2, seed=seed)
    dep = scen.deployment
    net = scen.extra["net"]
    qp = QueryProcessor(dep)
    if gc:
        dep.register_querier(qp)
    qp.prefetch()
    for phase in range(phases):
        net.stabilize(rounds=1)
        source = net.members[phase % len(net.members)][0]
        net.lookup(source, (net.size // 3 + phase) % net.size,
                   f"gc-arm-{phase}")
        qp.refresh()
        if gc:
            dep.run_gc(checkpoint=True)
    log_bytes = {str(name): node.log.size_bytes()
                 for name, node in dep.nodes.items()}
    # The audit must stay sound at steady state: one more lookup, a
    # refresh to cover it, and a query; nothing may be red on this
    # healthy ring.
    source = net.members[0][0]
    results = net.lookup(source, net.size // 3, "gc-arm-final")
    qp.refresh()
    result = qp.why(results[0], node=source, scope=4)
    qp.close()
    return dep, log_bytes, result


def _arm_summary(log_bytes):
    values = list(log_bytes.values())
    return {
        "mean_log_bytes": int(statistics.mean(values)),
        "max_log_bytes": max(values),
        "total_log_bytes": sum(values),
    }


def run_gc_scenario(n_nodes, phases, seed=7):
    dep_plain, plain_bytes, plain_result = _run_gc_arm(
        n_nodes, phases, gc=False, seed=seed
    )
    dep_gc, gc_bytes, gc_result = _run_gc_arm(
        n_nodes, phases, gc=True, seed=seed
    )
    meter = dep_gc.gc_meter
    entry = {
        "phases": phases,
        "no_gc": _arm_summary(plain_bytes),
        "gc": _arm_summary(gc_bytes),
        "gc_passes": meter.gc_passes,
        "log_bytes_reclaimed": meter.log_bytes_reclaimed,
        "entries_discarded": meter.entries_discarded,
        "retention_faults": len(dep_gc.maintainer.retention_faults),
        "query_clean_no_gc": not plain_result.red_vertices(),
        "query_clean_gc": not gc_result.red_vertices(),
    }
    entry["reduction_factor"] = round(
        entry["no_gc"]["mean_log_bytes"]
        / max(1, entry["gc"]["mean_log_bytes"]), 3
    )
    return entry


def check_gc(name, entry, min_reduction):
    # Explicit raises, not asserts: this is CI's acceptance gate and must
    # survive `python -O`.
    if not entry["query_clean_no_gc"]:
        raise SystemExit(
            f"{name}: the no-GC baseline audit is not clean — the ring "
            "itself is unhealthy, so the GC comparison is meaningless"
        )
    if not entry["query_clean_gc"]:
        raise SystemExit(
            f"{name}: the post-GC audit found red vertices on a healthy "
            "ring — truncation corrupted a verdict"
        )
    if entry["retention_faults"]:
        raise SystemExit(
            f"{name}: honest nodes were convicted of retention faults"
        )
    if entry["reduction_factor"] < min_reduction:
        raise SystemExit(
            f"{name}: GC'd logs are only {entry['reduction_factor']}x "
            f"smaller than no-GC, below the {min_reduction}x target"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny ring + fewer phases for CI; still "
                             "enforces boundedness and a clean audit")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        configs = [("chord@10", 10, 6, 2.0)]
    else:
        configs = [("chord@50", 50, 10, 5.0)]

    scenarios = {}
    for name, n_nodes, phases, min_reduction in configs:
        entry = run_gc_scenario(n_nodes, phases)
        check_gc(name, entry, min_reduction)
        scenarios[name] = entry
        print(f"{name:>10}  no-gc {entry['no_gc']['mean_log_bytes']:>10,} B"
              f"/node → gc {entry['gc']['mean_log_bytes']:>9,} B/node "
              f"({entry['reduction_factor']}x smaller, "
              f"{entry['gc_passes']} passes, "
              f"{entry['log_bytes_reclaimed']:,} B reclaimed, "
              f"clean={entry['query_clean_gc']})")

    payload = {
        "benchmark": "storage-gc",
        "smoke": args.smoke,
        "scenarios": scenarios,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
