"""Figure 6: per-node log growth (MB/minute), excluding checkpoints.

Paper result: 0.066 MB/min (Chord-Small) to 0.74 MB/min (Quagga); Quagga
grows fastest because its baseline generates the largest number of
messages; Hadoop's incremental cost is tiny because input files are logged
by reference (hash). The breakdown is messages / signatures /
authenticators / index.
"""

import statistics

from scenarios import print_table, run_hadoop

from repro.metrics import StorageReport


def _reports(scenario):
    dep = scenario.deployment
    return [
        StorageReport.from_log(node.log, scenario.nominal_duration_s)
        for node in dep.nodes.values()
    ]


def _mean_growth(scenario):
    rates = [r.growth_mb_per_minute() for r in _reports(scenario)]
    return statistics.mean(rates) if rates else 0.0


class TestFigure6Shape:
    def test_quagga_grows_fastest(self, configurations):
        growth = {name: _mean_growth(s)
                  for name, s in configurations.items()}
        assert growth["Quagga"] == max(growth.values())

    def test_all_rates_positive_and_practical(self, configurations):
        for name, scenario in configurations.items():
            rate = _mean_growth(scenario)
            assert rate > 0, name
            # Paper rates are < 1 MB/min per node; ours are scaled down
            # but must stay within an order of magnitude of that.
            assert rate < 10.0, name

    def test_breakdown_components_present(self, configurations):
        for name, scenario in configurations.items():
            totals = _reports(scenario)
            assert sum(r.message_bytes for r in totals) > 0, name
            assert sum(r.authenticator_bytes for r in totals) > 0, name
            assert sum(r.index_bytes for r in totals) > 0, name

    def test_checkpoints_excluded_from_growth(self, configurations):
        scenario = configurations["Chord-Small"]
        scenario.deployment.checkpoint_all()
        for report in _reports(scenario):
            assert report.total_bytes(include_checkpoints=True) >= \
                report.total_bytes(include_checkpoints=False)

    def test_hadoop_logs_reference_files_not_contents(self, configurations):
        # The mapTask entries carry a hash, not the split text: each
        # node's log must be much smaller than the input corpus would be.
        scenario = configurations["Hadoop-Large"]
        corpus_bytes = sum(
            len(text) for text in
            scenario.extra["corpus"].splits(8)
        )
        for node_name in [m for m in scenario.deployment.nodes
                          if m.startswith("map")]:
            log = scenario.deployment.node(node_name).log
            ins_entries = [e for e in log.entries if e.entry_type == "ins"]
            from repro.util.serialization import canonical_size
            ins_bytes = sum(canonical_size(e.content) for e in ins_entries)
            assert ins_bytes < corpus_bytes / 4

    def test_print_figure6(self, configurations, benchmark):
        growth = benchmark.pedantic(
            lambda: {name: _mean_growth(s)
                     for name, s in configurations.items()},
            rounds=1, iterations=1,
        )
        assert growth["Quagga"] == max(growth.values())
        assert all(rate > 0 for rate in growth.values())
        rows = []
        for name, scenario in configurations.items():
            reports = _reports(scenario)
            rows.append([
                name,
                f"{_mean_growth(scenario):.4f}",
                f"{statistics.mean([r.message_bytes for r in reports]):.0f}",
                f"{statistics.mean([r.signature_bytes for r in reports]):.0f}",
                f"{statistics.mean([r.authenticator_bytes for r in reports]):.0f}",
                f"{statistics.mean([r.index_bytes for r in reports]):.0f}",
            ])
        print_table(
            "Figure 6 — per-node log growth "
            "(paper: 0.066 [Chord-S] ... 0.74 [Quagga] MB/min)",
            ["config", "MB/min", "msg B", "sig B", "auth B", "index B"],
            rows,
        )


class TestFigure6Benchmarks:
    def test_hadoop_scenario_runtime(self, benchmark):
        benchmark.pedantic(
            lambda: run_hadoop(n_words=600, seed=1),
            rounds=1, iterations=1,
        )
