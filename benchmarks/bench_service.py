"""Service-plane benchmark: audit-as-a-service under concurrent load.

Boots an in-process monitor daemon (real asyncio servers on loopback),
pushes a Chord deployment's logs over the framed transport, then
measures:

* **results_match** (hard gate) — every REST client's audit summary is
  bit-identical to a direct in-process ``QueryProcessor`` audit;
* **request throughput** — wall-clock requests/second for 1, 4, and 16
  concurrent REST clients sharing the one daemon (the single qp worker
  serializes audits; batching should keep the ramp sub-linear, not
  collapse it);
* **subscription fan-out** — with N standing subscribers watching the
  audited vertex, inject a fork at the adversary, push once, and
  measure push→alert latency per subscriber (every one must be told,
  within the one push);
* the daemon's :class:`~repro.metrics.ServiceMeter` counters, the
  deterministic side of the run (frames, pushes, dedup'd watch
  evaluations) that ``check_regression.py`` gates against baselines.

``--smoke`` runs chord@8 for CI; the full run uses chord@16 and more
clients. Wall-clock numbers are reported but never compared across
machines — the regression gate reads only counters and match flags.
"""

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from scenarios import print_table  # noqa: E402

from repro.apps.chord import ChordNetwork  # noqa: E402
from repro.service import (  # noqa: E402
    MonitorClient, ServicePusher, start_monitor_thread, tup_spec,
)
from repro.snp import Deployment, QueryProcessor  # noqa: E402
from repro.snp.adversary import ForkingNode  # noqa: E402

OUT_PATH = Path(__file__).parent / "BENCH_service.json"


def build_workload(n_nodes, adversary="n3", seed=11, ring_bits=12):
    """A stabilized chord ring plus one lookup routed *through* the
    (future) adversary, so the audited vertex's provenance crosses its
    log (same construction as tools/service_e2e.py)."""
    dep = Deployment(seed=seed, key_bits=256)
    net = ChordNetwork(dep, n_nodes=n_nodes, ring_bits=ring_bits,
                       seed=seed, node_overrides={adversary: ForkingNode})
    net.bootstrap(neighbors=2)
    net.stabilize(rounds=2)
    names = [name for name, _r in net.members]
    index = names.index(adversary)
    key = (net.ring_id(names[(index + 1) % len(names)]) - 1) % net.size
    results = net.lookup(names[index - 1], key, "bench-0")
    if not results:
        raise SystemExit("chord lookup produced no result")
    return dep, net, results[0]


def measure_throughput(port, spec, expected, n_clients, queries_each):
    """N threads, each its own REST client, all released together."""
    barrier = threading.Barrier(n_clients + 1)
    mismatches = []
    errors = []

    def worker():
        client = MonitorClient("127.0.0.1", port, timeout=120)
        barrier.wait()
        for _q in range(queries_each):
            try:
                out = client.query(spec)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(repr(exc))
                return
            if not out.get("ok") or out["result"] != expected:
                mismatches.append(out)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join(300)
    wall = time.perf_counter() - started
    requests = n_clients * queries_each
    return {
        "clients": n_clients,
        "requests": requests,
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(requests / wall, 2) if wall else None,
        "all_match": not mismatches and not errors,
        "errors": len(errors),
    }


def run_scenario(n_nodes, clients_arms, subscribers, queries_each,
                 adversary="n3", seed=11):
    dep, net, target = build_workload(n_nodes, adversary=adversary,
                                      seed=seed)
    with QueryProcessor(dep) as qp:
        qp.refresh()
        direct = qp.why(target).summary()

    handle = start_monitor_thread(host="127.0.0.1", push_port=0,
                                  http_port=0)
    try:
        daemon = handle.daemon
        pusher = ServicePusher(dep, "127.0.0.1", daemon.push_port)
        ack = pusher.push_once()
        assert ack is not None and not ack["shed"]

        spec = tup_spec(target)
        client = MonitorClient("127.0.0.1", daemon.http_port, timeout=120)
        first = client.query(dict(spec, fresh=True))
        results_match = bool(first.get("ok")) and first["result"] == direct

        throughput = {}
        for n_clients in clients_arms:
            arm = measure_throughput(daemon.http_port, spec, direct,
                                     n_clients, queries_each)
            throughput[str(n_clients)] = arm
            results_match = results_match and arm["all_match"]

        streams = [client.subscribe([spec]) for _ in range(subscribers)]
        for stream in streams:
            assert stream.next_event(timeout=60)["type"] == "subscribed"
            stream.events_until(lambda e: e.get("type") == "state",
                                timeout=60)

        dep.node(adversary).fork_log(keep_upto=3)
        net.stabilize(rounds=1)
        pushed_at = time.perf_counter()
        ack = pusher.push_once()
        assert ack is not None and not ack["shed"]

        latencies = []
        alerts_delivered = 0
        for stream in streams:
            alert = stream.events_until(
                lambda e: e.get("type") == "alert", timeout=120)[-1]
            latencies.append(time.perf_counter() - pushed_at)
            if (alert["from"] == "green" and alert["to"] == "red"
                    and adversary in alert["faulty_nodes"]):
                alerts_delivered += 1
        for stream in streams:
            stream.close()

        red = client.query(dict(spec, fresh=True))
        with QueryProcessor(dep) as qp:
            qp.refresh()
            direct_red = qp.why(target).summary()
        conviction_match = (bool(red.get("ok"))
                            and red["result"]["verdict"] == "red"
                            and direct_red["verdict"] == "red"
                            and red["result"]["faulty_nodes"]
                            == direct_red["faulty_nodes"])

        pusher.close()
        meter = daemon.meter.as_dict()
    finally:
        handle.stop()

    return {
        "nodes": n_nodes,
        "results_match": results_match,
        "conviction_match": conviction_match,
        "throughput": throughput,
        "fanout": {
            "subscribers": subscribers,
            "alerts_delivered": alerts_delivered,
            "mean_latency_seconds": round(statistics.mean(latencies), 4)
            if latencies else None,
            "max_latency_seconds": round(max(latencies), 4)
            if latencies else None,
        },
        "pusher": {k: v for k, v in pusher.meter.as_dict().items() if v},
        "meter": meter,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (chord@8, 16 clients max)")
    parser.add_argument("--out", type=Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        scenarios = {"chord@8": run_scenario(
            8, clients_arms=(1, 4, 16), subscribers=8, queries_each=3)}
    else:
        scenarios = {"chord@16": run_scenario(
            16, clients_arms=(1, 4, 16, 32), subscribers=16,
            queries_each=5)}

    payload = {"mode": "smoke" if args.smoke else "full",
               "scenarios": scenarios}
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    for name, entry in scenarios.items():
        print(f"\n{name}: results_match={entry['results_match']} "
              f"conviction_match={entry['conviction_match']}")
        rows = [[arm["clients"], arm["requests"], arm["wall_seconds"],
                 arm["requests_per_second"], arm["all_match"]]
                for arm in entry["throughput"].values()]
        print_table(f"{name} REST throughput",
                    ["clients", "requests", "wall s", "req/s", "match"],
                    rows)
        fanout = entry["fanout"]
        print(f"fan-out: {fanout['alerts_delivered']}/"
              f"{fanout['subscribers']} subscribers alerted, "
              f"mean {fanout['mean_latency_seconds']}s "
              f"max {fanout['max_latency_seconds']}s after push")

    bad = [name for name, entry in scenarios.items()
           if not (entry["results_match"] and entry["conviction_match"]
                   and entry["fanout"]["alerts_delivered"]
                   == entry["fanout"]["subscribers"])]
    if bad:
        print(f"FAILED scenarios: {', '.join(bad)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
