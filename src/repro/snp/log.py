"""The tamper-evident log (paper Section 5.4).

A node's log λ is a sequence of entries ``e_k = (t_k, y_k, c_k)`` with six
entry types:

* ``snd`` / ``rcv`` record messages,
* ``ack`` records acknowledgments,
* ``ins`` / ``del`` record base-tuple changes (including the choice tokens
  of 'maybe' rules, per Appendix A.1),
* ``chk`` records a checkpoint (the Section 5.6 optimization) — a Merkle
  commitment to the node's full state plus the snapshot needed to restart
  replay there.

Each entry carries the running hash ``h_k = H(h_{k-1} || t_k || y_k ||
H(c_k))``; an :class:`~repro.snp.evidence.Authenticator` signing ``(k, t_k,
h_k)`` commits the node to the exact prefix ``e_1..e_k``.

Entries separate *content* (committed, hashed) from *aux* (derived
convenience objects such as the parsed :class:`~repro.model.Msg`, kept so
the simulation does not re-parse byte strings; everything in aux is
reconstructible from content).
"""

from repro.crypto.hashing import HashChain, content_digest
from repro.crypto.merkle import MerkleTree
from repro.util.serialization import canonical_size

SND = "snd"
RCV = "rcv"
ACK = "ack"
INS = "ins"
DEL = "del"
CHK = "chk"

ENTRY_TYPES = (SND, RCV, ACK, INS, DEL, CHK)


class LogEntry:
    __slots__ = (
        "index", "timestamp", "entry_type", "content", "content_hash",
        "entry_hash", "aux",
    )

    def __init__(self, index, timestamp, entry_type, content, content_hash,
                 entry_hash, aux=None):
        self.index = index
        self.timestamp = timestamp
        self.entry_type = entry_type
        self.content = content
        self.content_hash = content_hash
        self.entry_hash = entry_hash
        self.aux = aux or {}

    def size_bytes(self):
        """Committed size of this entry (content + fixed header)."""
        return canonical_size(self.content) + 16

    def meta(self):
        """(index, t, type, content-hash) — enough to verify chain
        continuity without revealing the content."""
        return (self.index, self.timestamp, self.entry_type,
                self.content_hash)

    def __repr__(self):
        return (
            f"LogEntry(#{self.index} {self.entry_type} t={self.timestamp:g})"
        )


class NodeLog:
    """Append-only tamper-evident log for one node.

    Entry indexes are *logical* and stable: ``len(log)`` is the head
    index, which keeps counting past checkpoint GC. After
    :meth:`truncate_below`, entries below ``first_index`` are gone but the
    chain hash preceding the floor survives as the tombstone anchor, so
    suffix authentication, delta retrieval and checkpoint-seeded replay at
    or above the floor still verify exactly as before.
    """

    def __init__(self, node_id):
        self.node_id = node_id
        self.entries = []
        self.chain = HashChain()
        #: Logical index of the oldest retained entry (1 = untruncated).
        self.first_index = 1
        #: How many entries checkpoint GC has discarded so far.
        self.discarded_entries = 0

    def __len__(self):
        """The *head index* (logical length, counting truncated entries)."""
        return self.first_index - 1 + len(self.entries)

    @property
    def truncated(self):
        return self.first_index > 1

    def append(self, timestamp, entry_type, content, aux=None):
        if entry_type not in ENTRY_TYPES:
            raise ValueError(f"unknown entry type {entry_type!r}")
        digest = content_digest(content)
        entry_hash = self.chain.append(timestamp, entry_type, digest)
        entry = LogEntry(
            index=len(self) + 1,
            timestamp=timestamp,
            entry_type=entry_type,
            content=content,
            content_hash=digest,
            entry_hash=entry_hash,
            aux=aux,
        )
        self.entries.append(entry)
        return entry

    def entry(self, index):
        """1-based logical access."""
        if index < self.first_index:
            raise IndexError(
                f"entry {index} of {self.node_id!r} was discarded by "
                f"checkpoint GC (log now starts at {self.first_index})"
            )
        return self.entries[index - self.first_index]

    def head_hash(self):
        return self.chain.head()

    def hash_before(self, index):
        """``h_{index-1}``: the chain hash preceding entry *index*."""
        return self.chain.hash_at(index - 1)

    def segment(self, start=1, end=None):
        """Entries ``start..end`` inclusive (1-based; end=None → head)."""
        if end is None:
            end = len(self)
        if start < self.first_index:
            raise IndexError(
                f"segment start {start} predates the retained log of "
                f"{self.node_id!r} (starts at {self.first_index})"
            )
        offset = self.first_index
        return self.entries[start - offset:end - offset + 1]

    def size_bytes(self):
        return sum(entry.size_bytes() for entry in self.entries)

    def last_checkpoint_before(self, index):
        """The latest retained CHK entry at or before *index*, or None."""
        if index < self.first_index:
            return None
        for entry in reversed(self.entries[:index - self.first_index + 1]):
            if entry.entry_type == CHK:
                return entry
        return None

    def truncate_below(self, floor):
        """Discard entries below *floor* (which must be a retained CHK
        entry — the checkpoint that seeds replay for everything the
        truncation throws away). Keeps ``h_{floor-1}`` as the tombstone
        anchor, so ``retrieve(since_index >= floor-1)``, suffix
        authentication, and checkpoint-seeded replay still verify.

        Returns the committed bytes reclaimed (0 when *floor* is at or
        below the current base).
        """
        if floor <= self.first_index:
            return 0
        if floor > len(self):
            raise ValueError(
                f"retention floor {floor} is past the log head {len(self)}"
            )
        pivot = self.entry(floor)
        if pivot.entry_type != CHK:
            raise ValueError(
                f"retention floor {floor} is a {pivot.entry_type!r} entry; "
                "truncation must anchor on a checkpoint"
            )
        dropped = self.entries[:floor - self.first_index]
        reclaimed = sum(entry.size_bytes() for entry in dropped)
        self.entries = self.entries[floor - self.first_index:]
        self.chain.truncate_below(floor)
        self.first_index = floor
        self.discarded_entries += len(dropped)
        return reclaimed

    # ------------------------------------------------------- construction

    def append_checkpoint(self, timestamp, snapshot, extant, believed):
        """Record a checkpoint: Merkle roots over the node's state plus the
        replay snapshot (Section 5.6: 'all currently extant or believed
        tuples and, for each tuple, the time when it appeared')."""
        extant_leaves = [
            (tup.canonical(), appeared) for tup, appeared in extant
        ]
        believed_leaves = [
            (tup.canonical(), peer, appeared)
            for tup, peer, appeared in believed
        ]
        local_tree = MerkleTree(extant_leaves)
        belief_tree = MerkleTree(believed_leaves)
        content = (
            "checkpoint", local_tree.root(), belief_tree.root(),
            len(extant_leaves), len(believed_leaves),
        )
        return self.append(
            timestamp, CHK, content,
            aux={
                "snapshot": snapshot,
                "extant": list(extant),
                "believed": list(believed),
            },
        )
