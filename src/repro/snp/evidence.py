"""Authenticators and evidence sets (paper Sections 4.1 and 5.4).

An authenticator ``a_k = (t_k, h_k, σ_i(t_k || h_k))`` is a node's signed
commitment that entry ``e_k`` (and, through the hash chain, the whole prefix
``e_1..e_k``) exists in its log. We additionally include the entry index
``k`` in the signed payload — a convenience (the verifier would otherwise
locate k by scanning) that strictly strengthens the commitment.

The querier accumulates authenticators in an :class:`EvidenceStore` (the
paper's ε). Each node also keeps the authenticators it received from each
peer (the sets ``U_{i,j}``), which is what the consistency check draws on to
expose equivocation: two valid authenticators from the same node whose
(index, hash) pairs do not lie on one chain prove a fork.
"""

from repro.util.errors import AuthenticationError

# Wire-size constants from the paper (Section 7.4), used by the traffic
# accounting so that overhead *shapes* match the published numbers:
# "22 bytes for a timestamp and a reference count, 156 bytes for an
# authenticator, and 187 bytes for an acknowledgment".
TIMESTAMP_OVERHEAD_BYTES = 22
AUTHENTICATOR_BYTES = 156
ACK_BYTES = 187


class Authenticator:
    """A signed (index, time, hash) commitment by *node*."""

    __slots__ = ("node", "index", "timestamp", "entry_hash", "signature")

    def __init__(self, node, index, timestamp, entry_hash, signature):
        self.node = node
        self.index = index
        self.timestamp = timestamp
        self.entry_hash = entry_hash
        self.signature = signature

    def payload(self):
        return ("auth", self.node, self.index, self.timestamp,
                self.entry_hash)

    def __repr__(self):
        return (
            f"Authenticator({self.node}, k={self.index}, "
            f"t={self.timestamp:g}, h={self.entry_hash[:8]}…)"
        )


def sign_authenticator(identity, index, timestamp, entry_hash):
    auth = Authenticator(identity.node_id, index, timestamp, entry_hash, None)
    auth.signature = identity.sign(auth.payload())
    return auth


def verify_authenticator(verifier_identity, public_key, auth):
    """Check the signature; raises AuthenticationError on failure."""
    if not verifier_identity.verify(public_key, auth.payload(),
                                    auth.signature):
        raise AuthenticationError(
            f"authenticator from {auth.node!r} has an invalid signature"
        )
    return True


class RetentionFloor:
    """A node's signed retention-floor advertisement (checkpoint GC).

    By signing ``(node, floor_index, floor_time)`` the node commits to
    retaining entry ``floor_index`` (a checkpoint) and everything after
    it. The advertisement is evidence in the PeerReview sense: paired
    with a live auditor's signed head below the floor it convicts a
    floor-liar, and paired with a retrieve response that cannot anchor at
    the floor it convicts an over-eager truncator.
    """

    __slots__ = ("node", "floor_index", "floor_time", "signature")

    def __init__(self, node, floor_index, floor_time, signature):
        self.node = node
        self.floor_index = floor_index
        self.floor_time = floor_time
        self.signature = signature

    def payload(self):
        return ("retention-floor", self.node, self.floor_index,
                self.floor_time)

    def __repr__(self):
        return (
            f"RetentionFloor({self.node}, floor={self.floor_index}, "
            f"t={self.floor_time:g})"
        )


def sign_retention_floor(identity, floor_index, floor_time):
    advert = RetentionFloor(identity.node_id, floor_index, floor_time, None)
    advert.signature = identity.sign(advert.payload())
    return advert


def verify_retention_floor(public_key, advert):
    """Check the advertisement's signature directly against the node's
    public key; raises AuthenticationError on failure."""
    from repro.util.serialization import canonical_bytes
    if not public_key.verify(canonical_bytes(advert.payload()),
                             advert.signature):
        raise AuthenticationError(
            f"retention-floor advertisement from {advert.node!r} has an "
            "invalid signature"
        )
    return True


class EvidenceStore:
    """The querier's evidence set ε: authenticators indexed by node.

    Also remembers, per node, the authenticators *other* nodes hold about
    it once collected — the raw material of the consistency check.
    """

    def __init__(self):
        self._by_node = {}

    def add(self, auth):
        self._by_node.setdefault(auth.node, []).append(auth)

    def for_node(self, node):
        return list(self._by_node.get(node, ()))

    def best_for_node(self, node):
        """The authenticator covering the longest prefix of *node*'s log."""
        candidates = self._by_node.get(node)
        if not candidates:
            return None
        return max(candidates, key=lambda a: a.index)

    def prune_checked_below(self, node, head_index, checked_sigs):
        """Evict *node*'s authenticators already verified against its
        trusted chain below *head_index* (the bounded-querier satellite:
        see ``MicroQuerier.compact_evidence``). Only entries whose
        signature appears in *checked_sigs* are dropped — unverified
        evidence is never discarded, whatever its index. Returns the
        dropped entries (duplicates included: every copy of a pruned
        signature goes at once)."""
        held = self._by_node.get(node)
        if not held:
            return []
        kept, dropped = [], []
        for auth in held:
            if auth.index < head_index \
                    and bytes(auth.signature) in checked_sigs:
                dropped.append(auth)
            else:
                kept.append(auth)
        if dropped:
            if kept:
                self._by_node[node] = kept
            else:
                del self._by_node[node]
        return dropped

    def nodes(self):
        return list(self._by_node)

    def __len__(self):
        return sum(len(v) for v in self._by_node.values())
