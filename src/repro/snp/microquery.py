"""The microquery module (paper Section 5.5).

``microquery(v, ε)`` works by (1) using evidence ε to retrieve a log prefix
from ``host(v)``, (2) replaying it to regenerate that node's partition of
Gν, and (3) checking that v exists in it. The result is a color notification
— yellow while unresolved, then black or red — plus v's predecessors and
successors with the extra evidence needed to continue exploring.

This implementation caches one *view* per node (the verified, replayed
subgraph); repeated microqueries against the same node hit the cache, which
is the caching optimization Section 5.6 describes. The view records how the
node turned out:

* ``ok`` — log verified and replayed; vertex colors come from the GCA;
* ``proven-faulty`` — the node returned a log that contradicts signed
  evidence (broken hash chain, mismatched authenticator, forged embedded
  signature, or an equivocation exposed by the consistency check);
* ``unreachable`` — the node did not respond to retrieve; its vertices stay
  yellow (Section 4.2's fourth limitation).
"""

import time

from repro.metrics import QueryStats
from repro.snp.evidence import (
    EvidenceStore, verify_authenticator, AUTHENTICATOR_BYTES,
)
from repro.snp.log import RCV, ACK
from repro.snp.replay import (
    check_against_authenticator, replay_segment, verify_segment_hashes,
)
from repro.provgraph.vertices import Color, SEND, RECEIVE
from repro.util.errors import AuthenticationError, LogVerificationError
from repro.util.serialization import canonical_size

OK = "ok"
PROVEN_FAULTY = "proven-faulty"
UNREACHABLE = "unreachable"


class NodeView:
    """The querier's verified view of one node."""

    __slots__ = ("node", "status", "graph", "log_len", "verdict_reason",
                 "replay")

    def __init__(self, node, status, graph=None, log_len=0,
                 verdict_reason=None, replay=None):
        self.node = node
        self.status = status
        self.graph = graph
        self.log_len = log_len
        self.verdict_reason = verdict_reason
        self.replay = replay


class MicroResult:
    """What one microquery invocation returns (Section 4.3)."""

    __slots__ = ("vertex", "colors", "predecessors", "successors")

    def __init__(self, vertex, colors, predecessors, successors):
        self.vertex = vertex
        self.colors = colors            # e.g. ["yellow", "black"]
        self.predecessors = predecessors
        self.successors = successors

    @property
    def final_color(self):
        return self.colors[-1]


class MicroQuerier:
    def __init__(self, deployment, use_checkpoints=False,
                 verify_embedded_signatures=True,
                 run_consistency_check=True):
        self.deployment = deployment
        self.use_checkpoints = use_checkpoints
        self.verify_embedded_signatures = verify_embedded_signatures
        self.run_consistency_check = run_consistency_check
        self.evidence = EvidenceStore()
        self.stats = QueryStats()
        self._views = {}
        self._querier_identity = deployment.ca and None
        # The querier needs its own identity only for verification calls;
        # reuse a lightweight one so crypto ops are counted separately.
        from repro.crypto.keys import NodeIdentity
        self._querier_identity = NodeIdentity(
            "__querier__", deployment.ca, key_bits=deployment.key_bits,
            seed=0x51,
        )

    # ------------------------------------------------------------- views

    def view_of(self, node_id):
        """Retrieve + verify + replay *node_id*'s log (cached)."""
        cached = self._views.get(node_id)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        view = self._build_view(node_id)
        self._views[node_id] = view
        return view

    def invalidate(self, node_id=None):
        """Drop cached views (e.g. after the system ran further)."""
        if node_id is None:
            self._views.clear()
        else:
            self._views.pop(node_id, None)

    def _build_view(self, node_id):
        node = self.deployment.nodes.get(node_id)
        response = None
        if node is not None:
            response = node.retrieve(from_checkpoint=self.use_checkpoints)
        from_mirror = False
        if response is None:
            # Section 5.8 extension: fall back to a replicated copy of the
            # log. The mirror is verified exactly like a direct response
            # (hash chain + origin's signed head), so a lying replica
            # cannot frame the origin.
            response = self.deployment.find_mirror(node_id)
            from_mirror = response is not None
            if from_mirror:
                response.from_mirror = True
        if response is None:
            return NodeView(node_id, UNREACHABLE,
                            verdict_reason="no response to retrieve")
        self.stats.logs_fetched += 1
        self.stats.log_bytes += sum(e.size_bytes() for e in response.entries)
        self.stats.authenticator_bytes += AUTHENTICATOR_BYTES
        if response.checkpoint is not None:
            self.stats.checkpoint_bytes += response.checkpoint.size_bytes()
            self.stats.checkpoint_bytes += self._snapshot_size(
                response.checkpoint
            )

        started = time.perf_counter()
        try:
            self._verify_response(node_id, response)
        except (LogVerificationError, AuthenticationError) as exc:
            self.stats.auth_check_seconds += time.perf_counter() - started
            if from_mirror:
                # A corrupt *mirror* is not evidence against the origin —
                # the replica may be the liar. The origin merely remains
                # unreachable (its vertices stay yellow).
                return NodeView(node_id, UNREACHABLE,
                                verdict_reason=f"bad mirror: {exc}")
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(exc))
        self.stats.auth_check_seconds += time.perf_counter() - started

        alarms = self.deployment.maintainer.alarmed_msg_ids()
        result = replay_segment(
            node_id, response, self.deployment.app_factories[node_id],
            t_prop=self.deployment.effective_t_prop(),
            known_alarm_msg_ids=alarms,
        )
        self.stats.replay_seconds += result.replay_seconds
        self.stats.events_replayed += result.events_replayed
        if not result.ok:
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(result.failure),
                            replay=result)
        self._harvest_evidence(response)
        end_index = response.start_index + len(response.entries) - 1
        return NodeView(node_id, OK, graph=result.graph, log_len=end_index,
                        replay=result)

    def _snapshot_size(self, chk_entry):
        try:
            return canonical_size(
                [t.canonical() for t, _at in chk_entry.aux["extant"]]
            )
        except Exception:
            return 0

    # -------------------------------------------------------- verification

    def _verify_response(self, node_id, response):
        """All the checks that can *prove* the node faulty.

        1. The fresh head authenticator must be validly signed and match
           the recomputed hash chain.
        2. Every evidence authenticator we hold for this node must lie on
           the returned chain.
        3. Embedded authenticators in rcv/ack entries must carry valid
           signatures from their claimed signers (a node cannot launder a
           forged message into its log).
        4. Consistency check (Section 5.5): authenticators other nodes hold
           about this node must lie on the same chain — two signed heads
           off-chain expose equivocation.
        """
        public_key = self.deployment.public_key_of(node_id)
        verify_authenticator(self._querier_identity, public_key,
                             response.head_auth)
        hashes = verify_segment_hashes(response)
        check_against_authenticator(response, hashes, response.head_auth)
        for auth in self.evidence.for_node(node_id):
            check_against_authenticator(response, hashes, auth)
        if response.checkpoint is not None:
            self._verify_checkpoint(node_id, response.checkpoint)
        if self.verify_embedded_signatures:
            self._verify_embedded(node_id, response)
        if self.run_consistency_check:
            self._consistency_check(node_id, response, hashes)

    def _verify_checkpoint(self, node_id, chk_entry):
        """Verify the checkpoint's tuple lists against the Merkle roots
        committed in the log entry (Section 7.7: the Quagga-Disappear
        query spends most of its time 'verifying partial checkpoints using
        a Merkle Hash Tree'). A mismatch means the node's replay seed does
        not match what it committed to — proof of tampering."""
        from repro.crypto.merkle import MerkleTree
        _tag, local_root, belief_root, n_local, n_believed = \
            chk_entry.content
        extant = chk_entry.aux.get("extant", [])
        believed = chk_entry.aux.get("believed", [])
        if len(extant) != n_local or len(believed) != n_believed:
            raise LogVerificationError(
                node_id, "checkpoint tuple counts do not match commitment"
            )
        local_tree = MerkleTree(
            [(tup.canonical(), appeared) for tup, appeared in extant]
        )
        belief_tree = MerkleTree(
            [(tup.canonical(), peer, appeared)
             for tup, peer, appeared in believed]
        )
        if local_tree.root() != local_root \
                or belief_tree.root() != belief_root:
            raise LogVerificationError(
                node_id, "checkpoint contents fail Merkle verification"
            )

    def _verify_embedded(self, node_id, response):
        for entry in response.entries:
            if entry.entry_type == RCV:
                auth = entry.aux.get("batch_auth")
                if auth is None:
                    raise LogVerificationError(
                        node_id, f"rcv entry {entry.index} lacks evidence"
                    )
                sender_key = self.deployment.public_key_of(auth.node)
                verify_authenticator(self._querier_identity, sender_key, auth)
            elif entry.entry_type == ACK:
                wire_ack = entry.aux.get("wire_ack")
                if wire_ack is None:
                    raise LogVerificationError(
                        node_id, f"ack entry {entry.index} lacks evidence"
                    )
                acker_key = self.deployment.public_key_of(wire_ack.src)
                verify_authenticator(self._querier_identity, acker_key,
                                     wire_ack.auth)

    def _consistency_check(self, node_id, response, hashes):
        """Ask all other nodes for authenticators signed by *node_id* and
        check each against the retrieved chain (Section 5.5)."""
        public_key = self.deployment.public_key_of(node_id)
        for auth in self.deployment.collect_authenticators_about(node_id):
            try:
                verify_authenticator(self._querier_identity, public_key, auth)
            except AuthenticationError:
                continue  # not actually signed by node_id; ignore
            check_against_authenticator(response, hashes, auth)

    def _harvest_evidence(self, response):
        """Collect the authenticators embedded in a verified log into the
        evidence store — they are what lets the querier verify the *next*
        node it visits."""
        for entry in response.entries:
            if entry.entry_type == RCV:
                auth = entry.aux.get("batch_auth")
                if auth is not None:
                    self.evidence.add(auth)
            elif entry.entry_type == ACK:
                wire_ack = entry.aux.get("wire_ack")
                if wire_ack is not None:
                    self.evidence.add(wire_ack.auth)
        self.evidence.add(response.head_auth)

    # ---------------------------------------------------------- microquery

    def microquery(self, vertex):
        """Run microquery for *vertex*; returns a MicroResult.

        The first color is always yellow (the vertex's color is unknown
        until host(v) responds); the second is the verdict.
        """
        self.stats.microqueries += 1
        resolved, color = self.resolve(vertex)
        view = self._views.get(resolved.node)
        preds, succs = [], []
        if view is not None and view.status == OK and resolved.key() in view.graph:
            preds = view.graph.predecessors(resolved)
            succs = view.graph.successors(resolved)
        colors = [Color.YELLOW]
        if color != Color.YELLOW:
            colors.append(color)
        return MicroResult(resolved, colors, preds, succs)

    def resolve(self, vertex):
        """Materialize *vertex* from its host's verified view.

        Returns (vertex, color). The returned vertex is the one from the
        host's replayed graph when available; otherwise the caller's stub,
        recolored according to what the retrieval proved:

        * host unreachable → yellow (can't tell yet);
        * host's log proven bogus → red;
        * host's replay lacks a send/receive the peer holds signed evidence
          for → red (the ``handle-extra-msg`` case: an omitted message).
        """
        view = self.view_of(vertex.node)
        if view.status == UNREACHABLE:
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if view.status == PROVEN_FAULTY:
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        real = view.graph.get(vertex.key())
        if real is not None:
            return real, real.color
        if vertex.vtype in (SEND, RECEIVE):
            # The peer's log contains signed evidence of this message, but
            # the host's replayed subgraph does not: the host suppressed it.
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        vertex.set_color(Color.RED)
        return vertex, Color.RED
