"""The microquery module (paper Section 5.5).

``microquery(v, ε)`` works by (1) using evidence ε to retrieve a log prefix
from ``host(v)``, (2) replaying it to regenerate that node's partition of
Gν, and (3) checking that v exists in it. The result is a color notification
— yellow while unresolved, then black or red — plus v's predecessors and
successors with the extra evidence needed to continue exploring.

This implementation caches one *view* per node (the verified, replayed
subgraph); repeated microqueries against the same node hit the cache, which
is the caching optimization Section 5.6 describes. The view records how the
node turned out:

* ``ok`` — log verified and replayed; vertex colors come from the GCA;
* ``proven-faulty`` — the node returned a log that contradicts signed
  evidence (broken hash chain, mismatched authenticator, forged embedded
  signature, or an equivocation exposed by the consistency check);
* ``unreachable`` — the node did not respond to retrieve; its vertices stay
  yellow (Section 4.2's fourth limitation).

Views are *extendable*: an ``ok`` view records its verified head (entry
index + chain hash) and retains the replay machinery, so
:meth:`MicroQuerier.refresh` can bring it up to date by fetching, verifying
and replaying only the log suffix appended since — a node whose returned
suffix does not continue the verified chain has provably forked its log
(see DESIGN.md, "Audit path").

Builds are *batched* and split in three (see DESIGN.md, "Process-pool
builds"):

* **fetch** (:class:`_BuildJob`, coordinator side) — retrieve or mirror
  fallback, the transport-sleep download model, transfer accounting, and
  the snapshotting of everything the verification needs: the frozen
  evidence-store prefix, the checked-authenticator memo, the consistency
  evidence collected from peers (cursored), the pending skipped
  authenticators, and the maintainer's alarm set;
* **compute** (:func:`repro.snp.wire.compute_build`) — hash-chain,
  signature, checkpoint and consistency verification plus deterministic
  replay, a pure function of the work item and a per-pool context. It can
  run inline, on a thread, or — because work items and outcomes have wire
  representations — in a worker process;
* **finalize** (calling thread, canonical node order) — evidence-store
  checks against what earlier batch members harvested, memo/cursor/pending
  commits, harvesting, view installation.

Parallel and serial executors therefore produce bit-identical views,
colors and counters: they run the same compute function on value-equal
inputs and finalize in the same order.
"""

import functools
import time

from repro.metrics import QueryStats
from repro.snp.evidence import EvidenceStore, AUTHENTICATOR_BYTES
from repro.snp.executor import make_executor
from repro.snp.log import RCV, ACK
from repro.snp.replay import (
    check_against_authenticator, verify_anchor_segment,
)
from repro.snp.wire import (
    BuildContext, BuildWork, CompactOutcome, ResidentReplay,
    ResidentViewLost, compute_build, note_checked,
)
from repro.provgraph.vertices import Color, SEND, RECEIVE
from repro.util.errors import AuthenticationError, LogVerificationError
from repro.util.serialization import canonical_size

OK = "ok"
PROVEN_FAULTY = "proven-faulty"
UNREACHABLE = "unreachable"


class NodeView:
    """The querier's verified view of one node.

    For an ``ok`` view, ``head_index``/``head_hash`` identify the last log
    entry whose chain hash the querier verified against a signed
    authenticator — the anchor a later :meth:`MicroQuerier.refresh` extends
    from. The invariant: ``graph`` is exactly the replay of entries
    ``1..head_index`` and ``head_hash`` is the chain hash ``h_head_index``.

    ``replay`` may be a live :class:`~repro.snp.replay.ReplayResult` or a
    :class:`~repro.snp.wire.LazyReplay` blob a worker process shipped
    back; ``graph`` materializes it on first access, so a standing
    auditor only pays the decode for views its queries actually touch.
    """

    __slots__ = ("node", "status", "_graph", "log_len", "verdict_reason",
                 "replay", "head_index", "head_hash", "head_time",
                 "base_index", "base_time")

    def __init__(self, node, status, graph=None, log_len=0,
                 verdict_reason=None, replay=None, head_index=0,
                 head_hash=None, head_time=float("-inf"),
                 base_index=0, base_time=float("-inf")):
        self.node = node
        self.status = status
        self._graph = graph
        self.log_len = log_len
        self.verdict_reason = verdict_reason
        self.replay = replay
        self.head_index = head_index
        self.head_hash = head_hash
        #: Timestamp of the last verified log entry: the horizon up to
        #: which an absence in ``graph`` is *meaningful* (a vertex the
        #: peers hold evidence for at a later t may simply postdate this
        #: view; its absence proves nothing yet).
        self.head_time = head_time
        #: Where verified coverage *starts*: a checkpoint-anchored build
        #: (GC'd log, or ``use_checkpoints``) replays from the checkpoint
        #: at ``base_index``/``base_time``, so the absence of a vertex
        #: strictly *below* ``base_time`` proves nothing either — it
        #: resolves yellow, never red (red stays reserved for proof).
        #: 0 / -inf for a from-entry-1 build.
        self.base_index = base_index
        self.base_time = base_time

    @property
    def graph(self):
        if self._graph is None and self.replay is not None:
            self._graph = self.replay.graph  # LazyReplay decodes here
        return self._graph

    def install_replay(self, replay):
        """Adopt a (possibly lazily-held) replay as this view's current
        state; the cached graph is re-derived on next access."""
        self.replay = replay
        self._graph = None


class MicroResult:
    """What one microquery invocation returns (Section 4.3)."""

    __slots__ = ("vertex", "colors", "predecessors", "successors")

    def __init__(self, vertex, colors, predecessors, successors):
        self.vertex = vertex
        self.colors = colors            # e.g. ["yellow", "black"]
        self.predecessors = predecessors
        self.successors = successors

    @property
    def final_color(self):
        return self.colors[-1]


class _BuildOutcome:
    """One node's build/extend result, ready for finalizing.

    Assembled on the coordinator by :meth:`_BuildJob.absorb` from the
    fetch step's bookkeeping plus the compute step's
    :class:`~repro.snp.wire.CompactOutcome` — identically whether the
    compute ran inline or came back over a process boundary. ``kind``:

    * ``final`` — ``view`` is already decided (unreachable, proven
      faulty, or a kept stale view); nothing left but to commit it;
    * ``built`` — a full build verified and replayed; the ``ok`` view is
      created during finalize, after the deferred evidence-store checks;
    * ``extended`` — an ``ok`` view (``base_view``) was advanced by a
      verified delta; finalize runs the evidence checks, then commits the
      new head and harvests.
    """

    __slots__ = ("node", "kind", "view", "base_view", "response", "hashes",
                 "stats", "checked", "cursor", "from_mirror",
                 "replay_result", "reset_memo", "evidence_prefix",
                 "replay_mutated", "recovered", "skipped", "tombstoned")

    def __init__(self, node, kind, stats):
        self.node = node
        self.kind = kind
        self.stats = stats
        self.view = None
        self.base_view = None
        self.response = None
        self.hashes = None
        self.checked = {}
        self.cursor = None
        self.from_mirror = False
        self.replay_result = None
        self.reset_memo = False
        #: How many of this node's evidence-store entries the compute step
        #: already checked (the store is frozen while jobs run); finalize
        #: checks only the tail harvested later in the batch.
        self.evidence_prefix = 0
        #: Whether the base view's committed-head replay state was
        #: advanced — a view kept on a failure path must then not stay
        #: extendable.
        self.replay_mutated = False
        #: Pending-skip registry traffic (see MicroQuerier._pending_skipped).
        self.recovered = ()
        self.skipped = ()
        self.tombstoned = ()

    def finalized(self, view):
        self.kind = "final"
        self.view = view
        return self


#: Sentinel submission: the resident executor lost this job's slot at
#: submit time (even after a respawn attempt) — collect falls back.
_LOST = object()


class _BuildJob:
    """One node's build/extend unit of work.

    ``fetch()`` runs against the deployment and snapshots the verification
    inputs into a :class:`~repro.snp.wire.BuildWork`; ``absorb()`` folds
    the compute step's :class:`~repro.snp.wire.CompactOutcome` back into a
    finalize-ready :class:`_BuildOutcome`. The run variants only differ in
    where the compute step executes:

    * :meth:`run_local` — inline (serial and threaded executors);
    * :meth:`run_remote` — in a process pool, work and outcome crossing as
      wire blobs;
    * :meth:`run_wire_check` — inline, but round-tripped through the wire
      layer (the :class:`~repro.snp.executor.WireCheckExecutor`).
    """

    __slots__ = ("mq", "node", "kind", "base_view", "stats", "response",
                 "from_mirror", "reset_memo", "cursor", "evidence_prefix",
                 "outcome", "factory", "floor_strict")

    def __init__(self, mq, node, base_view=None):
        self.mq = mq
        self.node = node
        self.kind = "built" if base_view is None else "extended"
        self.base_view = base_view
        self.stats = QueryStats()
        self.response = None
        self.from_mirror = False
        self.reset_memo = False
        self.cursor = None
        self.evidence_prefix = 0
        self.outcome = None
        self.factory = mq.deployment.app_factories.get(node)
        self.floor_strict = False

    # ------------------------------------------------------------- fetch

    def fetch(self):
        """Retrieve this node's segment and assemble the work item.

        Returns a BuildWork, or None when the job finished at fetch time
        (``self.outcome`` holds the final outcome: unreachable nodes,
        refresh targets that kept their stale-but-verified view, and
        nodes already convicted by the retention handshake).
        """
        fault = self.mq.deployment.retention_fault_of(self.node)
        if fault is not None:
            # Convicted at handshake time (e.g. a signed floor above a
            # live auditor's head): the proof stands without asking the
            # node anything — its log can never be trusted again.
            self.outcome = self._final(
                NodeView(self.node, PROVEN_FAULTY, verdict_reason=fault)
            )
            return None
        if self.kind == "extended":
            return self._fetch_extend()
        return self._fetch_full()

    def _fetch_extend(self):
        mq = self.mq
        view = self.base_view
        node_id = self.node
        node = mq.deployment.nodes.get(node_id)
        response = None
        if node is not None:
            response = node.retrieve(since_index=view.head_index)
        from_mirror = False
        if response is None:
            response = mq.deployment.find_mirror(
                node_id, since_index=view.head_index
            )
            from_mirror = response is not None
            if from_mirror:
                response.from_mirror = True
        if response is None:
            # unreachable: the stale view stays verified
            self.outcome = self._final(view)
            return None
        mq._simulate_transfer(response)
        if response.start_index != view.head_index + 1:
            # The responder did not (or could not) anchor at our head —
            # e.g. a log shorter than the verified head, or a replica that
            # only holds an older segment. Fall back to a full build: the
            # harvested evidence (which includes the old signed head)
            # still exposes any fork during full verification. The
            # response in hand is reused so the node is not asked to ship
            # its log twice — unless a checkpoint-anchored refetch is
            # preferred, in which case the discarded transfer still
            # happened and must be accounted.
            if mq.use_checkpoints and not from_mirror:
                mq._account_response(response, self.stats)
                return self._fetch_full()
            return self._fetch_full(response=response,
                                    from_mirror=from_mirror)
        self.from_mirror = from_mirror
        self.stats.delta_fetches += 1
        mq._account_response(response, self.stats)
        self.response = response
        return self._make_work()

    def _fetch_full(self, response=None, from_mirror=False):
        """Fetch for a from-scratch build. *response* short-circuits
        retrieval when the caller already holds a full response (the
        refresh fallback path) — trust in the chain is established from
        zero either way, so the memoized evidence checks and the
        consistency cursor are dropped at finalize."""
        mq = self.mq
        node_id = self.node
        self.kind = "built"
        self.base_view = None
        self.reset_memo = True
        # A full build that asks for the untruncated log holds a GC'd
        # node to its signed floor: a direct response anchored above it
        # is a retention violation (checkpoint-mode fetches legitimately
        # anchor on any newer checkpoint, so they cannot enforce this).
        self.floor_strict = not mq.use_checkpoints
        node = mq.deployment.nodes.get(node_id)
        if response is None:
            if node is not None:
                response = node.retrieve(from_checkpoint=mq.use_checkpoints)
            if response is None:
                # Section 5.8 extension: fall back to a replicated copy of
                # the log. The mirror is verified exactly like a direct
                # response (hash chain + origin's signed head), so a lying
                # replica cannot frame the origin.
                response = mq.deployment.find_mirror(node_id)
                from_mirror = response is not None
                if from_mirror:
                    response.from_mirror = True
            if response is not None:
                mq._simulate_transfer(response)
        if response is None:
            self.outcome = self._final(
                NodeView(node_id, UNREACHABLE,
                         verdict_reason="no response to retrieve")
            )
            return None
        self.from_mirror = from_mirror
        mq._account_response(response, self.stats)
        if response.checkpoint is not None:
            self.stats.checkpoint_bytes += response.checkpoint.size_bytes()
            self.stats.checkpoint_bytes += mq._snapshot_size(
                response.checkpoint
            )
        self.response = response
        return self._make_work()

    def _make_work(self):
        """Snapshot the querier-shared inputs (all frozen for the duration
        of the batch) into the work item the compute step consumes."""
        mq = self.mq
        node_id = self.node
        held = mq.evidence.for_node(node_id)
        self.evidence_prefix = len(held)
        if self.kind == "extended":
            known = frozenset(mq._checked_auths.get(node_id, ()))
            base_cursor = mq._consistency_cursors.get(node_id)
        else:
            known = frozenset()
            base_cursor = None
        consistency = None
        if mq.run_consistency_check:
            consistency, self.cursor = \
                mq.deployment.collect_authenticators_about_since(
                    node_id, base_cursor
                )
            consistency = tuple(consistency)
        pending = tuple(mq._pending_skipped.get(node_id, {}).values())
        view = self.base_view
        return BuildWork(
            node_id, self.kind, self.response,
            known=known, held=held, pending=pending,
            consistency=consistency,
            alarms=frozenset(mq.deployment.maintainer.alarmed_msg_ids()),
            head_index=view.head_index if view is not None else 0,
            head_hash=view.head_hash if view is not None else None,
            base_replay=view.replay if view is not None else None,
            factory=mq.deployment.app_factories.get(node_id),
            spec_cache=mq._batch_spec_cache,
            floor=mq.deployment.advertised_floor_of(node_id),
            floor_strict=self.floor_strict,
        )

    # ------------------------------------------------------------ absorb

    def _final(self, view):
        outcome = _BuildOutcome(self.node, "final", self.stats)
        outcome.from_mirror = self.from_mirror
        outcome.reset_memo = self.reset_memo
        return outcome.finalized(view)

    def absorb(self, result):
        """Fold a CompactOutcome into a finalize-ready _BuildOutcome.

        This is the single interpretation point for compute results — the
        same branching whether the result was produced inline or decoded
        from a worker — so the mirror/verdict policy can never diverge
        between executors.
        """
        node_id = self.node
        self.stats.merge(result.stats)
        outcome = _BuildOutcome(node_id, self.kind, self.stats)
        outcome.from_mirror = self.from_mirror
        outcome.reset_memo = self.reset_memo
        outcome.evidence_prefix = self.evidence_prefix
        outcome.cursor = self.cursor
        outcome.response = self.response
        outcome.checked = dict(result.checked)
        outcome.recovered = tuple(result.recovered)
        outcome.skipped = tuple(result.skipped)
        outcome.tombstoned = tuple(result.tombstoned)
        outcome.hashes = result.hashes
        outcome.replay_mutated = result.replay_ran
        replay = result.replay_result
        if replay is not None:
            replay.response = self.response
        if result.status == CompactOutcome.VERIFY_FAILED:
            if self.kind == "extended":
                if self.from_mirror:
                    # A corrupt replica cannot frame the origin; the
                    # origin is merely unreachable right now, so the view
                    # stays stale (verification precedes replay, so the
                    # base replay is still at its committed head).
                    return outcome.finalized(self.base_view)
                return outcome.finalized(
                    NodeView(node_id, PROVEN_FAULTY,
                             verdict_reason=result.reason)
                )
            if self.from_mirror:
                # A corrupt *mirror* is not evidence against the origin —
                # the replica may be the liar. The origin merely remains
                # unreachable (its vertices stay yellow).
                return outcome.finalized(
                    NodeView(node_id, UNREACHABLE,
                             verdict_reason=f"bad mirror: {result.reason}")
                )
            return outcome.finalized(
                NodeView(node_id, PROVEN_FAULTY,
                         verdict_reason=result.reason)
            )
        if result.status == CompactOutcome.REPLAY_FAILED:
            return outcome.finalized(
                NodeView(node_id, PROVEN_FAULTY,
                         verdict_reason=result.reason, replay=replay)
            )
        outcome.replay_result = replay
        outcome.base_view = self.base_view
        return outcome

    # -------------------------------------------------------- run variants

    def run_local(self, context):
        work = self.fetch()
        if work is None:
            return self.outcome
        return self.absorb(compute_build(work, context))

    def submit_remote(self, pool):
        """Fetch, then hand the work's wire form to the process pool.

        Returns the pending future, or None when the job finished at
        fetch time. Deliberately does *not* wait: the calling fetch
        thread moves straight on to its next job, so downloads keep
        overlapping while workers chew the compute queue.
        """
        work = self.fetch()
        if work is None:
            return None
        from repro.snp.wire import compute_build_wire
        return pool.submit(compute_build_wire, work.to_wire())

    def collect_remote(self, future):
        """Absorb a worker's compact outcome (submission order is the
        caller's responsibility — outcomes must finalize canonically)."""
        if future is None:
            return self.outcome
        return self.absorb(
            CompactOutcome.from_wire(future.result(), self.factory)
        )

    def submit_resident(self, executor):
        """Fetch, then ship the work to the node's owning worker slot.

        Like :meth:`submit_remote`, but through the resident executor's
        affinity routing: an extend crosses as a head reference (plus the
        fetched delta), never as the base replay. Returns a submission
        handle, None (finished at fetch), or the ``_LOST`` sentinel when
        the slot is down.
        """
        work = self.fetch()
        if work is None:
            return None
        try:
            return executor.submit_build(self.node, work.to_wire())
        except ResidentViewLost:
            return _LOST

    def collect_resident(self, executor, submission):
        """Collect a resident build, degrading losses to cold rebuilds.

        A dead worker (``ResidentViewLost``) or a worker that no longer
        holds the referenced base replay (``cache-miss``) answers with a
        from-scratch full build — bit-identical verdicts by construction,
        since a cold build never depends on cached state.
        """
        if submission is None:
            return self.outcome
        if submission is _LOST:
            return self._fallback_rebuild(executor)
        try:
            wire, shm_bytes = executor.collect_build(submission)
        except ResidentViewLost:
            return self._fallback_rebuild(executor)
        result = CompactOutcome.from_wire(wire, self.factory)
        result.stats.shm_bytes += shm_bytes
        if result.status == CompactOutcome.CACHE_MISS:
            self.stats.merge(result.stats)
            return self._fallback_rebuild(executor)
        return self.absorb_resident(executor, result)

    def absorb_resident(self, executor, result):
        """Absorb a resident outcome: an ``ok`` build whose replay stayed
        in the worker arrives as a ``resident_head`` and is wrapped in a
        :class:`~repro.snp.wire.ResidentReplay` handle here (a failed
        replay still ships its blob — the proven-faulty view keeps it as
        evidence, exactly like the blob pool)."""
        if result.status == CompactOutcome.OK \
                and result.resident_head is not None \
                and result.replay_result is None:
            head_index, head_hash = result.resident_head
            result.replay_result = ResidentReplay(
                executor, self.node, head_index, head_hash,
                machine_factory=self.factory, response=self.response,
            )
        return self.absorb(result)

    def _fallback_rebuild(self, executor):
        """Cold full rebuild after the resident plane lost this node's
        state. Tries the (possibly respawned) owning slot once — the
        fresh build repopulates its cache — and, if the slot is still
        down, computes inline as the last resort. The original job's
        fetch accounting is preserved."""
        job = _BuildJob(self.mq, self.node)
        job.stats.merge(self.stats)
        work = job.fetch()
        if work is None:
            return job.outcome
        try:
            submission = executor.submit_build(job.node, work.to_wire())
            wire, shm_bytes = executor.collect_build(submission)
            result = CompactOutcome.from_wire(wire, job.factory)
            result.stats.shm_bytes += shm_bytes
            if result.status != CompactOutcome.CACHE_MISS:
                return job.absorb_resident(executor, result)
        except ResidentViewLost:
            pass
        # Inline last resort: the cold build runs here, so the miss is
        # tallied here (worker-run builds count their own).
        job.stats.view_cache_misses += 1
        return job.absorb(compute_build(work, self.mq._build_context()))

    def run_wire_check(self, context):
        """In-process run that simulates the process boundary exactly:
        context, work and outcome all pass through ``pickle`` of their
        wire forms, so aliasing with coordinator state is severed and the
        serialization contract is exercised without spawn cost."""
        import pickle

        work = self.fetch()
        if work is None:
            return self.outcome
        factory = work.resolve_factory(context)
        round_context = BuildContext.from_wire(
            pickle.loads(pickle.dumps(context.to_wire()))
        )
        round_work = BuildWork.from_wire(
            pickle.loads(pickle.dumps(work.to_wire())), round_context
        )
        wire = pickle.loads(
            pickle.dumps(compute_build(round_work, round_context).to_wire())
        )
        return self.absorb(CompactOutcome.from_wire(wire, factory))


class MicroQuerier:
    def __init__(self, deployment, use_checkpoints=False,
                 verify_embedded_signatures=True,
                 run_consistency_check=True, executor=None,
                 fetch_pending_anchors=True):
        self.deployment = deployment
        self.use_checkpoints = use_checkpoints
        self.verify_embedded_signatures = verify_embedded_signatures
        self.run_consistency_check = run_consistency_check
        # When a batch leaves skipped-authenticator debt (evidence below a
        # partial segment's anchor), fetch the anchoring segment right
        # away instead of waiting for some later full build to happen by.
        # Off only for tests that need the pending state to persist.
        self.fetch_pending_anchors = fetch_pending_anchors
        # Ownership: an executor built here from a spec is closed by
        # close(); an executor *instance* handed in is the caller's to
        # manage (it may be shared across queriers).
        self._owns_executor = not (hasattr(executor, "run")
                                   or hasattr(executor, "run_jobs"))
        self.executor = make_executor(executor)
        self.evidence = EvidenceStore()
        self.stats = QueryStats()
        self._views = {}
        # Nodes whose view *semantically* changed in the most recent
        # refresh() — status flipped or the verified head advanced. The
        # per-epoch change set the monitor's watch evaluation consumes: an
        # empty set means the refresh was a no-op (every delta fetch came
        # back empty), so standing watches need no re-evaluation. None
        # until the first refresh (callers must assume "anything may have
        # changed").
        self.last_refresh_changed = None
        # Authenticators (by signature bytes) already verified to lie on a
        # node's trusted chain. A refresh extends that same chain, so these
        # need neither re-verification nor re-comparison — and, not being
        # coverage losses, they must not inflate ``auth_checks_skipped``.
        # Reset whenever trust in the chain is (re)established from
        # scratch (full rebuild, invalidate).
        self._checked_auths = {}
        # Per-node consistency-check cursors: how much of each peer's
        # received_auths was already scanned for evidence about the node
        # (see Deployment.collect_authenticators_about_since). Reset in
        # lockstep with the memo above.
        self._consistency_cursors = {}
        # Authenticators counted in ``auth_checks_skipped`` because they
        # fell below a partial-segment anchor, keyed node -> {signature:
        # Authenticator}. A later build whose segment reaches far enough
        # back retroactively checks them (compute's pending loop) instead
        # of silently dropping the coverage; entries drain when verified
        # (``auth_checks_recovered``) and survive invalidate() — they are
        # coverage debt, not chain trust.
        self._pending_skipped = {}
        # Nodes whose pending registry gained entries during the running
        # batch — the batch-end anchoring fetch's worklist.
        self._anchor_wanted = set()
        # Per-batch memo of factory → encoded wire spec (reset by
        # _run_batch): nodes sharing one AppFactory ship one snapshot.
        self._batch_spec_cache = {}
        self._context = None
        self._context_nodes = None
        prepare = getattr(self.executor, "prepare", None)
        if prepare is not None and deployment.nodes:
            # Warm pooled executors at construction so the first query
            # batch does not pay process spawn.
            prepare(self._build_context())

    def close(self):
        """Release the executor's worker threads/processes. Only executors
        this querier created (from a spec) are closed; a shared instance
        passed in by the caller is left running."""
        if not self._owns_executor:
            return
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def _build_context(self):
        """The compute step's per-deployment context (rebuilt only when the
        deployment's node set changes)."""
        nodes = self.deployment.nodes
        if self._context is None or self._context_nodes != set(nodes):
            self._context = BuildContext(
                {n: self.deployment.public_key_of(n) for n in nodes},
                verify_embedded_signatures=self.verify_embedded_signatures,
                t_prop=self.deployment.effective_t_prop(),
            )
            self._context_nodes = set(nodes)
        return self._context

    # ------------------------------------------------------------- views

    def view_of(self, node_id):
        """Retrieve + verify + replay *node_id*'s log (cached)."""
        cached = self._views.get(node_id)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        return self.build_views((node_id,))[node_id]

    def build_views(self, node_ids):
        """Ensure views exist for *node_ids*; returns ``{node_id: view}``.

        Missing views are built through the executor: the fetch+compute
        pipeline runs per node (possibly concurrently), then results are
        finalized on this thread in canonical node order — so the evidence
        a node's chain is checked against is exactly what a serial build
        of the same batch, in the same canonical order, would have
        accumulated before reaching it.
        """
        wanted, seen = [], set()
        for node_id in node_ids:
            if node_id not in seen:
                seen.add(node_id)
                wanted.append(node_id)
        missing = sorted((n for n in wanted if n not in self._views),
                         key=str)
        if missing:
            self._run_batch(
                missing, [_BuildJob(self, node_id) for node_id in missing]
            )
        return {node_id: self._views[node_id] for node_id in wanted}

    def invalidate(self, node_id=None):
        """Drop cached views (forces a full rebuild; prefer :meth:`refresh`
        when the cached view is trustworthy and the system merely ran
        further)."""
        if node_id is None:
            for view in self._views.values():
                self._evict_resident(view)
            self._views.clear()
            self._checked_auths.clear()
            self._consistency_cursors.clear()
        else:
            self._evict_resident(self._views.pop(node_id, None))
            self._checked_auths.pop(node_id, None)
            self._consistency_cursors.pop(node_id, None)

    def _evict_resident(self, view):
        """Explicitly drop a view's worker-resident state (invalidate,
        fork conviction, a superseding verdict). Best-effort — a dead
        worker already lost the entry."""
        replay = view.replay if view is not None else None
        if isinstance(replay, ResidentReplay):
            if replay.invalidate():
                self.stats.view_cache_evictions += 1

    def refresh(self, node_id=None):
        """Advance cached views to the deployment's current log heads.

        Fetches, verifies and replays only the log suffix appended since
        each view's verified head — the incremental counterpart of
        :meth:`invalidate` + rebuild. Per cached view:

        * ``ok`` — delta retrieve from the verified head; a suffix that
          does not continue the verified chain is proof of a fork
          (``proven-faulty``); an unreachable node keeps its stale but
          verified view (its newer activity simply stays unexplored);
        * ``proven-faulty`` — kept: signed proof does not expire;
        * ``unreachable`` — a full build is retried (the node may have
          come back).

        With ``node_id=None`` every cached view is refreshed — the
        per-node work going through the executor as one batch — and
        ``None`` is returned; a single refreshed view is returned
        otherwise.
        """
        if node_id is None:
            self._refresh_batch(sorted(self._views, key=str))
            return None
        view = self._views.get(node_id)
        if view is None:
            built = self.view_of(node_id)
            self.last_refresh_changed = {node_id}
            return built
        self._refresh_batch((node_id,))
        return self._views[node_id]

    @staticmethod
    def _view_signature(view):
        """What a watch can observe of a view: verdict + verified head.

        Raw stats are no proxy — ``delta_fetches`` ticks even when the
        suffix comes back empty — so change detection compares these
        signatures across a refresh instead.
        """
        return (view.status, view.head_index, view.head_hash)

    def _refresh_batch(self, node_ids):
        before = {
            node_id: self._view_signature(self._views[node_id])
            for node_id in node_ids
        }
        batched, jobs = [], []
        for node_id in node_ids:
            view = self._views[node_id]
            self.stats.refreshes += 1
            if view.status == PROVEN_FAULTY:
                continue  # kept: signed proof does not expire
            batched.append(node_id)
            if view.status == OK:
                jobs.append(_BuildJob(self, node_id, base_view=view))
            else:
                jobs.append(_BuildJob(self, node_id))
        self._run_batch(batched, jobs)
        self.last_refresh_changed = {
            node_id for node_id in node_ids
            if node_id not in self._views
            or self._view_signature(self._views[node_id]) != before[node_id]
        }

    def _run_batch(self, node_ids, jobs):
        """Run one batch of build/extend jobs and finalize each outcome.

        Expected fault conditions never escape a job (they become
        verdicts); if something *unexpected* does, the batch aborts —
        and any member not yet finalized may hold a cached view whose
        retained replay was already advanced past its committed head.
        Such views must not survive (a later refresh would replay the
        same suffix twice), so every un-finalized member is invalidated
        before the error propagates.
        """
        if not jobs:
            return
        context = self._build_context()
        # Fresh per batch: the deployment may have run on since the last
        # batch, so factory-spec snapshots must not outlive one batch.
        self._batch_spec_cache = {}
        finalized = set()
        try:
            for outcome in self._run_jobs(jobs, context):
                new_view = self._finalize(outcome)
                old_view = self._views.get(outcome.node)
                self._views[outcome.node] = new_view
                if old_view is not None and new_view is not old_view \
                        and new_view.status != OK:
                    # A superseding non-ok verdict (fork conviction,
                    # retention fault, lost node): the old view's
                    # worker-resident state must not linger.
                    self._evict_resident(old_view)
                finalized.add(outcome.node)
        except BaseException:
            for node_id in node_ids:
                if node_id not in finalized:
                    self.invalidate(node_id)
            raise
        if self.fetch_pending_anchors and self._anchor_wanted:
            for node_id in sorted(self._anchor_wanted, key=str):
                self._fetch_pending_anchor(node_id)
            self._anchor_wanted.clear()
        self.compact_evidence()

    def _run_jobs(self, jobs, context):
        """Schedule a batch onto the executor. Rich executors take the
        jobs themselves (``run_jobs``); plain ones — including any
        pass-through executor a caller supplies — get zero-arg tasks, the
        pre-existing contract."""
        run_jobs = getattr(self.executor, "run_jobs", None)
        if run_jobs is not None:
            return run_jobs(jobs, context)
        return self.executor.run(
            [functools.partial(job.run_local, context) for job in jobs]
        )

    # ---------------------------------------------- fetch-side accounting

    def _simulate_transfer(self, response):
        """Model the download of one retrieved segment when the deployment
        configures a query transport — slept on the fetching worker's
        thread, which is precisely the cost parallel builds overlap."""
        transport = self.deployment.query_transport
        if transport is None:
            return
        nbytes = sum(e.size_bytes() for e in response.entries)
        nbytes += AUTHENTICATOR_BYTES
        if response.checkpoint is not None:
            nbytes += response.checkpoint.size_bytes()
        time.sleep(transport.transfer_seconds(nbytes))

    def _account_response(self, response, stats):
        """Charge one retrieved segment's transfer to *stats* — the
        single place download accounting happens, so full, delta and
        discarded-fallback fetches stay in lockstep."""
        stats.logs_fetched += 1
        stats.log_bytes += sum(e.size_bytes() for e in response.entries)
        stats.authenticator_bytes += AUTHENTICATOR_BYTES

    def _snapshot_size(self, chk_entry):
        try:
            return canonical_size(
                [t.canonical() for t, _at in chk_entry.aux["extant"]]
            )
        except Exception:
            return 0

    # ------------------------------------------- finalize (calling thread)

    def _finalize(self, outcome):
        """Commit one node-local outcome against the querier-shared state.

        Runs on the calling thread, invoked in canonical node order over
        a batch: merges the job's stats, replays the deferred
        evidence-store checks against everything harvested from nodes
        earlier in the order, then harvests this node's evidence — the
        exact sequence a serial build of the batch would follow.
        """
        node_id = outcome.node
        self.stats.merge(outcome.stats)
        if outcome.reset_memo:
            self._checked_auths.pop(node_id, None)
            self._consistency_cursors.pop(node_id, None)
        if outcome.kind == "final":
            return outcome.view
        try:
            self._check_harvested_evidence(outcome)
        except LogVerificationError as exc:
            if outcome.from_mirror:
                if outcome.kind == "built":
                    return NodeView(node_id, UNREACHABLE,
                                    verdict_reason=f"bad mirror: {exc}")
                if outcome.replay_mutated:
                    # The kept view's committed-head replay state was
                    # already advanced — it must not stay extendable (a
                    # later refresh would replay the same suffix twice).
                    # Rebuild trust from scratch instead; this
                    # tail-of-batch case is rare (pre-batch evidence was
                    # checked before replay, in the compute step).
                    job = _BuildJob(self, node_id)
                    return self._finalize(
                        job.run_local(self._build_context())
                    )
                return outcome.base_view  # stale but verified view kept
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(exc))
        if outcome.checked:
            self._checked_auths.setdefault(node_id, {}).update(
                outcome.checked
            )
        if outcome.cursor is not None:
            self._consistency_cursors[node_id] = outcome.cursor
        self._commit_pending_skips(node_id, outcome)

        response = outcome.response
        if outcome.kind == "built":
            self._harvest_evidence(response)
            result = outcome.replay_result
            end_index = response.start_index + len(response.entries) - 1
            head_hash = (outcome.hashes[-1] if outcome.hashes
                         else response.start_hash)
            if response.entries:
                head_time = response.entries[-1].timestamp
            elif response.checkpoint is not None:
                head_time = response.checkpoint.timestamp
            else:
                head_time = float("-inf")
            if response.checkpoint is not None:
                base_index = response.checkpoint.index
                base_time = response.checkpoint.timestamp
            else:
                base_index, base_time = 0, float("-inf")
            return NodeView(node_id, OK, log_len=end_index, replay=result,
                            head_index=end_index, head_hash=head_hash,
                            head_time=head_time,
                            base_index=base_index, base_time=base_time)
        view = outcome.base_view
        if response.entries:
            self._harvest_evidence(response)
            # Rebind rather than rely on in-place mutation: with an
            # in-process compute this is the same object; over a process
            # boundary it is the (lazily-held) extended replay.
            view.install_replay(outcome.replay_result)
            view.head_index = response.start_index + len(response.entries) - 1
            view.head_hash = outcome.hashes[-1]
            view.head_time = response.entries[-1].timestamp
            view.log_len = view.head_index
        return view

    def _commit_pending_skips(self, node_id, outcome):
        """Drain retroactively checked authenticators from the pending
        registry — and tombstoned ones (below the node's GC'd retention
        floor, so no future segment can ever check them) — then admit
        the pass's newly skipped ones."""
        pending = self._pending_skipped.get(node_id)
        if pending:
            for sig in outcome.recovered:
                pending.pop(sig, None)
            for sig in outcome.tombstoned:
                pending.pop(sig, None)
            if not pending:
                del self._pending_skipped[node_id]
        if outcome.skipped:
            known = self._checked_auths.get(node_id, frozenset())
            table = self._pending_skipped.setdefault(node_id, {})
            for auth in outcome.skipped:
                sig = bytes(auth.signature)
                if sig in known or sig in outcome.checked:
                    continue
                table.setdefault(sig, auth)
            if table:
                self._anchor_wanted.add(node_id)

    def _fetch_pending_anchor(self, node_id):
        """On-demand anchoring fetch (batch end): a pending skip means
        evidence fell below the last segment's anchor, so its check is
        owed until some build happens to reach far enough back. Instead
        of waiting, ask the node for its untruncated log right now and
        check the owed authenticators against it.

        The anchoring segment is verified before it is trusted: its head
        authenticator must be validly signed and on the recomputed
        chain, and the chain must pass through the verified head of the
        node's audited view — so a node cannot satisfy the owed checks
        from a fork of the log it is being audited on (that mismatch is
        itself a conviction). A GC'd node legitimately anchors at its
        retained checkpoint; whatever still falls below stays pending
        (or is tombstoned by the normal floor machinery later).
        """
        pending = self._pending_skipped.get(node_id)
        if not pending:
            return
        node = self.deployment.nodes.get(node_id)
        if node is None:
            return  # unreachable: the debt stays pending
        response = node.retrieve(from_checkpoint=False)
        if response is None:
            return
        self.stats.anchor_fetches += 1
        self._simulate_transfer(response)
        self._account_response(response, self.stats)
        view = self._views.get(node_id)
        trusted = None
        if view is not None and view.status == OK and view.head_index > 0:
            trusted = (view.head_index, view.head_hash)
        try:
            hashes = verify_anchor_segment(
                response, self.deployment.public_key_of(node_id),
                trusted_head=trusted, stats=self.stats,
            )
            memo = self._checked_auths.setdefault(node_id, {})
            for sig, auth in sorted(pending.items()):
                if auth.index < response.start_index - 1:
                    continue  # below even this anchor: stays pending
                check_against_authenticator(response, hashes, auth,
                                            self.stats)
                self.stats.auth_checks_recovered += 1
                memo[sig] = auth.index
                del pending[sig]
        except (LogVerificationError, AuthenticationError) as exc:
            # The owed evidence (or the audited head) contradicts the
            # chain the node just served — proof of a fork or rewrite.
            self._evict_resident(self._views.get(node_id))
            self._views[node_id] = NodeView(
                node_id, PROVEN_FAULTY,
                verdict_reason=f"pending authenticator check: {exc}",
            )
            return
        finally:
            if not pending:
                self._pending_skipped.pop(node_id, None)

    def compact_evidence(self):
        """Bound the querier's standing memory (batch end).

        An authenticator already verified to lie on a node's trusted
        chain *below* that view's verified head can never change any
        future verdict: a refresh extends the same chain (the memo
        already suppresses its re-check), and a full rebuild re-fetches
        from scratch and drops the memo anyway. Evict such entries from
        the evidence store, and from the checked-authenticator memo *in
        lockstep with the store drop* — a memo entry whose evidence has
        not surfaced in the store yet is still load-bearing (a peer's log
        harvested later re-presents the same signed authenticator, and
        the memo is what keeps that from re-skipping), so it stays until
        its copies arrive and are pruned with it. The consistency cursors
        guarantee peers never re-present pruned evidence through the
        consistency channel. ``evidence_pruned`` counts both ledgers'
        drops.
        """
        for node_id, view in self._views.items():
            if view.status != OK or view.head_index <= 0:
                continue
            checked = self._checked_auths.get(node_id)
            if not checked:
                continue
            below = {sig for sig, index in checked.items()
                     if index < view.head_index}
            if not below:
                continue
            dropped = self.evidence.prune_checked_below(
                node_id, view.head_index, below
            )
            if not dropped:
                continue
            pruned_sigs = {bytes(auth.signature) for auth in dropped}
            for sig in pruned_sigs:
                checked.pop(sig, None)
            self.stats.evidence_pruned += len(dropped) + len(pruned_sigs)

    def low_water_marks(self):
        """The standing-auditor half of the retention handshake: per
        node, the head index this querier has verified up to. A GC pass
        (``Deployment.run_gc``) never truncates a registered querier's
        node above this mark, so every cached ``ok`` view stays
        delta-refreshable across GC."""
        return {
            node: view.head_index
            for node, view in self._views.items()
            if view.status == OK and view.head_index > 0
        }

    def pending_skipped(self, node_id):
        """The (peer, index) pairs of authenticators whose check is still
        owed for *node_id* — evidence counted in ``auth_checks_skipped``
        that no verified segment has reached yet."""
        table = self._pending_skipped.get(node_id, {})
        return sorted((auth.node, auth.index) for auth in table.values())

    def _check_harvested_evidence(self, outcome):
        """The within-batch tail of the evidence-store checks.

        The compute step already checked the evidence held when the batch
        started (``outcome.evidence_prefix`` entries, before paying for
        replay — the store's per-node lists are append-only and frozen
        while jobs run); what remains is whatever finalizing *earlier*
        nodes of this batch harvested since. Raises LogVerificationError
        on mismatch — *proof* of a fork or rewrite.
        """
        node_id = outcome.node
        known = self._checked_auths.get(node_id, frozenset())
        started = time.perf_counter()
        try:
            held = self.evidence.for_node(node_id)
            for auth in held[outcome.evidence_prefix:]:
                sig = bytes(auth.signature)
                if sig in known or sig in outcome.checked:
                    continue
                check_against_authenticator(outcome.response, outcome.hashes,
                                            auth, self.stats)
                note_checked(outcome.checked, outcome.response, auth)
        finally:
            self.stats.auth_check_seconds += time.perf_counter() - started

    def _harvest_evidence(self, response):
        """Collect the authenticators embedded in a verified log into the
        evidence store — they are what lets the querier verify the *next*
        node it visits."""
        for entry in response.entries:
            if entry.entry_type == RCV:
                auth = entry.aux.get("batch_auth")
                if auth is not None:
                    self.evidence.add(auth)
            elif entry.entry_type == ACK:
                wire_ack = entry.aux.get("wire_ack")
                if wire_ack is not None:
                    self.evidence.add(wire_ack.auth)
        self.evidence.add(response.head_auth)

    # ------------------------------------------------- view reads (ops)

    def _view_op(self, view, op, payload=None):
        """Run one read-only graph op against *view*.

        A view backed by an unmaterialized :class:`ResidentReplay` runs
        the op *in the owning worker* — the coordinator receives cloned
        value vertices and never decodes the graph. Every other view
        (serial/thread builds, materialized handles, failed-replay
        evidence) answers from the in-process graph; both paths return
        clones-or-members with identical keys and colors, so callers
        cannot tell them apart. A lost resident view (dead worker,
        evicted entry) is rebuilt cold — bit-identically — and the op
        retried.
        """
        for _attempt in (0, 1):
            replay = view.replay
            if isinstance(replay, ResidentReplay) \
                    and not replay.materialized:
                try:
                    return replay.query(op, payload, stats=self.stats)
                except ResidentViewLost:
                    # The cold rebuild tallies the miss itself.
                    self._rebuild_lost_view(view)
                    continue
            break
        return self._local_view_op(view, op, payload)

    def _local_view_op(self, view, op, payload):
        graph = view.graph
        if op == "get":
            return graph.get(payload)
        if op == "around":
            vertex = graph.get(payload)
            if vertex is None:
                return None
            return (vertex, graph.predecessors(vertex),
                    graph.successors(vertex))
        if op == "find_all":
            vtype, node, tup = payload
            return graph.find_all(vtype=vtype, node=node, tup=tup)
        raise ValueError(f"unknown view op {op!r}")

    def view_find_all(self, view, vtype=None, node=None, tup=None):
        """Find matching vertices in *view*'s graph (resident-aware: the
        scan runs in the owning worker when the view lives there)."""
        return self._view_op(view, "find_all", (vtype, node, tup))

    def _rebuild_lost_view(self, view):
        """The resident plane lost *view*'s worker-side state: rebuild it
        from scratch (the standard executor path — the fresh build
        repopulates the owning worker) and splice the new state into the
        existing view object, so callers holding it see the rebuild."""
        node_id = view.node
        self.invalidate(node_id)
        rebuilt = self.view_of(node_id)
        if rebuilt is not view:
            for slot in NodeView.__slots__:
                setattr(view, slot, getattr(rebuilt, slot))
            self._views[node_id] = view

    # ---------------------------------------------------------- microquery

    def microquery(self, vertex):
        """Run microquery for *vertex*; returns a MicroResult.

        The first color is always yellow (the vertex's color is unknown
        until host(v) responds); the second is the verdict.
        """
        self.stats.microqueries += 1
        resolved, color = self.resolve(vertex)
        view = self._views.get(resolved.node)
        preds, succs = [], []
        if view is not None and view.status == OK:
            around = self._view_op(view, "around", resolved.key())
            if around is not None:
                _vertex, preds, succs = around
        colors = [Color.YELLOW]
        if color != Color.YELLOW:
            colors.append(color)
        return MicroResult(resolved, colors, preds, succs)

    def resolve(self, vertex):
        """Materialize *vertex* from its host's verified view.

        Returns (vertex, color). The returned vertex is the one from the
        host's replayed graph when available; otherwise the caller's stub,
        recolored according to what the retrieval proved:

        * host unreachable → yellow (can't tell yet);
        * host's log proven bogus → red;
        * host's replay lacks a send/receive the peer holds signed evidence
          for → red (the ``handle-extra-msg`` case: an omitted message).
        """
        view = self.view_of(vertex.node)
        if view.status == UNREACHABLE:
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if view.status == PROVEN_FAULTY:
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        real = self._view_op(view, "get", vertex.key())
        if real is not None:
            return real, real.color
        if vertex.t is not None and vertex.t < view.base_time:
            # The vertex predates this view's verified coverage: the log
            # prefix below the checkpoint anchor (GC'd, or skipped by a
            # checkpoint-mode fetch) was never replayed, so absence
            # proves nothing. Tuples still extant/believed at the
            # checkpoint are seeded into the graph and found above; what
            # is truly gone resolves yellow — honest unresolved, never a
            # silent green and never an unprovable red.
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if vertex.t is not None and vertex.t >= view.head_time:
            # The vertex postdates this view's verified head (the host's
            # view may be stale — e.g. kept through a refresh while the
            # host was unreachable, or simply not refreshed since the
            # system ran on). Its absence proves nothing: red must stay
            # reserved for *proof*, so the vertex remains unresolved
            # until a refresh audits that far. The boundary leans yellow
            # (>=, not >) deliberately: outputs triggered by the head
            # entry are logged strictly *after* it (_next_time), so their
            # absence at t == head_time is not provable — whereas sends
            # the expected machine produces at that instant are emitted
            # by replay of the verified prefix and found in the graph
            # above, never lost to this guard.
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if vertex.vtype in (SEND, RECEIVE):
            # The peer's log contains signed evidence of this message, but
            # the host's replayed subgraph (which verifiably covers the
            # message's instant) does not: the host suppressed it.
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        vertex.set_color(Color.RED)
        return vertex, Color.RED
