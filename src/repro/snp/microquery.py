"""The microquery module (paper Section 5.5).

``microquery(v, ε)`` works by (1) using evidence ε to retrieve a log prefix
from ``host(v)``, (2) replaying it to regenerate that node's partition of
Gν, and (3) checking that v exists in it. The result is a color notification
— yellow while unresolved, then black or red — plus v's predecessors and
successors with the extra evidence needed to continue exploring.

This implementation caches one *view* per node (the verified, replayed
subgraph); repeated microqueries against the same node hit the cache, which
is the caching optimization Section 5.6 describes. The view records how the
node turned out:

* ``ok`` — log verified and replayed; vertex colors come from the GCA;
* ``proven-faulty`` — the node returned a log that contradicts signed
  evidence (broken hash chain, mismatched authenticator, forged embedded
  signature, or an equivocation exposed by the consistency check);
* ``unreachable`` — the node did not respond to retrieve; its vertices stay
  yellow (Section 4.2's fourth limitation).

Views are *extendable*: an ``ok`` view records its verified head (entry
index + chain hash) and retains the replay machinery, so
:meth:`MicroQuerier.refresh` can bring it up to date by fetching, verifying
and replaying only the log suffix appended since — a node whose returned
suffix does not continue the verified chain has provably forked its log
(see DESIGN.md, "Audit path").
"""

import time

from repro.metrics import QueryStats
from repro.snp.evidence import (
    EvidenceStore, verify_authenticator, AUTHENTICATOR_BYTES,
)
from repro.snp.log import RCV, ACK
from repro.snp.replay import (
    check_against_authenticator, extend_replay, replay_segment,
    verify_segment_hashes,
)
from repro.provgraph.vertices import Color, SEND, RECEIVE
from repro.util.errors import AuthenticationError, LogVerificationError
from repro.util.serialization import canonical_size

OK = "ok"
PROVEN_FAULTY = "proven-faulty"
UNREACHABLE = "unreachable"


class NodeView:
    """The querier's verified view of one node.

    For an ``ok`` view, ``head_index``/``head_hash`` identify the last log
    entry whose chain hash the querier verified against a signed
    authenticator — the anchor a later :meth:`MicroQuerier.refresh` extends
    from. The invariant: ``graph`` is exactly the replay of entries
    ``1..head_index`` and ``head_hash`` is the chain hash ``h_head_index``.
    """

    __slots__ = ("node", "status", "graph", "log_len", "verdict_reason",
                 "replay", "head_index", "head_hash", "head_time")

    def __init__(self, node, status, graph=None, log_len=0,
                 verdict_reason=None, replay=None, head_index=0,
                 head_hash=None, head_time=float("-inf")):
        self.node = node
        self.status = status
        self.graph = graph
        self.log_len = log_len
        self.verdict_reason = verdict_reason
        self.replay = replay
        self.head_index = head_index
        self.head_hash = head_hash
        #: Timestamp of the last verified log entry: the horizon up to
        #: which an absence in ``graph`` is *meaningful* (a vertex the
        #: peers hold evidence for at a later t may simply postdate this
        #: view; its absence proves nothing yet).
        self.head_time = head_time


class MicroResult:
    """What one microquery invocation returns (Section 4.3)."""

    __slots__ = ("vertex", "colors", "predecessors", "successors")

    def __init__(self, vertex, colors, predecessors, successors):
        self.vertex = vertex
        self.colors = colors            # e.g. ["yellow", "black"]
        self.predecessors = predecessors
        self.successors = successors

    @property
    def final_color(self):
        return self.colors[-1]


class MicroQuerier:
    def __init__(self, deployment, use_checkpoints=False,
                 verify_embedded_signatures=True,
                 run_consistency_check=True):
        self.deployment = deployment
        self.use_checkpoints = use_checkpoints
        self.verify_embedded_signatures = verify_embedded_signatures
        self.run_consistency_check = run_consistency_check
        self.evidence = EvidenceStore()
        self.stats = QueryStats()
        self._views = {}
        # Authenticators (by signature bytes) already verified to lie on a
        # node's trusted chain. A refresh extends that same chain, so these
        # need neither re-verification nor re-comparison — and, not being
        # coverage losses, they must not inflate ``auth_checks_skipped``.
        # Reset whenever trust in the chain is (re)established from
        # scratch (full rebuild, invalidate).
        self._checked_auths = {}
        # The querier needs its own identity only for verification calls;
        # reuse a lightweight one so crypto ops are counted separately.
        from repro.crypto.keys import NodeIdentity
        self._querier_identity = NodeIdentity(
            "__querier__", deployment.ca, key_bits=deployment.key_bits,
            seed=0x51,
        )

    # ------------------------------------------------------------- views

    def view_of(self, node_id):
        """Retrieve + verify + replay *node_id*'s log (cached)."""
        cached = self._views.get(node_id)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        view = self._build_view(node_id)
        self._views[node_id] = view
        return view

    def invalidate(self, node_id=None):
        """Drop cached views (forces a full rebuild; prefer :meth:`refresh`
        when the cached view is trustworthy and the system merely ran
        further)."""
        if node_id is None:
            self._views.clear()
            self._checked_auths.clear()
        else:
            self._views.pop(node_id, None)
            self._checked_auths.pop(node_id, None)

    def refresh(self, node_id=None):
        """Advance cached views to the deployment's current log heads.

        Fetches, verifies and replays only the log suffix appended since
        each view's verified head — the incremental counterpart of
        :meth:`invalidate` + rebuild. Per cached view:

        * ``ok`` — delta retrieve from the verified head; a suffix that
          does not continue the verified chain is proof of a fork
          (``proven-faulty``); an unreachable node keeps its stale but
          verified view (its newer activity simply stays unexplored);
        * ``proven-faulty`` — kept: signed proof does not expire;
        * ``unreachable`` — a full build is retried (the node may have
          come back).

        With ``node_id=None`` every cached view is refreshed; a single
        refreshed view is returned otherwise.
        """
        if node_id is None:
            for known in sorted(self._views, key=str):
                self.refresh(known)
            return None
        view = self._views.get(node_id)
        if view is None:
            return self.view_of(node_id)
        self.stats.refreshes += 1
        if view.status == PROVEN_FAULTY:
            return view
        if view.status == OK:
            view = self._extend_view(node_id, view)
        else:
            view = self._build_view(node_id)
        self._views[node_id] = view
        return view

    def _extend_view(self, node_id, view):
        """Extend an ``ok`` view by its host's log suffix (or a mirror's)."""
        node = self.deployment.nodes.get(node_id)
        response = None
        if node is not None:
            response = node.retrieve(since_index=view.head_index)
        from_mirror = False
        if response is None:
            response = self.deployment.find_mirror(
                node_id, since_index=view.head_index
            )
            from_mirror = response is not None
            if from_mirror:
                response.from_mirror = True
        if response is None:
            return view  # unreachable: the stale view stays verified
        if response.start_index != view.head_index + 1:
            # The responder did not (or could not) anchor at our head —
            # e.g. a log shorter than the verified head, or a replica that
            # only holds an older segment. Fall back to a full build: the
            # harvested evidence (which includes the old signed head)
            # still exposes any fork during full verification. The
            # response in hand is reused so the node is not asked to ship
            # its log twice — unless a checkpoint-anchored refetch is
            # preferred, in which case the discarded transfer still
            # happened and must be accounted.
            if self.use_checkpoints and not from_mirror:
                self._account_response(response)
                return self._build_view(node_id)
            return self._build_view(node_id, response=response,
                                    from_mirror=from_mirror)
        self.stats.delta_fetches += 1
        self._account_response(response)

        started = time.perf_counter()
        try:
            if response.start_hash != view.head_hash:
                raise LogVerificationError(
                    node_id,
                    f"suffix after entry {view.head_index} does not "
                    "continue the verified chain (fork after cached head)",
                )
            hashes = self._verify_response(node_id, response)
        except (LogVerificationError, AuthenticationError) as exc:
            self.stats.auth_check_seconds += time.perf_counter() - started
            if from_mirror:
                # A corrupt replica cannot frame the origin; the origin is
                # merely unreachable right now, so the view stays stale.
                return view
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(exc))
        self.stats.auth_check_seconds += time.perf_counter() - started

        if not response.entries:
            # Nothing appended; the fresh head authenticator was checked
            # against the cached head hash above, confirming no fork.
            return view
        alarms = self.deployment.maintainer.alarmed_msg_ids()
        processed, elapsed, failure = extend_replay(
            node_id, view.replay, response, known_alarm_msg_ids=alarms
        )
        self.stats.replay_seconds += elapsed
        self.stats.events_replayed += processed
        if failure is not None:
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(failure), replay=view.replay)
        self._harvest_evidence(response)
        view.head_index = response.start_index + len(response.entries) - 1
        view.head_hash = hashes[-1]
        view.head_time = response.entries[-1].timestamp
        view.log_len = view.head_index
        return view

    def _build_view(self, node_id, response=None, from_mirror=False):
        """Build a view from scratch. *response* short-circuits retrieval
        when the caller already holds a full response (the refresh
        fallback path) — trust in the chain is established from zero
        either way, so previously memoized evidence checks are dropped."""
        self._checked_auths.pop(node_id, None)
        node = self.deployment.nodes.get(node_id)
        if response is None:
            if node is not None:
                response = node.retrieve(from_checkpoint=self.use_checkpoints)
            if response is None:
                # Section 5.8 extension: fall back to a replicated copy of
                # the log. The mirror is verified exactly like a direct
                # response (hash chain + origin's signed head), so a lying
                # replica cannot frame the origin.
                response = self.deployment.find_mirror(node_id)
                from_mirror = response is not None
                if from_mirror:
                    response.from_mirror = True
        if response is None:
            return NodeView(node_id, UNREACHABLE,
                            verdict_reason="no response to retrieve")
        self._account_response(response)
        if response.checkpoint is not None:
            self.stats.checkpoint_bytes += response.checkpoint.size_bytes()
            self.stats.checkpoint_bytes += self._snapshot_size(
                response.checkpoint
            )

        started = time.perf_counter()
        try:
            hashes = self._verify_response(node_id, response)
        except (LogVerificationError, AuthenticationError) as exc:
            self.stats.auth_check_seconds += time.perf_counter() - started
            if from_mirror:
                # A corrupt *mirror* is not evidence against the origin —
                # the replica may be the liar. The origin merely remains
                # unreachable (its vertices stay yellow).
                return NodeView(node_id, UNREACHABLE,
                                verdict_reason=f"bad mirror: {exc}")
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(exc))
        self.stats.auth_check_seconds += time.perf_counter() - started

        alarms = self.deployment.maintainer.alarmed_msg_ids()
        result = replay_segment(
            node_id, response, self.deployment.app_factories[node_id],
            t_prop=self.deployment.effective_t_prop(),
            known_alarm_msg_ids=alarms,
        )
        self.stats.replay_seconds += result.replay_seconds
        self.stats.events_replayed += result.events_replayed
        if not result.ok:
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(result.failure),
                            replay=result)
        self._harvest_evidence(response)
        end_index = response.start_index + len(response.entries) - 1
        head_hash = hashes[-1] if hashes else response.start_hash
        if response.entries:
            head_time = response.entries[-1].timestamp
        elif response.checkpoint is not None:
            head_time = response.checkpoint.timestamp
        else:
            head_time = float("-inf")
        return NodeView(node_id, OK, graph=result.graph, log_len=end_index,
                        replay=result, head_index=end_index,
                        head_hash=head_hash, head_time=head_time)

    def _account_response(self, response):
        """Charge one retrieved segment's transfer to the stats — the
        single place download accounting happens, so full, delta and
        discarded-fallback fetches stay in lockstep."""
        self.stats.logs_fetched += 1
        self.stats.log_bytes += sum(e.size_bytes() for e in response.entries)
        self.stats.authenticator_bytes += AUTHENTICATOR_BYTES

    def _snapshot_size(self, chk_entry):
        try:
            return canonical_size(
                [t.canonical() for t, _at in chk_entry.aux["extant"]]
            )
        except Exception:
            return 0

    # -------------------------------------------------------- verification

    def _verify_auth(self, public_key, auth):
        """Signature check with accounting (Figure 8's verification cost)."""
        self.stats.signatures_verified += 1
        verify_authenticator(self._querier_identity, public_key, auth)

    def _verify_response(self, node_id, response):
        """All the checks that can *prove* the node faulty.

        1. The fresh head authenticator must be validly signed and match
           the recomputed hash chain.
        2. Every evidence authenticator we hold for this node must lie on
           the returned chain.
        3. Embedded authenticators in rcv/ack entries must carry valid
           signatures from their claimed signers (a node cannot launder a
           forged message into its log).
        4. Consistency check (Section 5.5): authenticators other nodes hold
           about this node must lie on the same chain — two signed heads
           off-chain expose equivocation.

        Returns the recomputed chain hashes, aligned with the entries —
        the last one is the verified head a later refresh extends from.
        Works for full, checkpoint-anchored and delta responses alike;
        evidence that was *never* checkable against any verified segment
        is counted as skipped in the stats (per verification pass), while
        evidence already verified on this same chain is memoized and not
        re-verified, re-compared or re-counted on refresh.
        """
        public_key = self.deployment.public_key_of(node_id)
        self._verify_auth(public_key, response.head_auth)
        hashes = verify_segment_hashes(response)
        check_against_authenticator(response, hashes, response.head_auth,
                                    self.stats)
        for auth in self.evidence.for_node(node_id):
            if self._already_checked(node_id, auth):
                continue
            check_against_authenticator(response, hashes, auth, self.stats)
            self._note_checked(node_id, response, auth)
        if response.checkpoint is not None:
            self._verify_checkpoint(node_id, response.checkpoint)
        if self.verify_embedded_signatures:
            self._verify_embedded(node_id, response)
        if self.run_consistency_check:
            self._consistency_check(node_id, response, hashes)
        return hashes

    def _already_checked(self, node_id, auth):
        return bytes(auth.signature) in self._checked_auths.get(node_id, ())

    def _note_checked(self, node_id, response, auth):
        """Memoize an authenticator that was actually compared against the
        verified chain (not one merely skipped as pre-anchor): a later
        refresh extends the same chain, so the comparison stays valid."""
        first = response.start_index
        last = first + len(response.entries) - 1
        if first - 1 <= auth.index <= last:
            self._checked_auths.setdefault(node_id, set()).add(
                bytes(auth.signature)
            )

    def _verify_checkpoint(self, node_id, chk_entry):
        """Verify the checkpoint's tuple lists against the Merkle roots
        committed in the log entry (Section 7.7: the Quagga-Disappear
        query spends most of its time 'verifying partial checkpoints using
        a Merkle Hash Tree'). A mismatch means the node's replay seed does
        not match what it committed to — proof of tampering."""
        from repro.crypto.merkle import MerkleTree
        _tag, local_root, belief_root, n_local, n_believed = \
            chk_entry.content
        extant = chk_entry.aux.get("extant", [])
        believed = chk_entry.aux.get("believed", [])
        if len(extant) != n_local or len(believed) != n_believed:
            raise LogVerificationError(
                node_id, "checkpoint tuple counts do not match commitment"
            )
        local_tree = MerkleTree(
            [(tup.canonical(), appeared) for tup, appeared in extant]
        )
        belief_tree = MerkleTree(
            [(tup.canonical(), peer, appeared)
             for tup, peer, appeared in believed]
        )
        if local_tree.root() != local_root \
                or belief_tree.root() != belief_root:
            raise LogVerificationError(
                node_id, "checkpoint contents fail Merkle verification"
            )

    def _verify_embedded(self, node_id, response):
        for entry in response.entries:
            if entry.entry_type == RCV:
                auth = entry.aux.get("batch_auth")
                if auth is None:
                    raise LogVerificationError(
                        node_id, f"rcv entry {entry.index} lacks evidence"
                    )
                sender_key = self.deployment.public_key_of(auth.node)
                self._verify_auth(sender_key, auth)
            elif entry.entry_type == ACK:
                wire_ack = entry.aux.get("wire_ack")
                if wire_ack is None:
                    raise LogVerificationError(
                        node_id, f"ack entry {entry.index} lacks evidence"
                    )
                acker_key = self.deployment.public_key_of(wire_ack.src)
                self._verify_auth(acker_key, wire_ack.auth)

    def _consistency_check(self, node_id, response, hashes):
        """Ask all other nodes for authenticators signed by *node_id* and
        check each against the retrieved chain (Section 5.5)."""
        public_key = self.deployment.public_key_of(node_id)
        for auth in self.deployment.collect_authenticators_about(node_id):
            if self._already_checked(node_id, auth):
                continue  # verified on this same chain in an earlier pass
            try:
                self._verify_auth(public_key, auth)
            except AuthenticationError:
                continue  # not actually signed by node_id; ignore
            check_against_authenticator(response, hashes, auth, self.stats)
            self._note_checked(node_id, response, auth)

    def _harvest_evidence(self, response):
        """Collect the authenticators embedded in a verified log into the
        evidence store — they are what lets the querier verify the *next*
        node it visits."""
        for entry in response.entries:
            if entry.entry_type == RCV:
                auth = entry.aux.get("batch_auth")
                if auth is not None:
                    self.evidence.add(auth)
            elif entry.entry_type == ACK:
                wire_ack = entry.aux.get("wire_ack")
                if wire_ack is not None:
                    self.evidence.add(wire_ack.auth)
        self.evidence.add(response.head_auth)

    # ---------------------------------------------------------- microquery

    def microquery(self, vertex):
        """Run microquery for *vertex*; returns a MicroResult.

        The first color is always yellow (the vertex's color is unknown
        until host(v) responds); the second is the verdict.
        """
        self.stats.microqueries += 1
        resolved, color = self.resolve(vertex)
        view = self._views.get(resolved.node)
        preds, succs = [], []
        if view is not None and view.status == OK and resolved.key() in view.graph:
            preds = view.graph.predecessors(resolved)
            succs = view.graph.successors(resolved)
        colors = [Color.YELLOW]
        if color != Color.YELLOW:
            colors.append(color)
        return MicroResult(resolved, colors, preds, succs)

    def resolve(self, vertex):
        """Materialize *vertex* from its host's verified view.

        Returns (vertex, color). The returned vertex is the one from the
        host's replayed graph when available; otherwise the caller's stub,
        recolored according to what the retrieval proved:

        * host unreachable → yellow (can't tell yet);
        * host's log proven bogus → red;
        * host's replay lacks a send/receive the peer holds signed evidence
          for → red (the ``handle-extra-msg`` case: an omitted message).
        """
        view = self.view_of(vertex.node)
        if view.status == UNREACHABLE:
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if view.status == PROVEN_FAULTY:
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        real = view.graph.get(vertex.key())
        if real is not None:
            return real, real.color
        if vertex.t is not None and vertex.t >= view.head_time:
            # The vertex postdates this view's verified head (the host's
            # view may be stale — e.g. kept through a refresh while the
            # host was unreachable, or simply not refreshed since the
            # system ran on). Its absence proves nothing: red must stay
            # reserved for *proof*, so the vertex remains unresolved
            # until a refresh audits that far. The boundary leans yellow
            # (>=, not >) deliberately: outputs triggered by the head
            # entry are logged strictly *after* it (_next_time), so their
            # absence at t == head_time is not provable — whereas sends
            # the expected machine produces at that instant are emitted
            # by replay of the verified prefix and found in the graph
            # above, never lost to this guard.
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if vertex.vtype in (SEND, RECEIVE):
            # The peer's log contains signed evidence of this message, but
            # the host's replayed subgraph (which verifiably covers the
            # message's instant) does not: the host suppressed it.
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        vertex.set_color(Color.RED)
        return vertex, Color.RED
