"""The microquery module (paper Section 5.5).

``microquery(v, ε)`` works by (1) using evidence ε to retrieve a log prefix
from ``host(v)``, (2) replaying it to regenerate that node's partition of
Gν, and (3) checking that v exists in it. The result is a color notification
— yellow while unresolved, then black or red — plus v's predecessors and
successors with the extra evidence needed to continue exploring.

This implementation caches one *view* per node (the verified, replayed
subgraph); repeated microqueries against the same node hit the cache, which
is the caching optimization Section 5.6 describes. The view records how the
node turned out:

* ``ok`` — log verified and replayed; vertex colors come from the GCA;
* ``proven-faulty`` — the node returned a log that contradicts signed
  evidence (broken hash chain, mismatched authenticator, forged embedded
  signature, or an equivocation exposed by the consistency check);
* ``unreachable`` — the node did not respond to retrieve; its vertices stay
  yellow (Section 4.2's fourth limitation).

Views are *extendable*: an ``ok`` view records its verified head (entry
index + chain hash) and retains the replay machinery, so
:meth:`MicroQuerier.refresh` can bring it up to date by fetching, verifying
and replaying only the log suffix appended since — a node whose returned
suffix does not continue the verified chain has provably forked its log
(see DESIGN.md, "Audit path").

Builds are *batched*: the per-node retrieve→verify→replay pipeline touches
no querier-shared state, so :meth:`MicroQuerier.build_views` (and a batch
:meth:`refresh`) schedule it per node onto a configurable executor
(:mod:`repro.snp.executor`). Each node-local task runs against its own
:class:`~repro.metrics.QueryStats`; the querier-shared state — the evidence
store, the per-node checked-authenticator memos, the consistency cursors,
the view cache and the merged stats — is only touched afterwards, on the
calling thread, in canonical (sorted) node order. Parallel and serial
executors therefore produce bit-identical views, colors and counters (see
DESIGN.md, "Parallel view builds").
"""

import threading
import time

from repro.metrics import QueryStats
from repro.snp.evidence import (
    EvidenceStore, verify_authenticator, AUTHENTICATOR_BYTES,
)
from repro.snp.executor import make_executor
from repro.snp.log import RCV, ACK
from repro.snp.replay import (
    check_against_authenticator, extend_replay, replay_segment,
    verify_segment_hashes,
)
from repro.provgraph.vertices import Color, SEND, RECEIVE
from repro.util.errors import AuthenticationError, LogVerificationError
from repro.util.serialization import canonical_size

OK = "ok"
PROVEN_FAULTY = "proven-faulty"
UNREACHABLE = "unreachable"


class NodeView:
    """The querier's verified view of one node.

    For an ``ok`` view, ``head_index``/``head_hash`` identify the last log
    entry whose chain hash the querier verified against a signed
    authenticator — the anchor a later :meth:`MicroQuerier.refresh` extends
    from. The invariant: ``graph`` is exactly the replay of entries
    ``1..head_index`` and ``head_hash`` is the chain hash ``h_head_index``.
    """

    __slots__ = ("node", "status", "graph", "log_len", "verdict_reason",
                 "replay", "head_index", "head_hash", "head_time")

    def __init__(self, node, status, graph=None, log_len=0,
                 verdict_reason=None, replay=None, head_index=0,
                 head_hash=None, head_time=float("-inf")):
        self.node = node
        self.status = status
        self.graph = graph
        self.log_len = log_len
        self.verdict_reason = verdict_reason
        self.replay = replay
        self.head_index = head_index
        self.head_hash = head_hash
        #: Timestamp of the last verified log entry: the horizon up to
        #: which an absence in ``graph`` is *meaningful* (a vertex the
        #: peers hold evidence for at a later t may simply postdate this
        #: view; its absence proves nothing yet).
        self.head_time = head_time


class MicroResult:
    """What one microquery invocation returns (Section 4.3)."""

    __slots__ = ("vertex", "colors", "predecessors", "successors")

    def __init__(self, vertex, colors, predecessors, successors):
        self.vertex = vertex
        self.colors = colors            # e.g. ["yellow", "black"]
        self.predecessors = predecessors
        self.successors = successors

    @property
    def final_color(self):
        return self.colors[-1]


class _BuildOutcome:
    """What one node-local build/extend task hands back for finalizing.

    Owned by exactly one worker during the node-local phase; after the
    executor returns it, ownership passes to the calling thread. ``kind``:

    * ``final`` — ``view`` is already decided (unreachable, proven
      faulty, or a kept stale view); nothing left but to commit it;
    * ``built`` — a full build verified and replayed node-locally; the
      ``ok`` view is created during finalize, after the deferred
      evidence-store checks;
    * ``extended`` — an ``ok`` view (``base_view``) was advanced by a
      verified delta; finalize runs the evidence checks, then commits the
      new head and harvests.
    """

    __slots__ = ("node", "kind", "view", "base_view", "response", "hashes",
                 "stats", "checked", "cursor", "from_mirror",
                 "replay_result", "reset_memo", "evidence_prefix",
                 "replay_mutated")

    def __init__(self, node, kind, stats):
        self.node = node
        self.kind = kind
        self.stats = stats
        self.view = None
        self.base_view = None
        self.response = None
        self.hashes = None
        self.checked = set()
        self.cursor = None
        self.from_mirror = False
        self.replay_result = None
        self.reset_memo = False
        #: How many of this node's evidence-store entries the node-local
        #: phase already checked (the store is frozen while workers run);
        #: finalize checks only the tail harvested later in the batch.
        self.evidence_prefix = 0
        #: Whether a cached view's retained replay was advanced — a view
        #: kept on a failure path must then not stay extendable.
        self.replay_mutated = False

    def finalized(self, view):
        self.kind = "final"
        self.view = view
        return self


class _WorkerVerifier:
    """A keypair-less stand-in for the querier identity on worker threads.

    ``verify_authenticator`` only needs ``verify(public_key, payload,
    signature)`` plus the per-verifier op counter; generating an RSA
    keypair and CA certificate per thread would be pure startup waste.
    """

    __slots__ = ("counter",)

    def __init__(self):
        from repro.crypto.keys import CryptoCounter
        self.counter = CryptoCounter()

    def verify(self, public_key, payload, signature):
        from repro.util.serialization import canonical_bytes
        self.counter.note_verify()
        return public_key.verify(canonical_bytes(payload), signature)


class MicroQuerier:
    def __init__(self, deployment, use_checkpoints=False,
                 verify_embedded_signatures=True,
                 run_consistency_check=True, executor=None):
        self.deployment = deployment
        self.use_checkpoints = use_checkpoints
        self.verify_embedded_signatures = verify_embedded_signatures
        self.run_consistency_check = run_consistency_check
        self.executor = make_executor(executor)
        self.evidence = EvidenceStore()
        self.stats = QueryStats()
        self._views = {}
        # Authenticators (by signature bytes) already verified to lie on a
        # node's trusted chain. A refresh extends that same chain, so these
        # need neither re-verification nor re-comparison — and, not being
        # coverage losses, they must not inflate ``auth_checks_skipped``.
        # Reset whenever trust in the chain is (re)established from
        # scratch (full rebuild, invalidate).
        self._checked_auths = {}
        # Per-node consistency-check cursors: how much of each peer's
        # received_auths was already scanned for evidence about the node
        # (see Deployment.collect_authenticators_about_since). Reset in
        # lockstep with the memo above.
        self._consistency_cursors = {}
        # The querier needs its own identity only for verification calls;
        # reuse a lightweight one so crypto ops are counted separately.
        # Worker threads lazily get identities of their own — signature
        # verification itself is pure, but the identity tallies a counter.
        from repro.crypto.keys import NodeIdentity
        self._querier_identity = NodeIdentity(
            "__querier__", deployment.ca, key_bits=deployment.key_bits,
            seed=0x51,
        )
        self._verifier_local = threading.local()
        self._verifier_local.identity = self._querier_identity

    def close(self):
        """Release the executor's worker threads (serial: a no-op).
        Pass-through executors only need ``run``; ``close`` is optional."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------- views

    def view_of(self, node_id):
        """Retrieve + verify + replay *node_id*'s log (cached)."""
        cached = self._views.get(node_id)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        return self.build_views((node_id,))[node_id]

    def build_views(self, node_ids):
        """Ensure views exist for *node_ids*; returns ``{node_id: view}``.

        Missing views are built through the executor: the node-local
        pipeline runs per node (possibly concurrently), then results are
        finalized on this thread in canonical node order — so the evidence
        a node's chain is checked against is exactly what a serial build
        of the same batch, in the same canonical order, would have
        accumulated before reaching it.
        """
        wanted, seen = [], set()
        for node_id in node_ids:
            if node_id not in seen:
                seen.add(node_id)
                wanted.append(node_id)
        missing = sorted((n for n in wanted if n not in self._views),
                         key=str)
        if missing:
            self._run_batch(
                missing,
                [self._full_build_task(node_id) for node_id in missing],
            )
        return {node_id: self._views[node_id] for node_id in wanted}

    def invalidate(self, node_id=None):
        """Drop cached views (forces a full rebuild; prefer :meth:`refresh`
        when the cached view is trustworthy and the system merely ran
        further)."""
        if node_id is None:
            self._views.clear()
            self._checked_auths.clear()
            self._consistency_cursors.clear()
        else:
            self._views.pop(node_id, None)
            self._checked_auths.pop(node_id, None)
            self._consistency_cursors.pop(node_id, None)

    def refresh(self, node_id=None):
        """Advance cached views to the deployment's current log heads.

        Fetches, verifies and replays only the log suffix appended since
        each view's verified head — the incremental counterpart of
        :meth:`invalidate` + rebuild. Per cached view:

        * ``ok`` — delta retrieve from the verified head; a suffix that
          does not continue the verified chain is proof of a fork
          (``proven-faulty``); an unreachable node keeps its stale but
          verified view (its newer activity simply stays unexplored);
        * ``proven-faulty`` — kept: signed proof does not expire;
        * ``unreachable`` — a full build is retried (the node may have
          come back).

        With ``node_id=None`` every cached view is refreshed — the
        per-node work going through the executor as one batch — and
        ``None`` is returned; a single refreshed view is returned
        otherwise.
        """
        if node_id is None:
            self._refresh_batch(sorted(self._views, key=str))
            return None
        view = self._views.get(node_id)
        if view is None:
            return self.view_of(node_id)
        self._refresh_batch((node_id,))
        return self._views[node_id]

    def _refresh_batch(self, node_ids):
        batched, tasks = [], []
        for node_id in node_ids:
            view = self._views[node_id]
            self.stats.refreshes += 1
            if view.status == PROVEN_FAULTY:
                continue  # kept: signed proof does not expire
            batched.append(node_id)
            if view.status == OK:
                tasks.append(self._extend_task(node_id, view))
            else:
                tasks.append(self._full_build_task(node_id))
        self._run_batch(batched, tasks)

    def _run_batch(self, node_ids, tasks):
        """Run one batch of build/extend tasks and finalize each outcome.

        Expected fault conditions never escape a task (they become
        verdicts); if something *unexpected* does, the batch aborts —
        and any member not yet finalized may hold a cached view whose
        retained replay a worker already advanced past its committed
        head. Such views must not survive (a later refresh would replay
        the same suffix twice), so every un-finalized member is
        invalidated before the error propagates.
        """
        finalized = set()
        try:
            for outcome in self.executor.run(tasks):
                self._views[outcome.node] = self._finalize(outcome)
                finalized.add(outcome.node)
        except BaseException:
            for node_id in node_ids:
                if node_id not in finalized:
                    self.invalidate(node_id)
            raise

    def _full_build_task(self, node_id):
        def task():
            return self._build_phase_a(node_id, QueryStats())
        return task

    def _extend_task(self, node_id, view):
        def task():
            return self._extend_phase_a(node_id, view, QueryStats())
        return task

    # ------------------------------------------- node-local phase (workers)

    def _extend_phase_a(self, node_id, view, stats):
        """Extend an ``ok`` view by its host's log suffix (or a mirror's).

        Node-local only: reads the deployment and this node's own memo
        snapshot, writes nothing shared. May mutate *view*'s retained
        replay (this task owns the view until finalize commits or
        discards it).
        """
        node = self.deployment.nodes.get(node_id)
        response = None
        if node is not None:
            response = node.retrieve(since_index=view.head_index)
        from_mirror = False
        if response is None:
            response = self.deployment.find_mirror(
                node_id, since_index=view.head_index
            )
            from_mirror = response is not None
            if from_mirror:
                response.from_mirror = True
        outcome = _BuildOutcome(node_id, "extended", stats)
        if response is None:
            # unreachable: the stale view stays verified
            return outcome.finalized(view)
        self._simulate_transfer(response)
        if response.start_index != view.head_index + 1:
            # The responder did not (or could not) anchor at our head —
            # e.g. a log shorter than the verified head, or a replica that
            # only holds an older segment. Fall back to a full build: the
            # harvested evidence (which includes the old signed head)
            # still exposes any fork during full verification. The
            # response in hand is reused so the node is not asked to ship
            # its log twice — unless a checkpoint-anchored refetch is
            # preferred, in which case the discarded transfer still
            # happened and must be accounted.
            if self.use_checkpoints and not from_mirror:
                self._account_response(response, stats)
                return self._build_phase_a(node_id, stats)
            return self._build_phase_a(node_id, stats, response=response,
                                       from_mirror=from_mirror)
        outcome.base_view = view
        outcome.from_mirror = from_mirror
        stats.delta_fetches += 1
        self._account_response(response, stats)

        started = time.perf_counter()
        try:
            if response.start_hash != view.head_hash:
                raise LogVerificationError(
                    node_id,
                    f"suffix after entry {view.head_index} does not "
                    "continue the verified chain (fork after cached head)",
                )
            hashes, cursor = self._verify_response_local(
                node_id, response, outcome,
                known=self._checked_auths.get(node_id, frozenset()),
                base_cursor=self._consistency_cursors.get(node_id),
            )
        except (LogVerificationError, AuthenticationError) as exc:
            stats.auth_check_seconds += time.perf_counter() - started
            if from_mirror:
                # A corrupt replica cannot frame the origin; the origin is
                # merely unreachable right now, so the view stays stale.
                return outcome.finalized(view)
            return outcome.finalized(
                NodeView(node_id, PROVEN_FAULTY, verdict_reason=str(exc))
            )
        stats.auth_check_seconds += time.perf_counter() - started
        outcome.response = response
        outcome.hashes = hashes
        outcome.cursor = cursor

        if not response.entries:
            # Nothing appended; the fresh head authenticator was checked
            # against the cached head hash above, confirming no fork. The
            # deferred evidence checks still run at finalize.
            return outcome
        alarms = self.deployment.maintainer.alarmed_msg_ids()
        outcome.replay_mutated = True
        _processed, _elapsed, failure = extend_replay(
            node_id, view.replay, response, known_alarm_msg_ids=alarms,
            stats=stats,
        )
        if failure is not None:
            return outcome.finalized(
                NodeView(node_id, PROVEN_FAULTY,
                         verdict_reason=str(failure), replay=view.replay)
            )
        return outcome

    def _build_phase_a(self, node_id, stats, response=None,
                       from_mirror=False):
        """Build a view from scratch, node-locally. *response*
        short-circuits retrieval when the caller already holds a full
        response (the refresh fallback path) — trust in the chain is
        established from zero either way, so the memoized evidence checks
        and the consistency cursor are dropped at finalize."""
        outcome = _BuildOutcome(node_id, "built", stats)
        outcome.reset_memo = True
        node = self.deployment.nodes.get(node_id)
        if response is None:
            if node is not None:
                response = node.retrieve(from_checkpoint=self.use_checkpoints)
            if response is None:
                # Section 5.8 extension: fall back to a replicated copy of
                # the log. The mirror is verified exactly like a direct
                # response (hash chain + origin's signed head), so a lying
                # replica cannot frame the origin.
                response = self.deployment.find_mirror(node_id)
                from_mirror = response is not None
                if from_mirror:
                    response.from_mirror = True
            if response is not None:
                self._simulate_transfer(response)
        if response is None:
            return outcome.finalized(
                NodeView(node_id, UNREACHABLE,
                         verdict_reason="no response to retrieve")
            )
        outcome.from_mirror = from_mirror
        self._account_response(response, stats)
        if response.checkpoint is not None:
            stats.checkpoint_bytes += response.checkpoint.size_bytes()
            stats.checkpoint_bytes += self._snapshot_size(
                response.checkpoint
            )

        started = time.perf_counter()
        try:
            hashes, cursor = self._verify_response_local(
                node_id, response, outcome,
                known=frozenset(), base_cursor=None,
            )
        except (LogVerificationError, AuthenticationError) as exc:
            stats.auth_check_seconds += time.perf_counter() - started
            if from_mirror:
                # A corrupt *mirror* is not evidence against the origin —
                # the replica may be the liar. The origin merely remains
                # unreachable (its vertices stay yellow).
                return outcome.finalized(
                    NodeView(node_id, UNREACHABLE,
                             verdict_reason=f"bad mirror: {exc}")
                )
            return outcome.finalized(
                NodeView(node_id, PROVEN_FAULTY, verdict_reason=str(exc))
            )
        stats.auth_check_seconds += time.perf_counter() - started

        alarms = self.deployment.maintainer.alarmed_msg_ids()
        result = replay_segment(
            node_id, response, self.deployment.app_factories[node_id],
            t_prop=self.deployment.effective_t_prop(),
            known_alarm_msg_ids=alarms, stats=stats,
        )
        if not result.ok:
            return outcome.finalized(
                NodeView(node_id, PROVEN_FAULTY,
                         verdict_reason=str(result.failure), replay=result)
            )
        outcome.response = response
        outcome.hashes = hashes
        outcome.cursor = cursor
        outcome.replay_result = result
        return outcome

    def _simulate_transfer(self, response):
        """Model the download of one retrieved segment when the deployment
        configures a query transport — slept on the fetching worker's
        thread, which is precisely the cost parallel builds overlap."""
        transport = self.deployment.query_transport
        if transport is None:
            return
        nbytes = sum(e.size_bytes() for e in response.entries)
        nbytes += AUTHENTICATOR_BYTES
        if response.checkpoint is not None:
            nbytes += response.checkpoint.size_bytes()
        time.sleep(transport.transfer_seconds(nbytes))

    def _account_response(self, response, stats):
        """Charge one retrieved segment's transfer to *stats* — the
        single place download accounting happens, so full, delta and
        discarded-fallback fetches stay in lockstep."""
        stats.logs_fetched += 1
        stats.log_bytes += sum(e.size_bytes() for e in response.entries)
        stats.authenticator_bytes += AUTHENTICATOR_BYTES

    def _snapshot_size(self, chk_entry):
        try:
            return canonical_size(
                [t.canonical() for t, _at in chk_entry.aux["extant"]]
            )
        except Exception:
            return 0

    # ------------------------------------------- finalize (calling thread)

    def _finalize(self, outcome):
        """Commit one node-local outcome against the querier-shared state.

        Runs on the calling thread, invoked in canonical node order over
        a batch: merges the worker's stats, replays the deferred
        evidence-store checks against everything harvested from nodes
        earlier in the order, then harvests this node's evidence — the
        exact sequence a serial build of the batch would follow.
        """
        node_id = outcome.node
        self.stats.merge(outcome.stats)
        if outcome.reset_memo:
            self._checked_auths.pop(node_id, None)
            self._consistency_cursors.pop(node_id, None)
        if outcome.kind == "final":
            return outcome.view
        try:
            self._check_harvested_evidence(outcome)
        except LogVerificationError as exc:
            if outcome.from_mirror:
                if outcome.kind == "built":
                    return NodeView(node_id, UNREACHABLE,
                                    verdict_reason=f"bad mirror: {exc}")
                if outcome.replay_mutated:
                    # The kept view's retained replay was already advanced
                    # past its committed head — it must not stay
                    # extendable (a later refresh would replay the same
                    # suffix twice). Rebuild trust from scratch instead;
                    # this tail-of-batch case is rare (pre-batch evidence
                    # was checked before replay, node-locally).
                    return self._finalize(
                        self._build_phase_a(node_id, QueryStats())
                    )
                return outcome.base_view  # stale but verified view kept
            return NodeView(node_id, PROVEN_FAULTY,
                            verdict_reason=str(exc))
        if outcome.checked:
            self._checked_auths.setdefault(node_id, set()).update(
                outcome.checked
            )
        if outcome.cursor is not None:
            self._consistency_cursors[node_id] = outcome.cursor

        response = outcome.response
        if outcome.kind == "built":
            self._harvest_evidence(response)
            result = outcome.replay_result
            end_index = response.start_index + len(response.entries) - 1
            head_hash = (outcome.hashes[-1] if outcome.hashes
                         else response.start_hash)
            if response.entries:
                head_time = response.entries[-1].timestamp
            elif response.checkpoint is not None:
                head_time = response.checkpoint.timestamp
            else:
                head_time = float("-inf")
            return NodeView(node_id, OK, graph=result.graph,
                            log_len=end_index, replay=result,
                            head_index=end_index, head_hash=head_hash,
                            head_time=head_time)
        view = outcome.base_view
        if response.entries:
            self._harvest_evidence(response)
            view.head_index = response.start_index + len(response.entries) - 1
            view.head_hash = outcome.hashes[-1]
            view.head_time = response.entries[-1].timestamp
            view.log_len = view.head_index
        return view

    def _check_harvested_evidence(self, outcome):
        """The within-batch tail of the evidence-store checks.

        The node-local phase already checked the evidence held when the
        batch started (``outcome.evidence_prefix`` entries, before paying
        for replay — the store's per-node lists are append-only and
        frozen while workers run); what remains is whatever finalizing
        *earlier* nodes of this batch harvested since. Raises
        LogVerificationError on mismatch — *proof* of a fork or rewrite.
        """
        node_id = outcome.node
        known = self._checked_auths.get(node_id, frozenset())
        started = time.perf_counter()
        try:
            held = self.evidence.for_node(node_id)
            for auth in held[outcome.evidence_prefix:]:
                sig = bytes(auth.signature)
                if sig in known or sig in outcome.checked:
                    continue
                check_against_authenticator(outcome.response, outcome.hashes,
                                            auth, self.stats)
                self._note_checked(outcome.checked, outcome.response, auth)
        finally:
            self.stats.auth_check_seconds += time.perf_counter() - started

    # -------------------------------------------------------- verification

    def _thread_verifier(self):
        """The verifier for the current thread (created lazily for
        executor workers). Verification never uses the verifier's own
        key — only its op counter must not be shared — so workers get a
        keypair-less :class:`_WorkerVerifier` instead of paying RSA
        keygen + certification per thread."""
        identity = getattr(self._verifier_local, "identity", None)
        if identity is None:
            identity = _WorkerVerifier()
            self._verifier_local.identity = identity
        return identity

    def _verify_auth(self, public_key, auth, stats):
        """Signature check with accounting (Figure 8's verification cost)."""
        stats.signatures_verified += 1
        verify_authenticator(self._thread_verifier(), public_key, auth)

    def _verify_response_local(self, node_id, response, outcome, known,
                               base_cursor):
        """The node-local checks that can *prove* the node faulty.

        1. The fresh head authenticator must be validly signed and match
           the recomputed hash chain.
        2. Every evidence authenticator the querier *already* holds for
           this node must lie on the returned chain. The evidence store is
           frozen while node-local tasks run (harvesting only happens at
           finalize, after the whole batch), so this prefix is safe to
           read concurrently; its length is recorded on the outcome and
           finalize checks only the tail harvested later in the batch.
        3. Embedded authenticators in rcv/ack entries must carry valid
           signatures from their claimed signers (a node cannot launder a
           forged message into its log).
        4. Consistency check (Section 5.5): authenticators other nodes hold
           about this node must lie on the same chain — two signed heads
           off-chain expose equivocation. Collection resumes from
           *base_cursor*, so a refresh scans only evidence received since
           the last pass.

        Returns ``(hashes, cursor)``: the recomputed chain hashes aligned
        with the entries (the last one is the verified head a later
        refresh extends from) and the advanced consistency cursor (None
        when the consistency check is disabled). Works for full,
        checkpoint-anchored and delta responses alike; evidence that was
        *never* checkable against any verified segment is counted as
        skipped in the stats (per verification pass), while evidence
        already verified on this same chain (*known* ∪ checked-this-pass)
        is neither re-verified, re-compared nor re-counted.
        """
        stats = outcome.stats
        public_key = self.deployment.public_key_of(node_id)
        self._verify_auth(public_key, response.head_auth, stats)
        hashes = verify_segment_hashes(response)
        check_against_authenticator(response, hashes, response.head_auth,
                                    stats)
        held = self.evidence.for_node(node_id)
        outcome.evidence_prefix = len(held)
        for auth in held:
            sig = bytes(auth.signature)
            if sig in known or sig in outcome.checked:
                continue
            check_against_authenticator(response, hashes, auth, stats)
            self._note_checked(outcome.checked, response, auth)
        if response.checkpoint is not None:
            self._verify_checkpoint(node_id, response.checkpoint)
        if self.verify_embedded_signatures:
            self._verify_embedded(node_id, response, stats)
        cursor = None
        if self.run_consistency_check:
            cursor = self._consistency_check(node_id, response, hashes,
                                             stats, outcome.checked, known,
                                             base_cursor)
        return hashes, cursor

    @staticmethod
    def _note_checked(checked, response, auth):
        """Memoize an authenticator that was actually compared against the
        verified chain (not one merely skipped as pre-anchor): a later
        refresh extends the same chain, so the comparison stays valid.
        Notes land in the outcome-local set and are committed to the
        querier's memo only when the view finalizes ``ok``."""
        first = response.start_index
        last = first + len(response.entries) - 1
        if first - 1 <= auth.index <= last:
            checked.add(bytes(auth.signature))

    def _verify_checkpoint(self, node_id, chk_entry):
        """Verify the checkpoint's tuple lists against the Merkle roots
        committed in the log entry (Section 7.7: the Quagga-Disappear
        query spends most of its time 'verifying partial checkpoints using
        a Merkle Hash Tree'). A mismatch means the node's replay seed does
        not match what it committed to — proof of tampering."""
        from repro.crypto.merkle import MerkleTree
        _tag, local_root, belief_root, n_local, n_believed = \
            chk_entry.content
        extant = chk_entry.aux.get("extant", [])
        believed = chk_entry.aux.get("believed", [])
        if len(extant) != n_local or len(believed) != n_believed:
            raise LogVerificationError(
                node_id, "checkpoint tuple counts do not match commitment"
            )
        local_tree = MerkleTree(
            [(tup.canonical(), appeared) for tup, appeared in extant]
        )
        belief_tree = MerkleTree(
            [(tup.canonical(), peer, appeared)
             for tup, peer, appeared in believed]
        )
        if local_tree.root() != local_root \
                or belief_tree.root() != belief_root:
            raise LogVerificationError(
                node_id, "checkpoint contents fail Merkle verification"
            )

    def _verify_embedded(self, node_id, response, stats):
        for entry in response.entries:
            if entry.entry_type == RCV:
                auth = entry.aux.get("batch_auth")
                if auth is None:
                    raise LogVerificationError(
                        node_id, f"rcv entry {entry.index} lacks evidence"
                    )
                sender_key = self.deployment.public_key_of(auth.node)
                self._verify_auth(sender_key, auth, stats)
            elif entry.entry_type == ACK:
                wire_ack = entry.aux.get("wire_ack")
                if wire_ack is None:
                    raise LogVerificationError(
                        node_id, f"ack entry {entry.index} lacks evidence"
                    )
                acker_key = self.deployment.public_key_of(wire_ack.src)
                self._verify_auth(acker_key, wire_ack.auth, stats)

    def _consistency_check(self, node_id, response, hashes, stats, checked,
                           known, base_cursor):
        """Ask all other nodes for authenticators signed by *node_id* and
        check each against the retrieved chain (Section 5.5). Returns the
        advanced collection cursor."""
        public_key = self.deployment.public_key_of(node_id)
        auths, cursor = self.deployment.collect_authenticators_about_since(
            node_id, base_cursor
        )
        for auth in auths:
            sig = bytes(auth.signature)
            if sig in known or sig in checked:
                continue  # verified on this same chain in an earlier pass
            try:
                self._verify_auth(public_key, auth, stats)
            except AuthenticationError:
                continue  # not actually signed by node_id; ignore
            check_against_authenticator(response, hashes, auth, stats)
            self._note_checked(checked, response, auth)
        return cursor

    def _harvest_evidence(self, response):
        """Collect the authenticators embedded in a verified log into the
        evidence store — they are what lets the querier verify the *next*
        node it visits."""
        for entry in response.entries:
            if entry.entry_type == RCV:
                auth = entry.aux.get("batch_auth")
                if auth is not None:
                    self.evidence.add(auth)
            elif entry.entry_type == ACK:
                wire_ack = entry.aux.get("wire_ack")
                if wire_ack is not None:
                    self.evidence.add(wire_ack.auth)
        self.evidence.add(response.head_auth)

    # ---------------------------------------------------------- microquery

    def microquery(self, vertex):
        """Run microquery for *vertex*; returns a MicroResult.

        The first color is always yellow (the vertex's color is unknown
        until host(v) responds); the second is the verdict.
        """
        self.stats.microqueries += 1
        resolved, color = self.resolve(vertex)
        view = self._views.get(resolved.node)
        preds, succs = [], []
        if view is not None and view.status == OK and resolved.key() in view.graph:
            preds = view.graph.predecessors(resolved)
            succs = view.graph.successors(resolved)
        colors = [Color.YELLOW]
        if color != Color.YELLOW:
            colors.append(color)
        return MicroResult(resolved, colors, preds, succs)

    def resolve(self, vertex):
        """Materialize *vertex* from its host's verified view.

        Returns (vertex, color). The returned vertex is the one from the
        host's replayed graph when available; otherwise the caller's stub,
        recolored according to what the retrieval proved:

        * host unreachable → yellow (can't tell yet);
        * host's log proven bogus → red;
        * host's replay lacks a send/receive the peer holds signed evidence
          for → red (the ``handle-extra-msg`` case: an omitted message).
        """
        view = self.view_of(vertex.node)
        if view.status == UNREACHABLE:
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if view.status == PROVEN_FAULTY:
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        real = view.graph.get(vertex.key())
        if real is not None:
            return real, real.color
        if vertex.t is not None and vertex.t >= view.head_time:
            # The vertex postdates this view's verified head (the host's
            # view may be stale — e.g. kept through a refresh while the
            # host was unreachable, or simply not refreshed since the
            # system ran on). Its absence proves nothing: red must stay
            # reserved for *proof*, so the vertex remains unresolved
            # until a refresh audits that far. The boundary leans yellow
            # (>=, not >) deliberately: outputs triggered by the head
            # entry are logged strictly *after* it (_next_time), so their
            # absence at t == head_time is not provable — whereas sends
            # the expected machine produces at that instant are emitted
            # by replay of the verified prefix and found in the graph
            # above, never lost to this guard.
            vertex.set_color(Color.YELLOW)
            return vertex, Color.YELLOW
        if vertex.vtype in (SEND, RECEIVE):
            # The peer's log contains signed evidence of this message, but
            # the host's replayed subgraph (which verifiably covers the
            # message's instant) does not: the host suppressed it.
            vertex.set_color(Color.RED)
            return vertex, Color.RED
        vertex.set_color(Color.RED)
        return vertex, Color.RED
