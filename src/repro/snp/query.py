"""The macroquery processor (paper Sections 2.2, 5.1, 7.2).

Macroqueries answer the operator's forensic questions by repeatedly invoking
microquery and assembling the explored subgraph:

* :meth:`QueryProcessor.why` — provenance of an extant tuple ("Why does τ
  exist?"), or a *historical* query when ``at`` names a past instant ("Why
  did τ exist at time t?");
* :meth:`QueryProcessor.why_appear` / :meth:`why_disappear` — *dynamic*
  queries about state changes;
* :meth:`QueryProcessor.effects` — *causal* (forward) queries for damage
  assessment ("What state on other nodes was derived from τ?").

Every query takes ``scope=k`` (Section 5.1): only vertices within graph
distance k of the root are explored — matching how an analyst zooms in one
neighborhood at a time (Section 7.3).
"""

from repro.provgraph.graph import ProvenanceGraph
from repro.provgraph.vertices import (
    Color, APPEAR, DISAPPEAR, EXIST, BELIEVE,
)
from repro.snp.microquery import MicroQuerier, UNREACHABLE
from repro.util.errors import QueryError


class QueryResult:
    """The explored subgraph plus verdicts and cost accounting."""

    def __init__(self, root, graph, stats, direction):
        self.root = root
        self.graph = graph
        self.stats = stats
        self.direction = direction

    # ------------------------------------------------------------ verdicts

    def red_vertices(self):
        return self.graph.red_vertices()

    def yellow_vertices(self):
        return self.graph.yellow_vertices()

    def faulty_nodes(self):
        """Nodes with at least one red vertex in the explored subgraph."""
        return sorted({v.node for v in self.red_vertices()}, key=str)

    def suspect_nodes(self):
        """Nodes that are red or unresponsive (yellow) — the paper's 'at
        least one faulty or misbehaving node' starting point."""
        nodes = {v.node for v in self.red_vertices()}
        nodes.update(v.node for v in self.yellow_vertices())
        return sorted(nodes, key=str)

    def is_clean(self):
        return not self.red_vertices() and not self.yellow_vertices()

    def verdict(self):
        """The whole-result verdict, ordered worst-first: ``"red"`` when
        any explored vertex is proven faulty, ``"yellow"`` when judgment
        is withheld anywhere, else ``"green"``. This is the scalar the
        service plane's subscriptions watch for downgrades."""
        if self.red_vertices():
            return "red"
        if self.yellow_vertices():
            return "yellow"
        return "green"

    def summary(self):
        """A JSON-ready, deterministic projection of the result: every
        vertex rendering with its color, plus the verdict rollup. Two
        audits that explored the same provenance produce byte-identical
        summaries — the equality the service e2e gate checks between a
        daemon-served query and a direct in-process one. (Cost counters
        live in ``stats`` and are intentionally excluded: they vary by
        executor and fetch path, like ``QueryStats.EXECUTOR_FIELDS``.)"""
        return {
            "root": self.root.describe(),
            "direction": self.direction,
            "verdict": self.verdict(),
            "vertices": sorted(
                [v.describe(), v.color] for v in self.graph.vertices()
            ),
            "faulty_nodes": [str(n) for n in self.faulty_nodes()],
        }

    def vertices(self):
        return self.graph.vertices()

    def base_causes(self):
        """The root causes: insert/delete vertices in the explored graph."""
        return [
            v for v in self.graph.vertices()
            if v.vtype in ("insert", "delete")
        ]

    # ------------------------------------------------------------ display

    def pretty(self, max_depth=None):
        """ASCII rendering in the style of the paper's Figures 2 and 4."""
        lines = []
        seen = set()

        def walk(vertex, depth, prefix):
            marker = {"black": " ", "red": "!", "yellow": "?"}[vertex.color]
            lines.append(f"{prefix}{marker} {vertex.describe()}")
            if vertex.key() in seen:
                return
            seen.add(vertex.key())
            if max_depth is not None and depth >= max_depth:
                return
            if self.direction == "backward":
                neighbors = self.graph.predecessors(vertex)
            else:
                neighbors = self.graph.successors(vertex)
            for neighbor in sorted(neighbors, key=lambda v: v.sort_key()):
                walk(neighbor, depth + 1, prefix + "  ")

        walk(self.root, 0, "")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"QueryResult(root={self.root.describe()}, "
            f"|V|={len(self.graph)}, red={len(self.red_vertices())}, "
            f"yellow={len(self.yellow_vertices())})"
        )


class QueryProcessor:
    """Evaluates macroqueries against a deployment.

    *executor* selects how per-node view builds are scheduled (see
    :mod:`repro.snp.executor`): ``None``/``"serial"`` builds one node at a
    time (the default), an int ``n > 1`` builds up to n nodes' views
    concurrently on threads, ``"process:n"`` backs the verify+replay step
    with n worker processes. Exploration prefetches each BFS level's
    unvisited hosts as one batch, so a cold macroquery against a wide
    deployment overlaps its per-node downloads; results are identical for
    every executor.

    The processor *owns* an executor it builds from a spec and closes it
    in :meth:`close` — use the processor as a context manager so warm
    thread/process pools are never leaked across deployments or test
    runs. An executor instance passed in stays the caller's to manage.
    """

    def __init__(self, deployment, use_checkpoints=False, executor=None,
                 **mq_kwargs):
        self.deployment = deployment
        self.mq = MicroQuerier(deployment, use_checkpoints=use_checkpoints,
                               executor=executor, **mq_kwargs)
        #: Monotone view-generation counter: bumped by :meth:`refresh`, so
        #: callers can tag results with the epoch they were computed in.
        self.epoch = 0

    def close(self):
        """Release owned executor workers (serial executor: a no-op)."""
        self.mq.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------ freshness

    def prefetch(self, nodes=None):
        """Build verified views for *nodes* (default: every deployment
        node) as one executor batch — the standing auditor's cold start.

        Exploration builds views lazily as the BFS frontier reaches new
        hosts, which serializes fetches along chain-shaped provenance
        (one new host per level). Prefetching instead hands the whole
        node set to the executor at once, so a wide deployment's
        downloads overlap; the macroquery that follows runs entirely
        against cached views. Returns ``{node_id: view}``.
        """
        if nodes is None:
            nodes = sorted(self.deployment.nodes, key=str)
        return self.mq.build_views(nodes)

    def refresh(self, node_id=None):
        """Advance cached node views to the deployment's current state and
        start a new query epoch.

        Repeated macroqueries against a *running* deployment would
        otherwise answer from stale views (the cache has no TTL) — or pay
        a full log re-fetch, re-verification and re-replay per node after
        an ``invalidate()``. Refresh instead extends each verified view by
        only the log suffix appended since it was built (see
        :meth:`repro.snp.microquery.MicroQuerier.refresh`). Returns the
        new epoch number; the per-node refresh cost lands in ``mq.stats``
        like any other retrieval, so the next query's stats delta includes
        it only if the caller measures across the refresh. The epoch's
        semantic change set is exposed as :attr:`last_refresh_changed`.
        """
        self.mq.refresh(node_id)
        self.epoch += 1
        return self.epoch

    @property
    def last_refresh_changed(self):
        """Nodes whose view changed in the most recent :meth:`refresh`
        (verdict flipped or verified head advanced) — the per-epoch
        output delta. ``None`` before the first refresh: consumers must
        then assume anything may have changed."""
        return self.mq.last_refresh_changed

    def low_water_marks(self):
        """Per-node verified heads, advertised to the retention handshake
        when this processor is registered via
        ``Deployment.register_querier`` (see
        :meth:`repro.snp.microquery.MicroQuerier.low_water_marks`)."""
        return self.mq.low_water_marks()

    # ---------------------------------------------------------- entry points

    def why(self, tup, node=None, at=None, scope=None):
        """Provenance of τ on *node* (extant, or historical when ``at`` is
        given). The root is the exist (or believe) vertex whose interval
        covers the instant."""
        node = tup.loc if node is None else node
        stats_before = _snapshot_stats(self.mq.stats)
        root = self._find_interval_vertex(node, tup, at)
        if root is None:
            raise QueryError(
                f"{tup!r} does not exist on {node!r}"
                + (f" at t={at:g}" if at is not None else "")
            )
        return self._explore(root, "backward", scope, stats_before)

    def why_appear(self, tup, node=None, before=None, scope=None):
        """Dynamic query: why did τ appear (most recent appearance ≤
        *before*)?"""
        node = tup.loc if node is None else node
        stats_before = _snapshot_stats(self.mq.stats)
        root = self._find_change_vertex(node, tup, APPEAR, before)
        if root is None:
            raise QueryError(f"no appearance of {tup!r} on {node!r}")
        return self._explore(root, "backward", scope, stats_before)

    def why_disappear(self, tup, node=None, before=None, scope=None):
        """Dynamic query: why did τ disappear?"""
        node = tup.loc if node is None else node
        stats_before = _snapshot_stats(self.mq.stats)
        root = self._find_change_vertex(node, tup, DISAPPEAR, before)
        if root is None:
            raise QueryError(f"no disappearance of {tup!r} on {node!r}")
        return self._explore(root, "backward", scope, stats_before)

    def effects(self, tup, node=None, at=None, scope=None):
        """Causal (forward) query: what was derived from τ?"""
        node = tup.loc if node is None else node
        stats_before = _snapshot_stats(self.mq.stats)
        roots = []
        interval = self._find_interval_vertex(node, tup, at)
        if interval is None:
            interval = self._find_latest_interval(node, tup)
        if interval is not None:
            roots.append(interval)
        # Derivations made at the instant the tuple appeared hang off the
        # (believe-)appear vertex rather than the interval vertex, and the
        # tuple's *disappearance* has downstream effects of its own (−τ
        # notifications, underivations), so the forward exploration seeds
        # all of the tuple's change vertices alongside the interval vertex.
        for kind in (APPEAR, DISAPPEAR):
            change = self._find_change_vertex(node, tup, kind, None)
            if change is not None:
                roots.append(change)
        if not roots:
            raise QueryError(f"{tup!r} was never on {node!r}")
        return self._explore(roots[0], "forward", scope, stats_before,
                             extra_roots=roots[1:])

    def history_of(self, tup, node=None):
        """All exist intervals of τ on *node* (historical inspection)."""
        node = tup.loc if node is None else node
        view = self.mq.view_of(node)
        if view.status != "ok":
            return []
        vertices = self.mq.view_find_all(view, vtype=EXIST, node=node,
                                         tup=tup)
        return [(v.t, v.t_end) for v in vertices]

    # ------------------------------------------------------------- lookup

    def _find_interval_vertex(self, node, tup, at):
        view = self.mq.view_of(node)
        if view.status != "ok":
            raise QueryError(
                f"cannot query {node!r}: {view.status} "
                f"({view.verdict_reason})"
            )
        candidates = self.mq.view_find_all(view, vtype=EXIST, node=node,
                                           tup=tup)
        candidates += self.mq.view_find_all(view, vtype=BELIEVE, node=node,
                                            tup=tup)
        best = None
        for vertex in candidates:
            if at is None:
                if vertex.t_end is None:
                    best = vertex
            elif vertex.t <= at and (vertex.t_end is None
                                     or at <= vertex.t_end):
                best = vertex
        return best

    def _find_latest_interval(self, node, tup):
        """The most recent exist/believe vertex of τ on *node*, open or
        closed (used by effects queries on tuples that are already gone)."""
        view = self.mq.view_of(node)
        if view.status != "ok":
            return None
        candidates = self.mq.view_find_all(view, vtype=EXIST, node=node,
                                           tup=tup)
        candidates += self.mq.view_find_all(view, vtype=BELIEVE, node=node,
                                            tup=tup)
        if not candidates:
            return None
        return max(candidates, key=lambda v: v.t)

    def _find_change_vertex(self, node, tup, vtype, before):
        view = self.mq.view_of(node)
        if view.status != "ok":
            raise QueryError(
                f"cannot query {node!r}: {view.status} "
                f"({view.verdict_reason})"
            )
        kinds = [vtype]
        kinds.append(
            "believe-appear" if vtype == APPEAR else "believe-disappear"
        )
        best = None
        for kind in kinds:
            for vertex in self.mq.view_find_all(view, vtype=kind, node=node,
                                                tup=tup):
                if before is not None and vertex.t > before:
                    continue
                if best is None or vertex.t > best.t:
                    best = vertex
        return best

    # ---------------------------------------------------------- exploration

    def _explore(self, root, direction, scope, stats_before=None,
                 extra_roots=()):
        """BFS from the root(s), one *level* at a time.

        Level synchronization is what lets view builds batch: all of a
        level's vertices are microqueried first (their hosts' views are
        already cached — every vertex entered the level through
        ``resolve``), the hosts of every discovered neighbor are
        prefetched as one ``build_views`` batch, and only then are the
        neighbors resolved and attached. The visit order, the explored
        subgraph and the verdicts are identical to vertex-at-a-time
        exploration; only the build scheduling changes.
        """
        if stats_before is None:
            stats_before = _snapshot_stats(self.mq.stats)
        graph = ProvenanceGraph()
        self.mq.build_views([root.node]
                            + [extra.node for extra in extra_roots])
        resolved_root, _color = self.mq.resolve(root)
        graph.add_vertex(_copy_vertex(resolved_root))
        level = [resolved_root]
        visited = {resolved_root.key()}
        for extra in extra_roots:
            resolved, _c = self.mq.resolve(extra)
            if resolved.key() in visited:
                continue
            graph.add_vertex(_copy_vertex(resolved))
            visited.add(resolved.key())
            level.append(resolved)
        depth = 0
        while level and (scope is None or depth < scope):
            expansions = []
            for vertex in level:
                result = self.mq.microquery(vertex)
                neighbors = (
                    result.predecessors if direction == "backward"
                    else result.successors
                )
                expansions.append(
                    (vertex, sorted(neighbors, key=lambda v: v.sort_key()))
                )
            self.mq.build_views([n.node for _v, neighbors in expansions
                                 for n in neighbors])
            next_level = []
            for vertex, neighbors in expansions:
                here = graph.get(vertex.key())
                for neighbor in neighbors:
                    resolved, _c = self.mq.resolve(neighbor)
                    mine = graph.add_vertex(_copy_vertex(resolved))
                    if direction == "backward":
                        graph.add_edge(mine, here)
                    else:
                        graph.add_edge(here, mine)
                    if resolved.key() not in visited:
                        visited.add(resolved.key())
                        next_level.append(resolved)
            level = next_level
            depth += 1
        stats = _diff_stats(stats_before, self.mq.stats)
        return QueryResult(graph.get(resolved_root.key()), graph, stats,
                           direction)


def _copy_vertex(vertex):
    from repro.provgraph.graph import _clone_vertex
    return _clone_vertex(vertex)


def _snapshot_stats(stats):
    return stats.copy()


def _diff_stats(before, after):
    # Field set derived from the instance __dict__ (inside delta_since)
    # rather than a hand-kept list, so new QueryStats counters are never
    # silently dropped from per-query deltas.
    return after.delta_since(before)
