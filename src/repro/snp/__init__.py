"""SNP: secure network provenance (the paper's core contribution).

Layer map (paper Section 5, Figure 3):

* :mod:`repro.snp.log` — the tamper-evident log (hash chain + entries);
* :mod:`repro.snp.evidence` — authenticators and the querier's evidence set;
* :mod:`repro.snp.commitment` — the signed send/ack commitment protocol,
  including the Tbatch batching optimization;
* :mod:`repro.snp.snoopy` — :class:`SNooPyNode`, gluing a primary-system
  state machine to the graph recorder and the commitment protocol;
* :mod:`repro.snp.replay` — log→history conversion and deterministic replay
  through the GCA;
* :mod:`repro.snp.microquery` — ``microquery(v, ε)`` with verification,
  coloring and the equivocation consistency check;
* :mod:`repro.snp.query` — the macroquery processor (why/causal/historical/
  dynamic queries with scope k);
* :mod:`repro.snp.deployment` — assembles simulator, CA, nodes, maintainer;
* :mod:`repro.snp.adversary` — Byzantine node behaviors for fault injection.
"""

from repro.snp.deployment import Deployment
from repro.snp.snoopy import SNooPyNode
from repro.snp.query import QueryProcessor
from repro.snp.microquery import MicroQuerier

__all__ = ["Deployment", "SNooPyNode", "QueryProcessor", "MicroQuerier"]
