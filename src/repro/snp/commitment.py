"""The commitment protocol: signed message batches and acknowledgments.

Per-message protocol (paper Section 5.4): to send m, node i appends a snd
entry, then transmits ``(m, h_{x-1}, t_x, σ_i(t_x || h_x))``; the receiver j
recomputes ``h_x``, checks the signature and the timestamp plausibility
window (``Δclock + Tprop``), logs a rcv entry, and returns a signed
acknowledgment that commits j to that rcv entry. i verifies the ack by
recomputing j's rcv-entry hash (it knows the entry's content) and logs an
ack entry.

Batching (Section 5.6): with ``Tbatch > 0``, messages to the same
destination are logged immediately (so the log's input/output ordering
invariant holds) but transmitted together under a *single* signature
covering the last entry of the window. Entries interleaved between the
batched snd entries are disclosed only as ``(index, t, type, H(content))``
metadata, which is enough to verify hash-chain continuity without revealing
their content. Acknowledgments batch symmetrically.
"""

from repro.crypto.hashing import chain_hash, content_digest
from repro.snp.evidence import (
    Authenticator, sign_authenticator, verify_authenticator,
)
from repro.snp.log import SND, RCV
from repro.util.errors import AuthenticationError


class WireBatch:
    """One signed bundle of ``+τ/−τ`` messages from src to dst.

    Attributes:
        msgs: list of (Msg, snd_entry_index, entry_timestamp).
        gaps: metadata tuples (index, t, type, content_hash) for entries in
            the covered range that are not these snd entries.
        start_index: index of the first covered entry.
        h_start: chain hash immediately before start_index.
        auth: Authenticator over the last covered entry.
    """

    __slots__ = ("src", "dst", "msgs", "gaps", "start_index", "h_start",
                 "auth")

    def __init__(self, src, dst, msgs, gaps, start_index, h_start, auth):
        self.src = src
        self.dst = dst
        self.msgs = msgs
        self.gaps = gaps
        self.start_index = start_index
        self.h_start = h_start
        self.auth = auth

    def __repr__(self):
        return f"WireBatch({self.src}->{self.dst}, {len(self.msgs)} msgs)"


class WireAck:
    """One signed acknowledgment covering the messages of a WireBatch.

    ``rcv_metas`` lists (msg_id, rcv_entry_index, rcv_entry_timestamp) for
    each covered message, in receive order; ``gaps`` discloses chain
    metadata for the receiver's interleaved entries (e.g. the snd entries
    of outputs it produced while processing the batch).
    """

    __slots__ = ("src", "dst", "batch_auth", "rcv_metas", "gaps",
                 "start_index", "h_start", "auth", "msgs")

    def __init__(self, src, dst, batch_auth, rcv_metas, gaps, start_index,
                 h_start, auth, msgs):
        self.src = src                # the acker (original receiver)
        self.dst = dst                # the original sender
        self.batch_auth = batch_auth  # echoes which batch is acked
        self.rcv_metas = rcv_metas
        self.gaps = gaps
        self.start_index = start_index
        self.h_start = h_start
        self.auth = auth
        self.msgs = msgs              # the covered Msg objects

    def __repr__(self):
        return f"WireAck({self.src}->{self.dst}, {len(self.rcv_metas)} msgs)"


def snd_entry_content(msg):
    """Committed content of a snd entry: ``(t_k, snd, (m, j))``."""
    return (msg.canonical(), msg.dst)


def rcv_entry_content(msg, batch):
    """Committed content of a rcv entry: ``(m, i, a, b, c)`` — the message,
    the sender, and the batch authenticator binding it to the sender's log."""
    return (
        msg.canonical(), msg.src,
        batch.h_start, batch.start_index,
        batch.auth.index, batch.auth.timestamp, batch.auth.entry_hash,
        batch.auth.signature,
    )


def ack_entry_content(wire_ack):
    """Committed content of an ack entry on the original sender."""
    return (
        tuple(m.msg_id() for m in wire_ack.msgs),
        wire_ack.h_start, wire_ack.start_index,
        wire_ack.auth.index, wire_ack.auth.timestamp,
        wire_ack.auth.entry_hash, wire_ack.auth.signature,
    )


def build_batch(log, identity, dst, queued):
    """Assemble and sign a WireBatch from already-logged snd entries.

    *queued* is a list of (msg, LogEntry) in log order.
    """
    first_index = queued[0][1].index
    last_index = queued[-1][1].index
    covered = {entry.index for _msg, entry in queued}
    gaps = []
    for index in range(first_index, last_index + 1):
        if index not in covered:
            gaps.append(log.entry(index).meta())
    last_entry = queued[-1][1]
    auth = sign_authenticator(
        identity, last_entry.index, last_entry.timestamp,
        last_entry.entry_hash,
    )
    return WireBatch(
        src=identity.node_id,
        dst=dst,
        msgs=[(msg, entry.index, entry.timestamp) for msg, entry in queued],
        gaps=gaps,
        start_index=first_index,
        h_start=log.hash_before(first_index),
        auth=auth,
    )


def verify_batch(batch, verifier_identity, sender_public_key, local_time,
                 plausibility_window):
    """Receiver-side validation of a WireBatch (Section 5.4).

    Checks (1) the recomputed hash chain over the covered range matches the
    authenticator, (2) the authenticator's signature, and (3) the timestamp
    plausibility window ``Δclock + Tprop``. Raises AuthenticationError on
    any failure.
    """
    verify_authenticator(verifier_identity, sender_public_key, batch.auth)
    if abs(batch.auth.timestamp - local_time) > plausibility_window:
        raise AuthenticationError(
            f"batch from {batch.src!r} has an implausible timestamp "
            f"({batch.auth.timestamp:g} vs local {local_time:g})"
        )
    # Recompute h over [start_index .. auth.index].
    pieces = {}
    for msg, index, t_entry in batch.msgs:
        if msg.src != batch.src:
            raise AuthenticationError(
                f"batch from {batch.src!r} contains a message claiming "
                f"src={msg.src!r}"
            )
        pieces[index] = (t_entry, SND, content_digest(snd_entry_content(msg)))
    for index, t_entry, entry_type, c_hash in batch.gaps:
        if index in pieces:
            raise AuthenticationError("batch gap overlaps a message entry")
        pieces[index] = (t_entry, entry_type, c_hash)
    current = batch.h_start
    for index in range(batch.start_index, batch.auth.index + 1):
        if index not in pieces:
            raise AuthenticationError(
                f"batch from {batch.src!r} omits entry {index}"
            )
        t_entry, entry_type, c_hash = pieces[index]
        current = chain_hash(current, t_entry, entry_type, c_hash)
    if current != batch.auth.entry_hash:
        raise AuthenticationError(
            f"batch from {batch.src!r} fails hash-chain verification"
        )
    return True


def build_ack(log, identity, batch, rcv_entries):
    """Assemble and sign a WireAck for *batch*.

    *rcv_entries* is the list of (msg, LogEntry) for the rcv entries this
    node appended while processing the batch, in log order.
    """
    first_index = rcv_entries[0][1].index
    last_index = len(log)  # commit everything up to the head
    covered = {entry.index for _msg, entry in rcv_entries}
    gaps = []
    for index in range(first_index, last_index + 1):
        if index not in covered:
            gaps.append(log.entry(index).meta())
    head_entry = log.entry(last_index)
    auth = sign_authenticator(
        identity, head_entry.index, head_entry.timestamp,
        head_entry.entry_hash,
    )
    return WireAck(
        src=identity.node_id,
        dst=batch.src,
        batch_auth=batch.auth,
        rcv_metas=[
            (msg.msg_id(), entry.index, entry.timestamp)
            for msg, entry in rcv_entries
        ],
        gaps=gaps,
        start_index=first_index,
        h_start=log.hash_before(first_index),
        auth=auth,
        msgs=[msg for msg, _entry in rcv_entries],
    )


def verify_ack(wire_ack, verifier_identity, acker_public_key, batch,
               local_time, plausibility_window):
    """Sender-side validation of a WireAck.

    The sender recomputes the receiver's rcv-entry hashes — it knows their
    committed content exactly (the message plus the batch authenticator it
    itself produced) — chains them with the disclosed gap metadata, and
    checks the signed head. This is the step that makes a receiver's
    acknowledgment a non-repudiable commitment that it logged the message.
    """
    verify_authenticator(verifier_identity, acker_public_key, wire_ack.auth)
    if abs(wire_ack.auth.timestamp - local_time) > plausibility_window:
        raise AuthenticationError(
            f"ack from {wire_ack.src!r} has an implausible timestamp"
        )
    by_id = {msg.msg_id(): msg for msg in wire_ack.msgs}
    pieces = {}
    for msg_id, index, t_entry in wire_ack.rcv_metas:
        msg = by_id.get(msg_id)
        if msg is None:
            raise AuthenticationError("ack covers an unknown message")
        content = rcv_entry_content(msg, batch)
        pieces[index] = (t_entry, RCV, content_digest(content))
    for index, t_entry, entry_type, c_hash in wire_ack.gaps:
        if index in pieces:
            raise AuthenticationError("ack gap overlaps a rcv entry")
        pieces[index] = (t_entry, entry_type, c_hash)
    current = wire_ack.h_start
    for index in range(wire_ack.start_index, wire_ack.auth.index + 1):
        if index not in pieces:
            raise AuthenticationError(
                f"ack from {wire_ack.src!r} omits entry {index}"
            )
        t_entry, entry_type, c_hash = pieces[index]
        current = chain_hash(current, t_entry, entry_type, c_hash)
    if current != wire_ack.auth.entry_hash:
        raise AuthenticationError(
            f"ack from {wire_ack.src!r} fails hash-chain verification"
        )
    return True
