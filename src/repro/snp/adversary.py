"""Byzantine node behaviors for fault injection (paper Section 2.1).

The threat model gives the adversary complete control over compromised
nodes: both the primary system and the provenance system on those nodes can
be altered. Each class here implements one canonical attack; the integration
tests and benchmarks use them to demonstrate the paper's completeness
property (every *detectable* fault yields a red or yellow vertex) and its
limitations (input lies are not automatically detectable).

Summary of what each attack looks like to a querier:

=====================  ===========================================
Attack                 Detection path
=====================  ===========================================
Message fabrication    replay: snd entry with no matching output → red send
Mis-execution          replay: outputs diverge from snd entries → red
Log tampering          hash chain fails to recompute → proven faulty
Log forking            consistency check: off-chain authenticator → proven
                       faulty (equivocation)
Message suppression    peer's signed evidence has no counterpart → red
                       (handle-extra-msg), or missing-ack alarm
Query refusal          retrieve unanswered → yellow vertices
Input lying            *not detectable* (black); Section 4.2 limitation
=====================  ===========================================
"""

from repro.crypto.hashing import HashChain, content_digest
from repro.snp.log import NodeLog, SND
from repro.snp.snoopy import SNooPyNode
from repro.snp.commitment import snd_entry_content


class FabricatorNode(SNooPyNode):
    """Sends ``+τ/−τ`` messages its state machine never produced.

    The fabricated message is committed to the log like any other send (the
    commitment protocol forces that — an unlogged message would be rejected
    by the receiver's batch verification). Replay then exposes it: the
    deterministic machine does not produce the output, so the GCA's
    ``handle-event-snd`` colors the send vertex red.
    """

    def fabricate(self, polarity, tup, dst):
        t = self.local_time()
        msg = self.app.make_msg(polarity, tup, dst, t)
        self._queue_send(msg, t)
        return msg


class MisexecutingNode(SNooPyNode):
    """Runs a different program than the one it is expected to run.

    ``corrupt_app`` executes at runtime; the deployment's registered factory
    (the *expected* behavior ``A_i``) is what replay uses, so every output
    the corrupt app produces beyond the honest one becomes a red send
    vertex — this is the paper's corrupt-Hadoop-mapper scenario.
    """

    def install_corrupt_app(self, corrupt_app):
        self.app = corrupt_app


class TamperingNode(SNooPyNode):
    """Rewrites a committed log entry after the fact.

    With ``recompute_chain=False`` the stored hashes no longer recompute —
    the querier's segment verification fails immediately. With
    ``recompute_chain=True`` the node rebuilds a self-consistent chain, but
    every authenticator it issued before the edit is now off-chain, so the
    consistency check exposes it as soon as any peer's evidence is
    consulted.
    """

    def tamper_entry(self, index, new_content, recompute_chain=False):
        entry = self.log.entry(index)
        entry.content = new_content
        entry.aux = dict(entry.aux)
        if "tup" in entry.aux and hasattr(new_content, "relation"):
            entry.aux["tup"] = new_content
        if recompute_chain:
            self._rebuild_chain()
        return entry

    def _rebuild_chain(self):
        chain = HashChain()
        for entry in self.log.entries:
            entry.content_hash = content_digest(entry.content)
            entry.entry_hash = chain.append(
                entry.timestamp, entry.entry_type, entry.content_hash
            )
        self.log.chain = chain


class ForkingNode(SNooPyNode):
    """Equivocates by discarding a log suffix and rewriting history.

    Authenticators covering the discarded suffix are already in other
    nodes' hands; when the querier runs the consistency check, those
    authenticators fail to match the replacement chain, proving the fork.
    """

    def fork_log(self, keep_upto):
        """Drop all entries after *keep_upto* and continue from there."""
        old = self.log
        fresh = NodeLog(self.node_id)
        for entry in old.entries[:keep_upto]:
            fresh.append(entry.timestamp, entry.entry_type, entry.content,
                         aux=entry.aux)
        self.log = fresh
        # Sends awaiting acks on the abandoned branch are forgotten.
        self._await_ack.clear()
        self._outbox.clear()


class SuppressorNode(SNooPyNode):
    """Processes an input but hides the resulting messages from its log
    *and* from the wire: it simply drops selected outputs.

    The peer that should have received the message never acks (nothing was
    sent), so nothing is visibly wrong at this node — but any downstream
    state the suppressed message should have maintained goes stale, and the
    suppressed (un)derivation makes later logged sends inconsistent with
    replay, surfacing red vertices.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.suppress_to = set()

    def _queue_send(self, msg, t):
        if msg.dst in self.suppress_to:
            return  # silently dropped: no log entry, no wire
        super()._queue_send(msg, t)


class SilentNode(SNooPyNode):
    """Refuses to answer retrieve (and optionally the consistency check).

    Its vertices stay yellow — the paper's "remains yellow → host(v) is
    refusing to respond and is therefore faulty" outcome.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.refuse_retrieve = True
        self.refuse_consistency = True

    def retrieve(self, upto_index=None, from_checkpoint=False,
                 since_index=None):
        if self.refuse_retrieve:
            return None
        return super().retrieve(upto_index, from_checkpoint, since_index)

    def head_authenticator(self):
        if self.refuse_retrieve:
            return None
        return super().head_authenticator()

    def authenticators_about(self, peer, since=0):
        if self.refuse_consistency:
            return []
        return super().authenticators_about(peer, since=since)


class OverTruncatingNode(SNooPyNode):
    """Advertises an honest retention floor, then truncates *below* it —
    discarding entries the handshake promised to retain (typically the
    region holding incriminating evidence, hoping red fades to yellow).

    Detection: the signed advertisement commits the node to serving
    segments anchored at or below the floor. Any full build that gets a
    direct response whose anchor sits above the advertised floor is
    proof of the violation — the querier marks the node proven faulty
    (``compute_build``'s retention-coverage check).
    """

    def gc_truncate(self):
        chk = self.log.last_checkpoint_before(len(self.log))
        if chk is None or chk.index <= self.log.first_index:
            return super().gc_truncate()
        return self.log.truncate_below(chk.index)


class FloorLiarNode(SNooPyNode):
    """Advertises a retention floor *above* live auditors' verified heads
    — claiming the right to discard entries still anchored on — and
    truncates to it unilaterally.

    Detection: the advertisement is signed, and the auditors' heads are
    signed; floor > head is a contradiction between two commitments the
    maintainer can exhibit (``Maintainer.retention_faults``), so the
    node is convicted at handshake time and queriers treat it as proven
    faulty without ever trusting its log again.
    """

    def advertise_retention_floor(self, mark=None):
        # Ignore the auditors' marks: advertise (and immediately truncate
        # to) the newest checkpoint, whatever anyone still anchors on.
        advert = super().advertise_retention_floor(mark=None)
        if advert is not None:
            self.log.truncate_below(advert.floor_index)
        return advert


class InputLiarNode(SNooPyNode):
    """Inserts base tuples that do not reflect reality.

    This is the paper's first fundamental limitation (Section 4.2): nodes
    cannot observe each other's inputs, so a lie about local inputs yields
    a perfectly consistent log and black vertices. The *human* investigator
    sees the lying insert vertex as the root cause and can recognize it.
    There is deliberately no special machinery here — the class exists to
    make fault-injection matrices explicit.
    """

    def lie_insert(self, tup):
        self.insert(tup)
