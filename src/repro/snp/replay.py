"""Deterministic replay: log segment → history → provenance subgraph.

Appendix D of the paper maps SNooPy logs onto GCA histories: "the logs
maintained by the graph recorder are essentially histories, except that, for
convenience, the latter contain an explicit ack entry type instead of
rcv(ack)". The conversion rules:

* ``ins``/``del`` entries become ``ins``/``del`` events;
* a ``snd`` entry becomes a ``snd`` event;
* a ``rcv`` entry becomes a ``rcv`` event **followed by the implied
  ``snd(ack)`` event** — a correct node acknowledges a message immediately,
  and its commitment to the rcv entry is the acknowledgment, so the history
  reconstructs the per-message ack the GCA expects;
* an ``ack`` entry becomes a ``rcv(ack)`` event covering the acknowledged
  messages;
* ``chk`` entries are not events; they seed the replay (state-machine
  snapshot + open exist/believe vertices).

Replay then runs the GCA over these events with a *fresh* state machine
built by the node's registered application factory, yielding the node's
partition of Gν.

Replay correctness leans on the engine's determinism contract (see
DESIGN.md): the indexed evaluator sorts every observable result into
canonical order, and checkpoint snapshots carry logical state only —
restoring one onto a fresh machine rebuilds the derived join-index state,
so a replay seeded from a checkpoint is byte-identical to the original
run regardless of evaluation strategy or hash randomization.

Concurrency contract (parallel view builds): everything here is either a
pure function of its arguments or mutates only the GCA/ReplayResult it
was handed. One replay (and its later extensions) is owned by exactly one
view-build task at a time, so concurrent replays of *different* nodes
never share mutable state — they only read the deployment's app
factories, which must already be side-effect-free for replay to be
deterministic at all.
"""

import time
from contextlib import nullcontext

from repro.crypto.hashing import HashChain
from repro.model import Ack
from repro.provgraph.gca import Event, GraphConstructor
from repro.snp.log import INS, DEL, SND, RCV, ACK, CHK
from repro.util.errors import (
    AuthenticationError, LogVerificationError, ReplayDivergence,
)


def log_entries_to_history(node_id, entries):
    """Convert a contiguous run of log entries into GCA events."""
    events = []
    for entry in entries:
        t = entry.timestamp
        if entry.entry_type == INS:
            events.append(Event(t, node_id, "ins", entry.aux["tup"]))
        elif entry.entry_type == DEL:
            events.append(Event(t, node_id, "del", entry.aux["tup"]))
        elif entry.entry_type == SND:
            events.append(Event(t, node_id, "snd", entry.aux["msg"]))
        elif entry.entry_type == RCV:
            msg = entry.aux["msg"]
            events.append(Event(t, node_id, "rcv", msg))
            implied_ack = Ack(node_id, msg.src, [msg], t)
            events.append(Event(t, node_id, "snd", implied_ack))
        elif entry.entry_type == ACK:
            wire_ack = entry.aux["wire_ack"]
            ack = Ack(wire_ack.src, node_id, wire_ack.msgs,
                      wire_ack.auth.timestamp)
            events.append(Event(t, node_id, "rcv", ack))
        elif entry.entry_type == CHK:
            continue
        else:
            raise LogVerificationError(node_id,
                                       f"unknown entry {entry.entry_type}")
    return events


def verify_segment_hashes(response):
    """Recompute the hash chain over a RetrieveResponse's entries.

    Every entry's content digest is recomputed from its *content* — never
    trusted from the entry — and folded into the chain. Returns the list of
    chain hashes aligned with the entries. Raises LogVerificationError if
    anything fails to recompute, which means the node altered entry
    contents after committing to them.
    """
    from repro.crypto.hashing import chain_hash, content_digest

    hashes = []
    current = response.start_hash
    for entry in response.entries:
        digest = content_digest(entry.content)
        if digest != entry.content_hash:
            raise LogVerificationError(
                response.node,
                f"entry {entry.index} content does not match its digest",
            )
        current = chain_hash(
            current, entry.timestamp, entry.entry_type, digest
        )
        if entry.entry_hash != current:
            raise LogVerificationError(
                response.node,
                f"entry {entry.index} hash does not recompute",
            )
        hashes.append(current)
    return hashes


def check_against_authenticator(response, hashes, auth, stats=None,
                                on_skip=None):
    """Check that evidence authenticator *auth* lies on this chain.

    The authenticator's (index, hash) must match the segment. Raises
    LogVerificationError on mismatch — that is *proof* the node forked or
    rewrote its log, because both the authenticator and the returned
    segment are signed/committed by the same node.

    A partial segment (checkpoint- or delta-anchored) still pins one hash
    *before* its first entry: ``response.start_hash`` is ``h_{start-1}``,
    so an authenticator for entry ``start-1`` is checkable too. Evidence
    strictly before that genuinely cannot be compared against the segment;
    those skips are counted on *stats* (``auth_checks_skipped``) so the
    coverage loss is visible instead of silent, and reported to *on_skip*
    (called with the authenticator) so the caller can remember them for a
    retroactive check by a later, wider build.
    """
    index = auth.index
    first = response.start_index
    last = first + len(response.entries) - 1
    if index == first - 1:
        if auth.entry_hash != response.start_hash:
            raise LogVerificationError(
                response.node,
                f"authenticator for entry {index} does not match the hash "
                "anchoring the returned segment (equivocation or tampering)",
            )
        return
    if index < first - 1:
        if stats is not None:
            stats.auth_checks_skipped += 1
        if on_skip is not None:
            on_skip(auth)
        return  # authenticator predates the segment; nothing to compare
    if index > last:
        raise LogVerificationError(
            response.node,
            f"returned log ends at {last} but evidence covers {index}",
        )
    found = hashes[index - first]
    if found != auth.entry_hash:
        raise LogVerificationError(
            response.node,
            f"authenticator for entry {index} does not match the log "
            "(equivocation or tampering)",
        )


def verify_anchor_segment(response, public_key, trusted_head=None,
                          stats=None):
    """Verify a segment fetched solely to *anchor* owed evidence checks.

    Used by the on-demand anchoring fetch (a pending skip recorded by
    :func:`check_against_authenticator`'s ``on_skip`` means evidence fell
    below an earlier segment's anchor): before any owed authenticator is
    compared against this segment, the segment itself must be committed
    to by the node — its head authenticator validly signed and on the
    recomputed chain — and, when the caller already audited this node up
    to *trusted_head* (an ``(index, hash)`` pair), the chain must pass
    through that head. Without the cross-check a forked node could serve
    one history to the auditor and a different one to anchor its debts;
    with it, the mismatch is itself proof of the fork. Returns the chain
    hashes aligned with the entries.
    """
    from repro.util.serialization import canonical_bytes

    auth = response.head_auth
    if stats is not None:
        stats.signatures_verified += 1
    if not public_key.verify(canonical_bytes(auth.payload()),
                             auth.signature):
        raise AuthenticationError(
            f"authenticator from {auth.node!r} has an invalid signature"
        )
    hashes = verify_segment_hashes(response)
    check_against_authenticator(response, hashes, auth)
    if trusted_head is not None:
        index, trusted_hash = trusted_head
        first = response.start_index
        last = first + len(response.entries) - 1
        if index == first - 1:
            found = response.start_hash
        elif first <= index <= last:
            found = hashes[index - first]
        else:
            found = None  # segment does not reach the audited head
        if found is not None and found != trusted_hash:
            raise LogVerificationError(
                response.node,
                f"anchoring segment does not pass through the audited "
                f"head at entry {index} (fork)",
            )
    return hashes


class ReplayResult:
    """Outcome of replaying one node's log segment.

    Retains the :class:`~repro.provgraph.gca.GraphConstructor` so a later
    verified log *suffix* can be replayed onto the same state with
    :func:`extend_replay` instead of rebuilding from entry 1.

    ``last_delta`` is the net :class:`~repro.datalog.zset.ZSet` of
    presence changes the most recent :func:`extend_replay` applied to the
    target node's machine (None before the first extension, or when the
    machine does not support delta batching): the per-epoch output delta
    the resident view plane and the monitor's watch evaluation consume.
    """

    __slots__ = ("node", "graph", "machine", "events_replayed",
                 "replay_seconds", "hashes", "response", "failure", "gca",
                 "last_delta")

    def __init__(self, node, graph, machine, events_replayed, replay_seconds,
                 hashes, response, failure=None, gca=None):
        self.last_delta = None
        self.node = node
        self.graph = graph
        self.machine = machine
        self.events_replayed = events_replayed
        self.replay_seconds = replay_seconds
        self.hashes = hashes
        self.response = response
        self.failure = failure
        self.gca = gca

    @property
    def ok(self):
        return self.failure is None


#: Differential-engine cost counters harvested off replayed machines into
#: the querier's QueryStats (each is deterministic per replayed segment).
_DELTA_COUNTERS = (
    "delta_tuples_in", "delta_tuples_out", "retractions_applied",
    "support_rederivations",
)


def _delta_counter_totals(gca):
    """Sum the differential counters over every machine the GCA holds.

    New machines start all-zero, so a before/after difference of these
    totals is exactly the work one drive did — even when the drive itself
    lazily created machines."""
    totals = dict.fromkeys(_DELTA_COUNTERS, 0)
    for machine in gca.machines.values():
        for field in _DELTA_COUNTERS:
            totals[field] += getattr(machine, field, 0)
    return totals


def _drive_gca(gca, node_id, entries, stats=None):
    """Feed *entries* (converted to history events) through *gca*,
    capturing crashes as a replay failure — the shared core of
    :func:`replay_segment` and :func:`extend_replay`, kept single so the
    incremental replay can never diverge from the full one.

    *stats* (a QueryStats) receives the replay cost: wall-clock seconds,
    events processed, and the differential engine's delta counters
    accumulated by the replayed machines during this drive.

    Returns ``(events_processed, seconds, failure)``.
    """
    events = log_entries_to_history(node_id, entries)
    before = None if stats is None else _delta_counter_totals(gca)
    started = time.perf_counter()
    failure = None
    processed = 0
    try:
        for event in events:
            gca.process(event)
            processed += 1
    except Exception as exc:  # hostile log crashed the replay machinery
        failure = ReplayDivergence(node_id, repr(exc))
    elapsed = time.perf_counter() - started
    if stats is not None:
        stats.replay_seconds += elapsed
        stats.events_replayed += processed
        after = _delta_counter_totals(gca)
        for field in _DELTA_COUNTERS:
            setattr(stats, field,
                    getattr(stats, field) + after[field] - before[field])
    return processed, elapsed, failure


def replay_segment(node_id, response, app_factory, t_prop,
                   known_alarm_msg_ids=frozenset(), stats=None):
    """Replay a verified RetrieveResponse through the GCA.

    Returns a ReplayResult whose graph is the node's partition of Gν. A
    structurally impossible log (one the deterministic state machine cannot
    have produced) does not raise: the GCA colors the offending vertices
    red, which is exactly the paper's semantics. Only outright crashes of
    the application machine are caught and reported as a replay failure
    (which the microquery module turns into a red vertex).

    *stats* (a QueryStats) receives the replay cost directly — parallel
    builds pass each worker's own collector so the accounting needs no
    shared counters.
    """
    gca = GraphConstructor(app_factory, t_prop=t_prop)
    gca.known_alarm_msg_ids = known_alarm_msg_ids
    if response.checkpoint is not None:
        chk = response.checkpoint
        machine = gca.machine(node_id)
        machine.restore(chk.aux["snapshot"])
        gca.seed_node(node_id, chk.aux["extant"], chk.aux["believed"])
    processed, elapsed, failure = _drive_gca(gca, node_id, response.entries,
                                             stats=stats)
    return ReplayResult(
        node=node_id,
        graph=gca.graph,
        machine=gca.machines.get(node_id),
        events_replayed=processed,
        replay_seconds=elapsed,
        hashes=None,
        response=response,
        failure=failure,
        gca=gca,
    )


def extend_replay(node_id, result, response,
                  known_alarm_msg_ids=frozenset(), stats=None):
    """Continue a previous replay with a verified log suffix.

    *result* must be the ReplayResult of an earlier replay of the same
    node: its retained GCA still holds the bookkeeping state (open
    exist/believe intervals, pending sends, unacked messages) and the
    node's replayed state machine, so processing only the new events
    yields the same graph a full re-replay of the extended log would.
    The alarm set is refreshed to what the maintainer knows *now* —
    verdicts on older events keep reflecting what was known when their
    segment was audited (see DESIGN.md, "Audit path").

    Mutates *result* in place; returns ``(events_processed, seconds,
    failure)`` with the same crash-capture semantics as
    :func:`replay_segment`.
    """
    gca = result.gca
    if gca is None:
        raise ValueError(
            f"replay result for {node_id!r} does not retain its GCA; "
            "cannot extend"
        )
    gca.known_alarm_msg_ids = known_alarm_msg_ids
    # The suffix runs as ONE delta batch on the target node's machine:
    # events still apply one at a time (the graph and traces are exactly
    # those of an unbatched drive — and of a full re-replay), but the
    # machine journals its presence changes into a z-set, so the net
    # semantic change of the whole extension comes out as result.last_delta
    # with retract-then-rederive churn cancelled. No snapshot is taken or
    # restored anywhere on this path.
    machine = gca.machine(node_id)
    batch = (machine.delta_batch() if hasattr(machine, "delta_batch")
             else nullcontext(None))
    with batch as delta:
        processed, elapsed, failure = _drive_gca(
            gca, node_id, response.entries, stats=stats
        )
    result.last_delta = delta
    result.events_replayed += processed
    result.replay_seconds += elapsed
    result.machine = gca.machines.get(node_id)
    result.response = response
    result.failure = failure
    return processed, elapsed, failure
