"""Deployment: assembles a simulated SNooPy system.

A deployment owns the simulator, the offline CA, the maintainer (the entity
that receives missing-ack notifications, Section 5.4), the traffic meter,
and the nodes. Applications register a *state-machine factory* per node —
the factory is what deterministic replay uses to reconstruct a fresh
instance of the node's expected behavior ``A_i``, so it must be free of
hidden state.
"""

from repro.crypto.keys import CertificateAuthority, NodeIdentity
from repro.metrics import RetentionMeter, TrafficMeter
from repro.net.simulator import Simulator
from repro.snp.snoopy import (
    SNooPyNode, merge_mirror_responses, truncate_response_below,
)
from repro.util.errors import ConfigurationError


class Maintainer:
    """The system maintainer: collects alarms and rejected-wire reports."""

    def __init__(self):
        self.missing_ack_alarms = []
        self.rejected_wires = []
        # Retention-handshake convictions: a node whose signed floor
        # advertisement contradicts a live auditor's verified head (or
        # fails to verify at all). Each record carries the evidence.
        self.retention_faults = []

    def notify_missing_ack(self, alarm):
        self.missing_ack_alarms.append(alarm)

    def record_rejected_wire(self, receiver, sender, reason):
        self.rejected_wires.append(
            {"receiver": receiver, "sender": sender, "reason": reason}
        )

    def record_retention_fault(self, node, reason, advert=None, mark=None):
        self.retention_faults.append(
            {"node": node, "reason": reason, "advert": advert, "mark": mark}
        )

    def retention_fault_of(self, node):
        """The first recorded retention conviction for *node*, or None."""
        for fault in self.retention_faults:
            if fault["node"] == node:
                return fault["reason"]
        return None

    def alarmed_msg_ids(self):
        out = set()
        for alarm in self.missing_ack_alarms:
            out.update(alarm["msg_ids"])
        return out


class QueryTransport:
    """A latency/bandwidth model for the *querier's* network.

    The simulator delivers retrieve responses instantly, but the paper's
    query-cost model (Figure 8) assumes each log segment is downloaded
    over a real link (10 Mbps in the paper). When a transport is
    configured, the microquery module sleeps ``transfer_seconds`` on the
    worker thread that fetched each response — which is what makes
    per-node view builds worth parallelizing: concurrent fetches overlap
    their download time exactly as concurrent TCP streams would.
    """

    def __init__(self, rtt_seconds=0.0, bandwidth_bytes_per_s=None):
        self.rtt_seconds = rtt_seconds
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s

    def transfer_seconds(self, nbytes):
        seconds = self.rtt_seconds
        if self.bandwidth_bytes_per_s:
            seconds += nbytes / self.bandwidth_bytes_per_s
        return seconds

    def __repr__(self):
        return (f"QueryTransport(rtt={self.rtt_seconds:g}s, "
                f"bw={self.bandwidth_bytes_per_s!r} B/s)")


class _Cadence:
    """One standing maintenance pass interleaved with simulation.

    ``at_quiescence`` selects the :meth:`Deployment.run` policy: a pass
    that is a no-op when nothing changed (delta replication, service
    pushes) fires at every quiescence, while a pass with per-invocation
    cost (GC checkpoints every node) fires only once its cadence instant
    has actually been crossed.
    """

    __slots__ = ("name", "interval", "callback", "next_t", "at_quiescence")

    def __init__(self, name, interval, callback, next_t, at_quiescence):
        self.name = name
        self.interval = interval
        self.callback = callback
        self.next_t = next_t
        self.at_quiescence = at_quiescence

    def __repr__(self):
        return (f"_Cadence({self.name!r}, every {self.interval:g}s, "
                f"next at {self.next_t:g})")


class Deployment:
    def __init__(self, seed=0, t_prop=0.05, delta_clock=0.01, key_bits=256,
                 t_batch=0.0, drop_wires_to=()):
        self.sim = Simulator(seed=seed, t_prop=t_prop,
                             delta_clock=delta_clock)
        self.ca = CertificateAuthority(key_bits=key_bits, seed=seed ^ 0xCA)
        self.key_bits = key_bits
        self.t_batch = t_batch
        self.maintainer = Maintainer()
        self.traffic = TrafficMeter()
        #: Optional :class:`QueryTransport` applied to querier-side log
        #: fetches (None = instantaneous, the historical behavior).
        self.query_transport = None
        self.nodes = {}
        self.app_factories = {}
        self._identities = {}
        self._drop_wires_to = set(drop_wires_to)  # simulate crashed nodes
        # Channels are FIFO per (src, dst), like the TCP sessions real
        # deployments use: a +τ and its later −τ must arrive in order or
        # the receiver's belief state is corrupted.
        self._channel_clock = {}
        # Standing cadences (see add_cadence): every periodic maintenance
        # pass — replication, GC, service pushes — registers here and is
        # interleaved with simulation by run()/run_until() under one
        # scheduler instead of per-feature interval loops.
        self._cadences = {}          # name -> _Cadence
        # Standing delta-replication policy (see enable_replication):
        # (interval_seconds, replication_factor) or None.
        self._replication = None
        # Checkpoint-GC state (see run_gc / enable_gc): registered
        # standing queriers whose verified heads are the low-water marks,
        # each node's latest signed floor advertisement, the GC meter,
        # and the standing policy (interval_seconds, checkpoint_first).
        self._queriers = []
        self.retention_floors = {}   # node -> RetentionFloor
        self.gc_meter = RetentionMeter()
        self._gc_policy = None

    # ------------------------------------------------------------- set-up

    def add_node(self, node_id, app_factory, node_cls=SNooPyNode,
                 native_sizer=None, t_batch=None, **node_kwargs):
        """Create a node running *app_factory(node_id)* as its primary
        system. *node_cls* selects a Byzantine variant if desired."""
        if node_id in self.nodes:
            raise ConfigurationError(f"duplicate node id {node_id!r}")
        identity = NodeIdentity(
            node_id, self.ca, key_bits=self.key_bits,
            seed=(hash(("node-key", node_id)) & 0x7FFFFFFF),
        )
        self._identities[node_id] = identity
        self.sim.register_clock(node_id)
        node = node_cls(
            node_id, app_factory(node_id), identity, self,
            t_batch=self.t_batch if t_batch is None else t_batch,
            native_sizer=native_sizer, **node_kwargs,
        )
        self.nodes[node_id] = node
        self.app_factories[node_id] = app_factory
        return node

    def node(self, node_id):
        return self.nodes[node_id]

    def public_key_of(self, node_id):
        return self._identities[node_id].keypair.public_only()

    def identity_of(self, node_id):
        return self._identities[node_id]

    def plausibility_window(self):
        """Δclock + Tprop, plus scheduling slack for batched transmission."""
        return self.sim.delta_clock + self.sim.t_prop + self.t_batch + 0.01

    def effective_t_prop(self):
        """The Tprop bound replay must assume: with Tbatch batching, an
        acknowledgment legitimately arrives up to Tbatch later (Section
        5.6 — 'the cost is an increase in message latency by up to
        Tbatch'), so the missing-ack deadline is 2·(Tprop + Tbatch/2)."""
        return self.sim.t_prop + self.t_batch / 2 + self.sim.delta_clock

    # ----------------------------------------------------------- transport

    def transmit_batch(self, sender, batch):
        """Deliver a WireBatch after a link delay, with traffic accounting."""
        self.traffic.record_batch(
            sender.node_id, [m for m, _i, _t in batch.msgs],
            native_sizer=sender.native_sizer,
        )
        if batch.dst in self._drop_wires_to or batch.dst not in self.nodes:
            return
        target = self.nodes[batch.dst]
        self._deliver_fifo(
            (batch.src, batch.dst), lambda: target.on_batch(batch)
        )

    def transmit_ack(self, sender, wire_ack):
        self.traffic.record_ack(sender.node_id)
        if wire_ack.dst in self._drop_wires_to or wire_ack.dst not in self.nodes:
            return
        target = self.nodes[wire_ack.dst]
        self._deliver_fifo(
            ("ack", wire_ack.src, wire_ack.dst),
            lambda: target.on_ack(wire_ack),
        )

    def _deliver_fifo(self, channel, callback):
        """Schedule a delivery that preserves per-channel ordering."""
        deliver_at = self.sim.now + self.sim.link_delay()
        last = self._channel_clock.get(channel, 0.0)
        if deliver_at <= last:
            deliver_at = last + 1e-6
        self._channel_clock[channel] = deliver_at
        self.sim.schedule_at(deliver_at, callback)

    def drop_wires_to(self, node_id):
        """Simulate a node that has stopped receiving (crash/partition)."""
        self._drop_wires_to.add(node_id)

    # ------------------------------------------------------------- running

    def add_cadence(self, name, interval_seconds, callback,
                    at_quiescence=False):
        """Install a standing maintenance cadence under the shared
        scheduler: *callback* (no arguments) runs every *interval_seconds*
        of simulated time, interleaved with event processing by
        :meth:`run_until` and fired at quiescence by :meth:`run`.

        With *at_quiescence*, :meth:`run` fires the callback at every
        quiescence regardless of the cadence instant — the right policy
        for passes that are no-ops when nothing changed (delta
        replication, service pushes): draining the queue fast-forwards
        past any number of cadence instants, and one pass at quiescence
        leaves the consumer exactly as fresh as ticking through them all
        would have. Without it, :meth:`run` fires only once the cadence
        instant has actually been crossed — the policy for passes with
        per-invocation cost, like GC (which checkpoints every node, so
        firing per run() call would grow each log by one CHK entry).

        Re-adding an existing *name* replaces its schedule. Ties in
        :meth:`run_until` fire in ``(instant, name)`` order, so cadence
        names double as a deterministic tie-break.
        """
        if interval_seconds <= 0:
            raise ConfigurationError(
                f"cadence interval must be positive, got "
                f"{interval_seconds!r}"
            )
        cadence = _Cadence(
            str(name), float(interval_seconds), callback,
            self.sim.now + float(interval_seconds), bool(at_quiescence),
        )
        self._cadences[cadence.name] = cadence
        return cadence

    def remove_cadence(self, name):
        """Uninstall a standing cadence (no-op when absent)."""
        self._cadences.pop(str(name), None)

    def cadence(self, name):
        """The installed :class:`_Cadence` for *name*, or ``None``."""
        return self._cadences.get(str(name))

    def run(self, max_events=None):
        steps = self.sim.run(max_events=max_events)
        due = [c for c in self._cadences.values()
               if c.at_quiescence or self.sim.now >= c.next_t]
        # At-quiescence passes first (historically replication preceded
        # GC at quiescence), then by name for determinism.
        due.sort(key=lambda c: (not c.at_quiescence, c.name))
        for cadence in due:
            cadence.callback()
            cadence.next_t = self.sim.now + cadence.interval
        return steps

    def run_until(self, t):
        while True:
            due = [(c.next_t, c.name, c)
                   for c in self._cadences.values() if c.next_t <= t]
            if not due:
                break
            at, _name, cadence = min(due, key=lambda item: item[:2])
            self.sim.run_until(at)
            cadence.callback()
            cadence.next_t += cadence.interval
        self.sim.run_until(t)

    def checkpoint_all(self):
        for node in self.nodes.values():
            node.checkpoint()

    # --------------------------------------------------------- aggregates

    def crypto_counter_totals(self):
        from repro.crypto.keys import CryptoCounter
        total = CryptoCounter()
        for identity in self._identities.values():
            total = total.merged_with(identity.counter)
        return total

    def _charge_replication(self, origin, response):
        """Meter one replication push: the shipped segment's committed
        bytes (plus head authenticator, added by the meter) charged to
        the origin — replicated log suffixes are real wire traffic, not
        free (the Figure-5-style replication overhead story)."""
        self.traffic.record_replication(
            origin, sum(e.size_bytes() for e in response.entries)
        )

    def replicate_logs(self, replication_factor=2):
        """Push each node's current log to its replica set (Section 5.8's
        suggested mitigation for destroyed provenance state). Replicas are
        the next *replication_factor* nodes in id order; Byzantine nodes
        may refuse to serve what they stored, which the paper's threat
        model allows — replication is best-effort."""
        names = sorted(self.nodes, key=str)
        for index, name in enumerate(names):
            response = self.nodes[name].retrieve()
            if response is None:
                continue
            for step in range(1, replication_factor + 1):
                replica = self.nodes[names[(index + step) % len(names)]]
                if replica.node_id != name:
                    self._charge_replication(name, response)
                    replica.accept_mirror(response)

    def replicate_deltas(self, replication_factor=2):
        """Re-push each node's log *suffix* to its replica set.

        The incremental counterpart of :meth:`replicate_logs`: a replica
        that already mirrors a prefix is asked only for the entries past
        its stored head (``retrieve(since_index=)``), spliced onto the
        stored copy; a replica with no copy yet gets the full log. Run on
        a cadence (see :meth:`enable_replication`) this keeps every
        replica set fresh, so ``find_mirror(since_index=)`` can serve
        view *refreshes* for an origin that has since crashed — not just
        cold builds of whatever stale copy an old full push left behind.

        When the origin's log was GC'd past the stored copy (it answers
        the delta request with a checkpoint-anchored fallback), the
        replica follows only *sanctioned* floors: if the fallback anchors
        exactly at the origin's unconvicted advertised floor, the stale
        copy is re-seeded from it; anything else (an unsanctioned or
        convicted truncation) leaves the stored — possibly fuller — copy
        in place, so a self-truncated origin cannot launder evidence out
        of its replicas by re-pushing.

        Byzantine nodes may refuse to serve or store; replication stays
        best-effort. Only pushes that actually store something are
        charged to the traffic meter and counted in the return value.
        """
        names = sorted(self.nodes, key=str)
        pushes = 0
        for index, name in enumerate(names):
            node = self.nodes[name]
            for step in range(1, replication_factor + 1):
                replica = self.nodes[names[(index + step) % len(names)]]
                if replica.node_id == name:
                    continue
                current = replica.mirror_of(name)
                if current is None:
                    response = node.retrieve()
                else:
                    stored_head = (current.start_index
                                   + len(current.entries) - 1)
                    response = node.retrieve(since_index=stored_head)
                    if response is not None and not response.entries:
                        continue  # nothing appended since the last push
                    if response is not None \
                            and response.start_index != stored_head + 1 \
                            and self._floor_sanctioned_at(
                                name, response.start_index - 1):
                        # GC'd past the stored copy, at a sanctioned
                        # floor: re-seed rather than freeze forever.
                        current = None
                if response is None:
                    continue
                merged = merge_mirror_responses(current, response)
                if merged is None:
                    continue  # nothing stored: no bytes moved
                self._charge_replication(name, response)
                replica.mirror_store[name] = merged
                pushes += 1
        return pushes

    def _floor_sanctioned_at(self, origin, anchor):
        """Whether *anchor* is exactly the unconvicted retention floor
        *origin* advertised — the only truncation depth honest replicas
        follow."""
        advert = self.retention_floors.get(origin)
        return (advert is not None
                and advert.floor_index == anchor
                and self.maintainer.retention_fault_of(origin) is None)

    def enable_replication(self, interval_seconds, replication_factor=2):
        """Install a standing delta-replication cadence.

        While enabled, :meth:`run_until` interleaves a
        :meth:`replicate_deltas` pass every *interval_seconds* of
        simulated time, and :meth:`run` (which drains the queue) performs
        one pass at quiescence — so a deployment that keeps running keeps
        its replica sets fresh without anyone calling replicate by hand.
        Implemented on the shared :meth:`add_cadence` scheduler, so it
        composes with GC and service-push cadences.
        """
        if interval_seconds <= 0:
            raise ConfigurationError(
                f"replication interval must be positive, got "
                f"{interval_seconds!r}"
            )
        self._replication = (float(interval_seconds), replication_factor)
        self.add_cadence(
            "replication", interval_seconds,
            lambda: self.replicate_deltas(self._replication[1]),
            at_quiescence=True,
        )
        return self._replication

    def disable_replication(self):
        self._replication = None
        self.remove_cadence("replication")

    # ------------------------------------------------------ checkpoint GC

    def register_querier(self, querier):
        """Register a standing auditor for the retention handshake: its
        per-node verified heads (``low_water_marks``) become low-water
        marks no GC pass may truncate above. Accepts a
        :class:`~repro.snp.query.QueryProcessor` or a
        :class:`~repro.snp.microquery.MicroQuerier`."""
        if not hasattr(querier, "low_water_marks"):
            raise ConfigurationError(
                "a standing querier must expose low_water_marks()"
            )
        if querier not in self._queriers:
            self._queriers.append(querier)
        return querier

    def unregister_querier(self, querier):
        """Remove a standing auditor (it no longer constrains retention)."""
        if querier in self._queriers:
            self._queriers.remove(querier)

    def collect_low_water_marks(self):
        """The querier half of the retention handshake: per node, the
        minimum verified head any live (registered) standing auditor
        holds. Nodes no auditor tracks are absent — they are
        unconstrained, free to truncate below their newest checkpoint."""
        marks = {}
        for querier in self._queriers:
            for node, head in querier.low_water_marks().items():
                current = marks.get(node)
                marks[node] = head if current is None else min(current, head)
        return marks

    def run_gc(self, checkpoint=True):
        """One retention-handshake pass: collect low-water marks, have
        each node advertise (and sign) its retention floor, convict
        floor-liars, truncate logs, and truncate mirror copies to the
        same sanctioned floors.

        With *checkpoint* (the default) every node records a fresh
        checkpoint first, so the *next* pass — once auditors have
        refreshed past it — always finds an eligible anchor; truncation
        itself only ever uses checkpoints at or below the current marks.

        A node whose signed advertisement exceeds a live auditor's head
        is recorded as a retention fault (the advertisement plus the
        auditor's signed head are the evidence) and its floor is not
        sanctioned: honest replicas keep their fuller mirror copies, and
        queriers treat the node as proven faulty. Returns the bytes
        reclaimed this pass.
        """
        from repro.snp.evidence import verify_retention_floor
        from repro.util.errors import AuthenticationError
        if checkpoint:
            self.checkpoint_all()
        marks = self.collect_low_water_marks()
        meter = self.gc_meter
        meter.gc_passes += 1
        reclaimed_before = meter.total_bytes_reclaimed()
        sanctioned = {}
        for name in sorted(self.nodes, key=str):
            node = self.nodes[name]
            mark = marks.get(name)
            advert = node.advertise_retention_floor(mark)
            if advert is None:
                continue
            try:
                verify_retention_floor(self.public_key_of(name), advert)
            except AuthenticationError:
                self.maintainer.record_retention_fault(
                    name, "retention-floor advertisement fails signature "
                    "verification", advert=advert, mark=mark,
                )
                continue
            self.retention_floors[name] = advert
            if mark is not None and advert.floor_index > mark:
                self.maintainer.record_retention_fault(
                    name,
                    f"advertised retention floor {advert.floor_index} is "
                    f"above a live auditor's verified head {mark}",
                    advert=advert, mark=mark,
                )
                # Unsanctioned: the Byzantine node may still truncate
                # itself below, but honest replicas keep their copies.
                continue
            sanctioned[name] = advert.floor_index
            discarded_before = node.log.discarded_entries
            meter.log_bytes_reclaimed += node.gc_truncate()
            meter.entries_discarded += \
                node.log.discarded_entries - discarded_before
        # Mirror copies participate in the same sanctioned floors.
        for holder in self.nodes.values():
            for origin, stored in list(holder.mirror_store.items()):
                floor = sanctioned.get(origin)
                if floor is None:
                    continue
                trimmed = truncate_response_below(stored, floor)
                if trimmed is not stored:
                    # Entries strictly below the pivot checkpoint; the
                    # pivot itself stays stored (as trimmed.checkpoint),
                    # so it is not reclaimed — mirroring what
                    # NodeLog.truncate_below counts.
                    dropped = stored.entries[:floor - stored.start_index]
                    meter.mirror_bytes_reclaimed += sum(
                        e.size_bytes() for e in dropped
                    )
                    holder.mirror_store[origin] = trimmed
        return meter.total_bytes_reclaimed() - reclaimed_before

    def enable_gc(self, interval_seconds, checkpoint=True):
        """Install a standing checkpoint-GC cadence, the retention
        counterpart of :meth:`enable_replication`: :meth:`run_until`
        interleaves a :meth:`run_gc` pass every *interval_seconds* of
        simulated time, and :meth:`run` performs one pass once its
        cadence instant has been crossed — so a deployment that keeps
        running keeps its logs bounded by what live auditors still
        anchor on. Implemented on the shared :meth:`add_cadence`
        scheduler (not ``at_quiescence``: a GC pass checkpoints every
        node, so firing per run() call would grow each log by one CHK
        entry per call)."""
        if interval_seconds <= 0:
            raise ConfigurationError(
                f"GC interval must be positive, got {interval_seconds!r}"
            )
        self._gc_policy = (float(interval_seconds), bool(checkpoint))
        self.add_cadence(
            "gc", interval_seconds,
            lambda: self.run_gc(checkpoint=self._gc_policy[1]),
        )
        return self._gc_policy

    def disable_gc(self):
        self._gc_policy = None
        self.remove_cadence("gc")

    def advertised_floor_of(self, node):
        """The node's sanctioned-or-not advertised floor index (0 when it
        never advertised) — what queriers hold truncation against."""
        advert = self.retention_floors.get(node)
        return advert.floor_index if advert is not None else 0

    def retention_fault_of(self, node):
        return self.maintainer.retention_fault_of(node)

    def find_mirror(self, origin, since_index=None):
        """Best (longest) mirror of *origin*'s log held by any node.

        With *since_index*, the stored copy is sliced to the suffix after
        that entry (delta retrieval served from a replica); ``None`` means
        no replica extends past the caller's verified head.
        """
        best = None
        for node in self.nodes.values():
            if node.node_id == origin:
                continue
            mirror = node.mirror_of(origin)
            if mirror is not None and (
                    best is None
                    or mirror.head_auth.index > best.head_auth.index):
                best = mirror
        if best is None or since_index is None:
            return best
        from repro.snp.snoopy import suffix_of_response
        return suffix_of_response(best, since_index)

    def set_query_transport(self, rtt_seconds=0.0, bandwidth_bytes_per_s=None):
        """Configure (or, with defaults, clear) the querier-side network
        model. Returns the :class:`QueryTransport` installed."""
        if rtt_seconds == 0.0 and not bandwidth_bytes_per_s:
            self.query_transport = None
        else:
            self.query_transport = QueryTransport(
                rtt_seconds, bandwidth_bytes_per_s
            )
        return self.query_transport

    def collect_authenticators_about(self, target):
        """Ask every node for authenticators signed by *target* — the
        querier side of the consistency check (Section 5.5)."""
        return self.collect_authenticators_about_since(target, None)[0]

    def collect_authenticators_about_since(self, target, cursor):
        """Cursored consistency-check collection.

        *cursor* maps peer id → how many of that peer's received
        authenticators about *target* were already scanned; only the
        entries past each peer's cursor are returned, so a standing
        querier's refresh cost is proportional to *new* evidence instead
        of every peer's entire history (a peer's ``received_auths`` list
        is append-only, making the count a stable cursor). Returns
        ``(auths, new_cursor)``; pass ``None`` (or ``{}``) to scan from
        the beginning.
        """
        cursor = dict(cursor) if cursor else {}
        out = []
        for node in self.nodes.values():
            if node.node_id == target:
                continue
            since = cursor.get(node.node_id, 0)
            fresh = node.authenticators_about(target, since=since)
            out.extend(fresh)
            cursor[node.node_id] = since + len(fresh)
        return out, cursor
