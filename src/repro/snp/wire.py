"""The wire layer: what may cross a process boundary, and how.

Process-pool view builds (see DESIGN.md, "Process-pool builds") split a
node's build into a *fetch* step on the coordinator and a *verify+replay*
step that may run in a worker process. Everything crossing that boundary
is governed by this module's serialization contract:

* **Value objects pickle through their constructors.** ``Tup`` and
  ``Msg`` memoize ``hash()`` of their fields at construction, and
  per-process hash randomization makes those values process-specific; an
  instance pickled whole would carry the *coordinator's* hash into a
  worker whose own constructions hash differently — equal keys landing in
  different dict buckets. Their ``__reduce__`` therefore rebuilds through
  ``__init__``, making every unpickled object native to the process using
  it. Bulk payloads (log segments, provenance graphs, machine snapshots)
  ride this contract at native pickle speed.
* **Unpicklable machinery gets an explicit wire form.** Application state
  machines close over compiled rules (guard lambdas) — they cross as
  *snapshots* plus a registry spec (see :mod:`repro.apps`) and are
  rebuilt lazily on the far side. Replay's retained GCA crosses as graph
  + bookkeeping + snapshots via :func:`replay_to_wire` /
  :func:`replay_from_wire`. Log entries drop the aux keys replay never
  reads (:func:`sanitize_response`), so a node-side object like a
  ``WireBatch`` can never drag hidden state across.
* **Specs and metadata go through the validating codec.**
  :func:`value_to_wire` / :func:`value_from_wire` encode nested plain
  data and registered value types as tagged builtins — anything else
  raises :class:`WireError` — and snapshot mutable inputs (e.g. a
  MapReduce content store) at encode time.

Wire-typed here: ``RetrieveResponse``/checkpoints, hash-chain material
(authenticators, chain hashes), ``ReplayResult`` + GCA, ``QueryStats``,
the :class:`BuildWork`/:class:`BuildContext` inputs of the compute step,
and the :class:`CompactOutcome` it hands back.

The compute step itself — :func:`compute_build` — also lives here: it is
a pure function of a work item and a context, mutating only objects the
work item owns, and is the *single* code path every executor (serial,
thread, wire-check, process) runs, which is what makes the bit-identical
equivalence argument structural rather than statistical.
"""

import time

from repro.crypto.rsa import RsaKeyPair
from repro.metrics import QueryStats
from repro.model import Ack, Msg, Tup
from repro.snp.evidence import Authenticator, RetentionFloor
from repro.snp.log import LogEntry, INS, DEL, SND, RCV, ACK, CHK
from repro.snp.replay import (
    ReplayResult, check_against_authenticator, extend_replay,
    replay_segment, verify_segment_hashes,
)
from repro.util.errors import (
    AuthenticationError, LogVerificationError, ReplayDivergence, ReproError,
)
from repro.util.serialization import canonical_bytes


class WireError(ReproError):
    """A value cannot be represented on (or decoded from) the wire."""


# ---------------------------------------------------------------- values

_PRIMITIVES = (bool, int, float, str, bytes)

_TUPLE_TAG = "W.t"
_LIST_TAG = "W.l"
_SET_TAG = "W.set"
_FROZENSET_TAG = "W.fset"
_DICT_TAG = "W.d"
_TUP_TAG = "W.tup"
_MSG_TAG = "W.msg"
_ACK_TAG = "W.ack"
_DER_TAG = "W.der"
_AUTH_TAG = "W.auth"
_FLOOR_TAG = "W.floor"


def value_to_wire(value):
    """Encode *value* (a nested structure of builtins and known value
    objects) as tagged plain builtins. Containers are tag-wrapped, so raw
    data that happens to look like a tag cannot be misread: every tuple in
    a wire form was produced by this encoder. Mutable containers are
    snapshotted by the encoding itself."""
    if value is None or isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, Tup):
        return (_TUP_TAG, value_to_wire(value.relation),
                value_to_wire(value.loc),
                tuple(value_to_wire(a) for a in value.args))
    if isinstance(value, Msg):
        return (_MSG_TAG, value.polarity, value_to_wire(value.tup),
                value_to_wire(value.src), value_to_wire(value.dst),
                value.seq, value.t_sent)
    if isinstance(value, Ack):
        return (_ACK_TAG, value_to_wire(value.src), value_to_wire(value.dst),
                tuple(value_to_wire(m) for m in value.msgs), value.t_sent)
    if isinstance(value, Authenticator):
        return (_AUTH_TAG, value_to_wire(value.node), value.index,
                value.timestamp, value.entry_hash, bytes(value.signature))
    if isinstance(value, RetentionFloor):
        return (_FLOOR_TAG, value_to_wire(value.node), value.floor_index,
                value.floor_time, bytes(value.signature))
    if isinstance(value, tuple):
        return (_TUPLE_TAG, tuple(value_to_wire(v) for v in value))
    if isinstance(value, list):
        return (_LIST_TAG, tuple(value_to_wire(v) for v in value))
    if isinstance(value, (set, frozenset)):
        tag = _FROZENSET_TAG if isinstance(value, frozenset) else _SET_TAG
        return (tag, tuple(sorted((value_to_wire(v) for v in value),
                                  key=repr)))
    if isinstance(value, dict):
        return (_DICT_TAG, tuple((value_to_wire(k), value_to_wire(v))
                                 for k, v in value.items()))
    # DerivationInstance lives in datalog snapshots; import lazily to keep
    # this module's import footprint small for spawned workers.
    from repro.datalog.store import DerivationInstance
    if isinstance(value, DerivationInstance):
        return (_DER_TAG, value.rule,
                tuple(value_to_wire(s) for s in value.support))
    raise WireError(
        f"cannot wire-encode a {type(value).__name__}: only plain data and "
        "registered value types may cross the process boundary"
    )


def value_from_wire(wire):
    """Rebuild the value :func:`value_to_wire` encoded, constructing every
    value object afresh in the current process."""
    if wire is None or isinstance(wire, _PRIMITIVES):
        return wire
    if isinstance(wire, tuple) and wire:
        tag = wire[0]
        if tag == _TUP_TAG:
            _t, relation, loc, args = wire
            return Tup(value_from_wire(relation), value_from_wire(loc),
                       *[value_from_wire(a) for a in args])
        if tag == _MSG_TAG:
            _t, polarity, tup, src, dst, seq, t_sent = wire
            return Msg(polarity, value_from_wire(tup), value_from_wire(src),
                       value_from_wire(dst), seq, t_sent)
        if tag == _ACK_TAG:
            _t, src, dst, msgs, t_sent = wire
            return Ack(value_from_wire(src), value_from_wire(dst),
                       [value_from_wire(m) for m in msgs], t_sent)
        if tag == _AUTH_TAG:
            _t, node, index, timestamp, entry_hash, signature = wire
            return Authenticator(value_from_wire(node), index, timestamp,
                                 entry_hash, signature)
        if tag == _FLOOR_TAG:
            _t, node, floor_index, floor_time, signature = wire
            return RetentionFloor(value_from_wire(node), floor_index,
                                  floor_time, signature)
        if tag == _TUPLE_TAG:
            return tuple(value_from_wire(v) for v in wire[1])
        if tag == _LIST_TAG:
            return [value_from_wire(v) for v in wire[1]]
        if tag == _SET_TAG:
            return {value_from_wire(v) for v in wire[1]}
        if tag == _FROZENSET_TAG:
            return frozenset(value_from_wire(v) for v in wire[1])
        if tag == _DICT_TAG:
            return {value_from_wire(k): value_from_wire(v)
                    for k, v in wire[1]}
        if tag == _DER_TAG:
            from repro.datalog.store import DerivationInstance
            _t, rule, support = wire
            return DerivationInstance(
                rule, tuple(value_from_wire(s) for s in support)
            )
    raise WireError(f"unrecognized wire form {wire!r}")


# ------------------------------------------------- log segments / evidence

#: Wire-relevant aux keys per entry type. ``aux`` is a simulation
#: convenience (parsed objects so the querier does not re-decode content);
#: anything not listed — e.g. the receiver-side ``batch`` an ack entry
#: remembers — stays home.
_AUX_KEYS = {
    INS: ("tup",), DEL: ("tup",), SND: ("msg",),
    RCV: ("msg", "batch_auth"), ACK: ("wire_ack",),
    CHK: ("snapshot", "extant", "believed"),
}


def sanitize_entry(entry):
    """The wire form of a log entry: the entry itself, with any aux key
    the audit path never reads stripped (a shallow copy is made only when
    something must go). Entries are value objects — content, hashes, and
    the parsed aux all pickle under the constructor-rebuilding contract.
    """
    keys = _AUX_KEYS.get(entry.entry_type, ())
    trimmed = {k: entry.aux[k] for k in keys if k in entry.aux}
    if len(trimmed) == len(entry.aux):
        return entry
    return LogEntry(entry.index, entry.timestamp, entry.entry_type,
                    entry.content, entry.content_hash, entry.entry_hash,
                    aux=trimmed)


def sanitize_response(response):
    """The wire form of a RetrieveResponse: itself, with entries
    sanitized. Only entries that carry non-wire aux (ack entries remember
    the sender-side ``WireBatch``) are copied."""
    from repro.snp.snoopy import RetrieveResponse
    entries = [sanitize_entry(e) for e in response.entries]
    checkpoint = (None if response.checkpoint is None
                  else sanitize_entry(response.checkpoint))
    if checkpoint is response.checkpoint and all(
            new is old for new, old in zip(entries, response.entries)):
        return response
    return RetrieveResponse(
        node=response.node, entries=entries,
        start_index=response.start_index, start_hash=response.start_hash,
        head_auth=response.head_auth, checkpoint=checkpoint,
        from_mirror=response.from_mirror,
    )


# ----------------------------------------------------------------- stats

def stats_to_wire(stats):
    return tuple(sorted(stats.as_dict().items()))


def stats_from_wire(wire):
    stats = QueryStats()
    for field, value in wire:
        setattr(stats, field, value)
    return stats


# --------------------------------------------------- replay (graph + GCA)

def _failure_to_wire(failure):
    if failure is None:
        return None
    if isinstance(failure, ReplayDivergence):
        return ("divergence", value_to_wire(failure.node), failure.detail)
    return ("error", str(failure))


def _failure_from_wire(wire):
    if wire is None:
        return None
    if wire[0] == "divergence":
        return ReplayDivergence(value_from_wire(wire[1]), wire[2])
    return ReproError(wire[1])


def replay_to_wire(result):
    """Encode a ReplayResult with its retained GCA.

    The graph and the four bookkeeping tables are picklable object
    payloads (pickle's own memo preserves the vertex sharing between
    them); the per-node *machines* are not — they close over compiled
    rules — so they cross as logical snapshots, restored lazily by the
    receiving side's factory on first use. The response is not encoded;
    the coordinator reattaches its own copy.
    """
    gca = result.gca
    if gca is None:
        raise WireError(
            f"replay result for {result.node!r} does not retain its GCA; "
            "cannot cross the process boundary"
        )
    snapshots = dict(gca.machine_snapshots)  # still-unrestored machines
    for node, machine in gca.machines.items():
        snapshots[node] = machine.snapshot()
    return ("W.replay", result.node, gca.graph, dict(gca._pending),
            {n: dict(t) for n, t in gca._ackpend.items()},
            {n: dict(t) for n, t in gca._unacked.items()},
            set(gca._nopreds), snapshots,
            frozenset(gca.known_alarm_msg_ids), gca.t_prop,
            result.events_replayed, result.replay_seconds,
            _failure_to_wire(result.failure))


def replay_from_wire(wire, machine_factory):
    """Rebuild a live, *extendable* ReplayResult from its wire form.

    *machine_factory* is the node's registered application factory; the
    machine snapshots are handed to the GCA for lazy restore (replay only
    ever drives the replayed node's own machine, so one factory covers
    the table — and a view that is never extended never pays the restore).
    The result's ``response`` is left None for the caller to reattach.
    """
    from repro.provgraph.gca import GraphConstructor
    (_tag, node, graph, pending, ackpend, unacked, nopreds, snapshots,
     alarms, t_prop, events_replayed, replay_seconds, failure) = wire
    gca = GraphConstructor(machine_factory, t_prop=t_prop)
    gca.graph = graph
    gca._pending = pending
    gca._ackpend = ackpend
    gca._unacked = unacked
    gca._nopreds = nopreds
    gca.machine_snapshots = dict(snapshots)
    gca.known_alarm_msg_ids = alarms
    return ReplayResult(
        node=node, graph=gca.graph, machine=None,
        events_replayed=events_replayed, replay_seconds=replay_seconds,
        hashes=None, response=None,
        failure=_failure_from_wire(failure), gca=gca,
    )


class LazyReplay:
    """A worker-produced replay held as its pickled wire blob.

    Decoding a replayed graph is coordinator-side (GIL-serialized) work,
    and a standing auditor's queries touch only a fraction of its views —
    so the coordinator defers the decode until something actually reads
    the view (a microquery resolving into it, or an in-process extend).
    A refresh that ships the view back to a worker does not decode at
    all: the blob crosses the boundary verbatim and the *worker* pays the
    decode, in parallel.
    """

    __slots__ = ("blob", "machine_factory", "response", "_result")

    def __init__(self, blob, machine_factory, response=None):
        self.blob = blob
        self.machine_factory = machine_factory
        self.response = response
        self._result = None

    @property
    def materialized(self):
        return self._result is not None

    def materialize(self):
        if self._result is None:
            import pickle
            result = replay_from_wire(pickle.loads(self.blob),
                                      self.machine_factory)
            result.response = self.response
            self._result = result
        return self._result

    @property
    def graph(self):
        return self.materialize().graph


def replay_handle_to_wire(replay):
    """The boundary-crossing form of a replay handle: a LazyReplay's blob
    passes through untouched (the coordinator never decoded it); a
    ResidentReplay crosses as just its cache key (node affinity routes the
    work to the worker that owns the state); a live ReplayResult is
    encoded."""
    if isinstance(replay, LazyReplay):
        return ("W.replayblob", replay.blob)
    if isinstance(replay, ResidentReplay):
        return ("W.residentref", replay.head_index, replay.head_hash)
    return replay_to_wire(replay)


def replay_handle_from_wire(wire, machine_factory):
    if wire[0] == "W.replayblob":
        import pickle
        return replay_from_wire(pickle.loads(wire[1]), machine_factory)
    if wire[0] == "W.residentref":
        return _ResidentRef(wire[1], wire[2])
    return replay_from_wire(wire, machine_factory)


# ------------------------------------------------- shared-memory transport

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - py < 3.8
    _shared_memory = None

#: Payloads below this size ship inline through the pool's own pickle
#: pipe; the fixed cost of creating + attaching a shm segment only pays
#: off for bulk payloads (provenance graph snapshots, long log segments).
SHM_MIN_BYTES = 32 * 1024


def _shm_untrack(shm):
    """Drop *shm* from this process's resource tracker.

    Creating *and* attaching both register a segment with the per-process
    resource tracker, which warns about (and unlinks) everything still
    registered at interpreter exit. Our protocol instead unlinks each
    segment explicitly, exactly once, by whichever side owns the read —
    so every helper here balances its registration out immediately.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def shm_publish(data):
    """Create a shared-memory segment holding *data*; returns its name.
    Untracked: destruction is the explicit protocol's job, not the
    resource tracker's."""
    shm = _shared_memory.SharedMemory(create=True, size=max(1, len(data)))
    shm.buf[:len(data)] = data
    shm.close()
    _shm_untrack(shm)
    return shm.name


def shm_read(name, size, unlink=False):
    """Read *size* bytes from segment *name*; with ``unlink=True`` the
    reader owns the segment and destroys it after the read."""
    shm = _shared_memory.SharedMemory(name=name)
    try:
        data = bytes(shm.buf[:size])
    finally:
        shm.close()
        if unlink:
            try:
                shm.unlink()  # also unregisters from the tracker
            except FileNotFoundError:
                _shm_untrack(shm)
        else:
            _shm_untrack(shm)
    return data


class ShmArena:
    """Coordinator-side ref-counted registry of published shm segments.

    ``publish`` creates a segment for one payload and records one
    reference; ``retain``/``release`` adjust the count, and the segment is
    unlinked when it drops to zero (normally: after the consuming worker's
    future resolved). ``close`` unlinks everything still live — builds
    that died between submit and collect must not leak segments past the
    executor's lifetime.
    """

    def __init__(self):
        import threading
        self._lock = threading.Lock()
        self._refs = {}          # name -> refcount
        self.bytes_published = 0

    @property
    def available(self):
        return _shared_memory is not None

    def publish(self, data):
        name = shm_publish(data)
        with self._lock:
            self._refs[name] = 1
            self.bytes_published += len(data)
        return name

    def retain(self, name):
        with self._lock:
            self._refs[name] += 1

    def release(self, name):
        with self._lock:
            count = self._refs.get(name)
            if count is None:
                return
            if count > 1:
                self._refs[name] = count - 1
                return
            del self._refs[name]
        self._destroy(name)

    def close(self):
        with self._lock:
            names = list(self._refs)
            self._refs.clear()
        for name in names:
            self._destroy(name)

    @staticmethod
    def _destroy(name):
        try:
            shm = _shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        shm.close()
        try:
            shm.unlink()  # also unregisters from the tracker
        except FileNotFoundError:
            _shm_untrack(shm)


def ship_payload(data, arena):
    """Coordinator → worker: wrap pre-pickled *data* for submission.

    Bulk payloads go through the arena (the pool's pipe then carries only
    the segment name); small ones ride the pipe inline. Returns
    ``(payload, shm_name, shm_bytes)`` — *shm_name* (or None) is what the
    caller must release after the worker's future resolves.
    """
    if arena is not None and arena.available and len(data) >= SHM_MIN_BYTES:
        name = arena.publish(data)
        return ("W.shmref", name, len(data)), name, len(data)
    return ("W.blob", data), None, 0


def _load_shipped(payload):
    """Worker side: decode a :func:`ship_payload` payload to bytes."""
    tag = payload[0]
    if tag == "W.shmref":
        return shm_read(payload[1], payload[2], unlink=False)
    if tag == "W.blob":
        return payload[1]
    raise WireError(f"unrecognized shipped payload {tag!r}")


def _ship_result(data):
    """Worker → coordinator: wrap pre-pickled result bytes.

    The worker creates (and immediately untracks) the segment; the
    coordinator reads it once with ``unlink=True`` — worker-owned
    segments are single-shot, so no refcounting is needed."""
    if _shared_memory is not None and len(data) >= SHM_MIN_BYTES:
        # The creating worker never unlinks: ownership passes to the
        # coordinator with the name.
        return ("W.shmblob", shm_publish(data), len(data))
    return ("W.resultblob", data)


def collect_result(shipped):
    """Coordinator side: decode a :func:`_ship_result` payload.

    Returns ``(data, shm_bytes)`` where *shm_bytes* is how much of it
    crossed through shared memory (for ``QueryStats.shm_bytes``)."""
    tag = shipped[0]
    if tag == "W.shmblob":
        return shm_read(shipped[1], shipped[2], unlink=True), shipped[2]
    if tag == "W.resultblob":
        return shipped[1], 0
    raise WireError(f"unrecognized result payload {tag!r}")


# ----------------------------------------------------- resident view plane

class ResidentViewLost(ReproError):
    """A worker-resident view is gone (worker died, entry evicted, or the
    resident head moved) — the caller must fall back to a cold build."""


class _ResidentRef:
    """Worker-side marker for a base replay that should be resolved from
    the worker's own resident cache (decoded from ``W.residentref``)."""

    __slots__ = ("head_index", "head_hash")

    def __init__(self, head_index, head_hash):
        self.head_index = head_index
        self.head_hash = head_hash


class ResidentReplay:
    """Coordinator-side handle for a replay owned by a worker process.

    Where :class:`LazyReplay` holds the *bytes* of a worker-built replay,
    this holds only its cache key — ``(node, head_index, head_hash)`` —
    and reaches the live state through the executor's affinity-routed
    resident ops. Graph reads (``query``) run *in the owning worker* and
    return cloned value vertices, so the coordinator never pays the
    decode; ``materialize`` pulls the full blob over (shared memory for
    bulk) only when in-process state is genuinely needed. Every op can
    raise :class:`ResidentViewLost`, the explicit invalidation signal the
    querier answers with a bit-identical cold rebuild.
    """

    __slots__ = ("executor", "node", "head_index", "head_hash",
                 "machine_factory", "response", "_result", "_ops")

    def __init__(self, executor, node, head_index, head_hash,
                 machine_factory=None, response=None):
        self.executor = executor
        self.node = node
        self.head_index = head_index
        self.head_hash = head_hash
        self.machine_factory = machine_factory
        self.response = response
        self._result = None
        self._ops = {}

    @property
    def materialized(self):
        return self._result is not None

    def query(self, op, payload=None, stats=None):
        """Run a read-only graph op in the owning worker (memoized per
        handle — a handle is specific to one verified head, so results
        can never go stale under it)."""
        key = (op, payload)
        try:
            if key in self._ops:
                return self._ops[key]
        except TypeError:
            key = None
        value = self.executor.resident_op(
            self.node, self.head_index, self.head_hash, op, payload,
            stats=stats,
        )
        if key is not None:
            self._ops[key] = value
        return value

    def materialize(self, stats=None):
        """Pull the resident replay's full state into this process."""
        if self._result is None:
            import pickle
            blob = self.executor.resident_op(
                self.node, self.head_index, self.head_hash, "blob", None,
                stats=stats,
            )
            result = replay_from_wire(pickle.loads(blob),
                                      self.machine_factory)
            result.response = self.response
            self._result = result
        return self._result

    @property
    def graph(self):
        return self.materialize().graph

    def invalidate(self):
        """Drop the worker-side entry (fork conviction, GC floor,
        explicit invalidate). Best-effort: a dead worker already lost
        the entry."""
        self._ops = {}
        evict = getattr(self.executor, "evict_resident", None)
        if evict is None:
            return False
        return evict(self.node)


# ----------------------------------------------------------- build context

class BuildContext:
    """The one-time per-pool context of the verify+replay step.

    Everything the compute step may consult beyond its work item: the
    querier's public-key table, the embedded-signature flag, and the
    deployment's Tprop bound for replay. Factories are *not* part of the
    context — a work item carries either a live factory (in-process
    executors) or a registry spec (process pool, resolved per work item so
    e.g. a refreshed content store is never stale).
    """

    __slots__ = ("public_keys", "verify_embedded_signatures", "t_prop",
                 "_factory_cache")

    def __init__(self, public_keys, verify_embedded_signatures=True,
                 t_prop=1.0):
        self.public_keys = public_keys
        self.verify_embedded_signatures = verify_embedded_signatures
        self.t_prop = t_prop
        self._factory_cache = {}

    def to_wire(self):
        keys = tuple(sorted(
            ((value_to_wire(node), key.n, key.e)
             for node, key in self.public_keys.items()),
            key=repr,
        ))
        return ("W.ctx", keys, bool(self.verify_embedded_signatures),
                self.t_prop)

    @classmethod
    def from_wire(cls, wire):
        _tag, keys, verify_embedded, t_prop = wire
        return cls(
            {value_from_wire(node): RsaKeyPair(n, e) for node, n, e in keys},
            verify_embedded_signatures=verify_embedded, t_prop=t_prop,
        )

    def factory_for(self, node, app_spec):
        """Resolve a registry spec to a factory (cached per spec)."""
        if app_spec is None:
            raise WireError(
                f"no application spec for node {node!r}; register its "
                "factory (repro.apps.AppFactory) to build views in a "
                "process pool"
            )
        try:
            cached = self._factory_cache.get(app_spec)
        except TypeError:  # unhashable spec — resolve uncached
            cached = None
        if cached is not None:
            return cached
        from repro.apps import factory_from_spec
        factory = factory_from_spec(app_spec)
        try:
            self._factory_cache[app_spec] = factory
        except TypeError:
            pass
        return factory


# --------------------------------------------------------------- the work

class BuildWork:
    """One node's verify+replay inputs, assembled by the fetch step.

    Owns every mutable object it references (the response, the base
    replay) for the duration of the compute step. ``known`` is the
    node's checked-authenticator memo snapshot; ``held`` the frozen
    evidence-store prefix; ``pending`` the skipped authenticators awaiting
    a wider segment; ``consistency`` the evidence collected from peers
    (None when the consistency check is disabled); ``alarms`` the
    maintainer's known-missing-ack message ids. For extends, ``head_index``
    / ``head_hash`` anchor the suffix and ``base_replay`` is the retained
    replay to advance. ``factory`` is the live application factory;
    ``app_spec`` its registry form (resolved on the far side of a process
    boundary). ``floor`` is the node's advertised retention floor (0 =
    never advertised): evidence below it is tombstoned (permanently
    uncheckable — the prefix is GC'd) instead of left pending, and with
    ``floor_strict`` (a full build that asked for the untruncated log) a
    direct response anchored *above* the floor convicts the node of
    over-truncation.
    """

    __slots__ = ("node", "kind", "response", "known", "held", "pending",
                 "consistency", "alarms", "head_index", "head_hash",
                 "base_replay", "factory", "app_spec", "spec_cache",
                 "floor", "floor_strict")

    def __init__(self, node, kind, response, known=frozenset(), held=(),
                 pending=(), consistency=None, alarms=frozenset(),
                 head_index=0, head_hash=None, base_replay=None,
                 factory=None, app_spec=None, spec_cache=None,
                 floor=0, floor_strict=False):
        self.floor = floor
        self.floor_strict = floor_strict
        self.node = node
        self.kind = kind
        self.response = response
        self.known = known
        self.held = tuple(held)
        self.pending = tuple(pending)
        self.consistency = consistency
        self.alarms = alarms
        self.head_index = head_index
        self.head_hash = head_hash
        self.base_replay = base_replay
        self.factory = factory
        self.app_spec = app_spec
        #: Batch-scoped memo of factory → encoded spec (the deployment is
        #: quiescent during a batch, so one snapshot of e.g. a MapReduce
        #: content store serves every node sharing the factory).
        self.spec_cache = spec_cache

    def resolve_factory(self, context):
        if self.factory is not None:
            return self.factory
        return context.factory_for(self.node, self.app_spec)

    def to_wire(self):
        app_spec = self.app_spec
        if app_spec is None and self.factory is not None:
            cache = self.spec_cache
            if cache is not None:
                app_spec = cache.get(id(self.factory))
        if app_spec is None and self.factory is not None:
            wire_spec = getattr(self.factory, "wire_spec", None)
            if wire_spec is None:
                raise WireError(
                    f"the application factory for node {self.node!r} is "
                    "not registry-backed; hand Deployment.add_node a "
                    "repro.apps.AppFactory (or register_app) to build "
                    "views in a process pool"
                )
            app_spec = wire_spec()
            if self.spec_cache is not None:
                self.spec_cache[id(self.factory)] = app_spec
        return ("W.work", self.node, self.kind,
                sanitize_response(self.response),
                frozenset(self.known), tuple(self.held),
                tuple(self.pending),
                None if self.consistency is None
                else tuple(self.consistency),
                frozenset(self.alarms),
                self.head_index, self.head_hash,
                None if self.base_replay is None
                else replay_handle_to_wire(self.base_replay),
                app_spec, self.floor, self.floor_strict)

    @classmethod
    def from_wire(cls, wire, context):
        (_tag, node, kind, response, known, held, pending, consistency,
         alarms, head_index, head_hash, base_replay, app_spec,
         floor, floor_strict) = wire
        work = cls(
            node, kind, response, known=known, held=held, pending=pending,
            consistency=consistency, alarms=alarms,
            head_index=head_index, head_hash=head_hash, app_spec=app_spec,
            floor=floor, floor_strict=floor_strict,
        )
        if base_replay is not None:
            work.base_replay = replay_handle_from_wire(
                base_replay, work.resolve_factory(context)
            )
        return work


# ------------------------------------------------------------ the outcome

class CompactOutcome:
    """What the verify+replay step hands back across the worker boundary.

    Replaces the old in-process ``_BuildOutcome`` as the executor-facing
    result: a status (``ok`` / ``verify-failed`` / ``replay-failed``) plus
    only value data — recomputed chain hashes, the checked / recovered /
    newly-skipped authenticator evidence, per-task QueryStats, and the
    (possibly extended) replay. The coordinator's finalize step interprets
    it identically whether it was produced in-process or decoded from a
    worker.
    """

    __slots__ = ("node", "kind", "status", "reason", "hashes", "checked",
                 "recovered", "skipped", "tombstoned", "stats",
                 "replay_result", "replay_ran", "resident_head")

    OK = "ok"
    VERIFY_FAILED = "verify-failed"
    REPLAY_FAILED = "replay-failed"
    #: Resident executors only: the work referenced a worker-resident base
    #: replay the worker no longer holds (evicted, respawned, or at a
    #: different head). The coordinator falls back to a cold build.
    CACHE_MISS = "cache-miss"

    def __init__(self, node, kind):
        self.node = node
        self.kind = kind
        self.status = self.OK
        self.reason = None
        self.hashes = None
        self.checked = {}
        self.recovered = []
        self.skipped = []
        # Pending-skip signatures proven permanently uncheckable: they
        # fall below the node's advertised retention floor, whose prefix
        # GC discarded — the registry drains them (see microquery).
        self.tombstoned = []
        self.stats = None
        self.replay_result = None
        #: Whether replay advanced over suffix entries — for extends this
        #: means the base replay is no longer at its committed head, so a
        #: view kept on a failure path must not stay extendable.
        self.replay_ran = False
        #: Resident executors: ``(head_index, head_hash)`` of the replay
        #: now held in the worker's resident cache. Set instead of
        #: shipping the replay blob — the coordinator wraps it in a
        #: :class:`ResidentReplay` handle.
        self.resident_head = None

    def to_wire(self):
        replay_blob = None
        if self.replay_result is not None:
            # Pre-pickled in the worker so the coordinator's (single,
            # GIL-bound) result thread only has to move bytes; the
            # decode is deferred until a query touches the view.
            import pickle
            replay_blob = pickle.dumps(
                replay_handle_to_wire(self.replay_result)
            )
        return ("W.outcome", self.node, self.kind, self.status, self.reason,
                None if self.hashes is None else tuple(self.hashes),
                tuple(sorted(self.checked.items())), tuple(self.recovered),
                tuple(self.skipped), tuple(self.tombstoned),
                stats_to_wire(self.stats), replay_blob, self.replay_ran,
                self.resident_head)

    @classmethod
    def from_wire(cls, wire, machine_factory):
        (_tag, node, kind, status, reason, hashes, checked, recovered,
         skipped, tombstoned, stats, replay_blob, replay_ran,
         resident_head) = wire
        outcome = cls(node, kind)
        outcome.status = status
        outcome.reason = reason
        outcome.hashes = None if hashes is None else list(hashes)
        outcome.checked = dict(checked)
        outcome.recovered = list(recovered)
        outcome.skipped = list(skipped)
        outcome.tombstoned = list(tombstoned)
        outcome.stats = stats_from_wire(stats)
        if replay_blob is not None:
            outcome.replay_result = LazyReplay(replay_blob, machine_factory)
        outcome.replay_ran = replay_ran
        outcome.resident_head = resident_head
        return outcome


# ------------------------------------------------------- the compute step

def verify_auth(public_key, auth, stats):
    """Signature check with accounting (Figure 8's verification cost)."""
    stats.signatures_verified += 1
    if not public_key.verify(canonical_bytes(auth.payload()),
                             auth.signature):
        raise AuthenticationError(
            f"authenticator from {auth.node!r} has an invalid signature"
        )


def note_checked(checked, response, auth):
    """Memoize an authenticator that was actually compared against the
    verified chain (not one merely skipped as pre-anchor): a later refresh
    extends the same chain, so the comparison stays valid. Notes land in
    the outcome-local dict (signature → entry index, so the querier can
    later evict memos that fell below a verified head) and are committed
    to the querier's memo only when the view finalizes ``ok``."""
    first = response.start_index
    last = first + len(response.entries) - 1
    if first - 1 <= auth.index <= last:
        checked[bytes(auth.signature)] = auth.index


def verify_checkpoint(node_id, chk_entry):
    """Verify the checkpoint's tuple lists against the Merkle roots
    committed in the log entry (Section 7.7: the Quagga-Disappear query
    spends most of its time 'verifying partial checkpoints using a Merkle
    Hash Tree'). A mismatch means the node's replay seed does not match
    what it committed to — proof of tampering."""
    from repro.crypto.merkle import MerkleTree
    _tag, local_root, belief_root, n_local, n_believed = chk_entry.content
    extant = chk_entry.aux.get("extant", [])
    believed = chk_entry.aux.get("believed", [])
    if len(extant) != n_local or len(believed) != n_believed:
        raise LogVerificationError(
            node_id, "checkpoint tuple counts do not match commitment"
        )
    local_tree = MerkleTree(
        [(tup.canonical(), appeared) for tup, appeared in extant]
    )
    belief_tree = MerkleTree(
        [(tup.canonical(), peer, appeared)
         for tup, peer, appeared in believed]
    )
    if local_tree.root() != local_root \
            or belief_tree.root() != belief_root:
        raise LogVerificationError(
            node_id, "checkpoint contents fail Merkle verification"
        )


def _verify_embedded(node_id, response, context, stats):
    for entry in response.entries:
        if entry.entry_type == RCV:
            auth = entry.aux.get("batch_auth")
            if auth is None:
                raise LogVerificationError(
                    node_id, f"rcv entry {entry.index} lacks evidence"
                )
            verify_auth(context.public_keys[auth.node], auth, stats)
        elif entry.entry_type == ACK:
            wire_ack = entry.aux.get("wire_ack")
            if wire_ack is None:
                raise LogVerificationError(
                    node_id, f"ack entry {entry.index} lacks evidence"
                )
            verify_auth(context.public_keys[wire_ack.src], wire_ack.auth,
                        stats)


def _verify_response(work, context, stats, outcome):
    """The node-local checks that can *prove* the node faulty.

    1. The fresh head authenticator must be validly signed and match the
       recomputed hash chain.
    2. Every evidence authenticator the querier already held for this node
       (the frozen store prefix in ``work.held``) must lie on the returned
       chain; evidence already verified on this same chain (``work.known``
       ∪ checked-this-pass) is neither re-verified nor re-counted.
    3. Pending skipped authenticators (below an earlier partial-segment
       anchor) are retroactively checked when this segment reaches far
       enough back; recovered ones are reported so the registry drains.
    4. Embedded authenticators in rcv/ack entries must carry valid
       signatures from their claimed signers.
    5. Consistency check (Section 5.5): evidence peers hold about this
       node must lie on the same chain; new below-anchor skips are
       reported for the pending registry — except those below the node's
       advertised retention floor *and* the segment anchor, which are
       tombstoned (the prefix is GC'd; no future segment can ever check
       them).
    6. An attached checkpoint must *anchor* the returned segment
       (``checkpoint.index + 1 == start_index`` and ``start_hash`` equal
       to the checkpoint's own chain hash) — otherwise the responder is
       pairing a stale snapshot with a different suffix, which would
       silently corrupt checkpoint-seeded replay.
    7. Retention coverage: a full build that asked for the untruncated
       log but got a direct response anchored *above* the node's signed
       retention floor proves the node truncated below what it
       advertised.

    Returns the recomputed chain hashes aligned with the entries.
    """
    node_id = work.node
    response = work.response
    public_key = context.public_keys[node_id]
    if response.checkpoint is not None:
        chk = response.checkpoint
        if chk.index + 1 != response.start_index \
                or chk.entry_hash != response.start_hash:
            raise LogVerificationError(
                node_id,
                f"attached checkpoint (entry {chk.index}) does not anchor "
                f"the returned segment starting at {response.start_index} "
                "— the replay seed and the suffix belong to different "
                "prefixes",
            )
    if work.floor and work.floor_strict and work.kind == "built" \
            and not response.from_mirror:
        # The anchor claim is start_index - 1; a lie about it cannot
        # evade conviction: the chain recomputation from the claimed
        # start_hash up to the *signed* head authenticator fails unless
        # the anchor is genuine.
        anchor = response.start_index - 1
        if anchor > work.floor:
            raise LogVerificationError(
                node_id,
                f"log served from entry {anchor + 1} cannot anchor at the "
                f"advertised retention floor {work.floor} — the node "
                "truncated below what it signed (retention violation)",
            )
    verify_auth(public_key, response.head_auth, stats)
    hashes = verify_segment_hashes(response)
    check_against_authenticator(response, hashes, response.head_auth, stats)
    for auth in work.held:
        sig = bytes(auth.signature)
        if sig in work.known or sig in outcome.checked:
            continue
        check_against_authenticator(response, hashes, auth, stats)
        note_checked(outcome.checked, response, auth)
    first = response.start_index
    for auth in work.pending:
        sig = bytes(auth.signature)
        if sig in work.known or sig in outcome.checked:
            outcome.recovered.append(sig)  # verified on this chain already
            continue
        if auth.index < first - 1:
            # Below this segment's anchor: the response in hand cannot
            # check it. Below the node's signed retention floor too, no
            # *future* segment ever will — drain the registry entry (the
            # coverage loss stays visible); otherwise it stays pending.
            if work.floor and auth.index < work.floor:
                stats.auth_checks_tombstoned += 1
                outcome.tombstoned.append(sig)
            continue
        check_against_authenticator(response, hashes, auth, stats)
        stats.auth_checks_recovered += 1
        outcome.recovered.append(sig)
        note_checked(outcome.checked, response, auth)
    if response.checkpoint is not None:
        verify_checkpoint(node_id, response.checkpoint)
    if context.verify_embedded_signatures:
        _verify_embedded(node_id, response, context, stats)
    if work.consistency is not None:
        def on_skip(auth):
            if work.floor and auth.index < work.floor:
                # Below the GC'd prefix: never checkable by any later
                # build — tombstone instead of pending forever.
                stats.auth_checks_tombstoned += 1
                return
            outcome.skipped.append(auth)
        for auth in work.consistency:
            sig = bytes(auth.signature)
            if sig in work.known or sig in outcome.checked:
                continue  # verified on this same chain in an earlier pass
            try:
                verify_auth(public_key, auth, stats)
            except AuthenticationError:
                continue  # not actually signed by node_id; ignore
            check_against_authenticator(response, hashes, auth, stats,
                                        on_skip=on_skip)
            note_checked(outcome.checked, response, auth)
    return hashes


def compute_build(work, context):
    """The verify+replay step: a pure function of (work, context).

    Mutates only objects the work item owns (for extends, the base
    replay). Every executor — serial, threaded, wire-check, process —
    funnels through this one function, so scheduling can never change
    what is computed. Expected fault conditions become a status on the
    returned :class:`CompactOutcome`; only genuinely unexpected errors
    propagate.
    """
    stats = QueryStats()
    outcome = CompactOutcome(work.node, work.kind)
    outcome.stats = stats
    response = work.response
    started = time.perf_counter()
    try:
        if work.kind == "extended" \
                and response.start_hash != work.head_hash:
            raise LogVerificationError(
                work.node,
                f"suffix after entry {work.head_index} does not "
                "continue the verified chain (fork after cached head)",
            )
        outcome.hashes = _verify_response(work, context, stats, outcome)
    except (LogVerificationError, AuthenticationError) as exc:
        stats.auth_check_seconds += time.perf_counter() - started
        outcome.status = CompactOutcome.VERIFY_FAILED
        outcome.reason = str(exc)
        return outcome
    stats.auth_check_seconds += time.perf_counter() - started

    if work.kind == "extended":
        if not response.entries:
            # Nothing appended; the fresh head authenticator was checked
            # against the cached head hash above, confirming no fork.
            return outcome
        outcome.replay_ran = True
        if not isinstance(work.base_replay, ReplayResult):
            # A replay *handle* (a lazily-held blob, or a resident-cache
            # handle): materialize, then extend in place — exactly the
            # serial semantics.
            work.base_replay = work.base_replay.materialize()
        _processed, _elapsed, failure = extend_replay(
            work.node, work.base_replay, response,
            known_alarm_msg_ids=work.alarms, stats=stats,
        )
        outcome.replay_result = work.base_replay
        if failure is not None:
            outcome.status = CompactOutcome.REPLAY_FAILED
            outcome.reason = str(failure)
        return outcome

    outcome.replay_ran = True
    result = replay_segment(
        work.node, response, work.resolve_factory(context),
        t_prop=context.t_prop, known_alarm_msg_ids=work.alarms, stats=stats,
    )
    outcome.replay_result = result
    if not result.ok:
        outcome.status = CompactOutcome.REPLAY_FAILED
        outcome.reason = str(result.failure)
    return outcome


# ------------------------------------------------------- process-pool side

_POOL_CONTEXT = None
#: Resident pools only: this worker's view cache, an LRU-ordered
#: ``{node: _ResidentEntry}``. ``None`` in blob-shipping pools.
_RESIDENT = None
_RESIDENT_CAP = None


def init_worker_process(context_wire, resident=False, resident_cap=None):
    """Per-pool initializer: decode the one-time context once per worker.
    *resident* turns on the worker-owned view cache (bounded to
    *resident_cap* entries, LRU; None = unbounded)."""
    global _POOL_CONTEXT, _RESIDENT, _RESIDENT_CAP
    _POOL_CONTEXT = BuildContext.from_wire(context_wire)
    if resident:
        from collections import OrderedDict
        _RESIDENT = OrderedDict()
        _RESIDENT_CAP = resident_cap


def compute_build_wire(work_wire):
    """The function a blob-shipping process pool runs: wire in, wire out."""
    if _POOL_CONTEXT is None:
        raise WireError("worker process was not initialized with a context")
    work = BuildWork.from_wire(work_wire, _POOL_CONTEXT)
    return compute_build(work, _POOL_CONTEXT).to_wire()


def warm_worker(seconds):
    """A placeholder task used to force a pool's workers to spawn (and run
    their initializer) ahead of the first real batch."""
    time.sleep(seconds)
    return True


# ----------------------------------------------- resident pool worker side

class _ResidentEntry:
    """One worker-owned view: the live replay plus the verified head it is
    parked at. ``blob_size`` is the replay's wire-blob size, measured once
    at store time — the per-refresh pickle traffic a resident hit avoids.
    ``app_spec`` is the factory registry spec the entry's machines were
    built from: factories are resolved per work item (a refreshed
    content store must never be stale), so an extend whose work carries
    a *different* spec rebinds the machines first (see
    :func:`_rebind_machines`).
    """

    __slots__ = ("result", "head_index", "head_hash", "blob_size",
                 "app_spec")

    def __init__(self, result, head_index, head_hash, blob_size,
                 app_spec=None):
        self.result = result
        self.head_index = head_index
        self.head_hash = head_hash
        self.blob_size = blob_size
        self.app_spec = app_spec


def _response_head(response, hashes):
    """(head_index, head_hash) a verified response advances a view to —
    must mirror how the coordinator's finalize computes the view head."""
    if response.entries:
        return response.start_index + len(response.entries) - 1, hashes[-1]
    return response.start_index - 1, response.start_hash


def _rebind_machines(result, factory):
    """Re-found *result*'s state machines on *factory*.

    The blob pool gets this for free: every extend reconstructs the base
    replay through the current work item's factory, so factory-supplied
    environments (e.g. a MapReduce content store that grew since the
    build) are always current. A resident replay keeps its live machines
    across work items, so when a work item arrives with a different
    factory spec the machines are snapshot-restored through the new
    factory — bit-identical by the checkpoint determinism contract,
    exactly the path ``replay_from_wire`` takes.
    """
    gca = result.gca
    gca.machine_factory = factory
    for node, machine in list(gca.machines.items()):
        fresh = factory(node)
        fresh.restore(machine.snapshot())
        gca.machines[node] = fresh
    result.machine = gca.machines.get(result.node)


def _store_resident(node, result, head_index, head_hash, stats,
                    app_spec=None):
    """Park *result* in the resident cache (LRU-evicting over the cap).
    The blob-size measurement pickles once — exactly the encode the blob
    pool pays to *ship* the result, so a cold build through the resident
    pool costs no more than one through the blob pool."""
    if _RESIDENT is None:
        return False
    import pickle
    blob_size = len(pickle.dumps(replay_to_wire(result)))
    _RESIDENT[node] = _ResidentEntry(result, head_index, head_hash,
                                     blob_size, app_spec)
    _RESIDENT.move_to_end(node)
    if _RESIDENT_CAP is not None:
        while len(_RESIDENT) > _RESIDENT_CAP:
            _RESIDENT.popitem(last=False)
            stats.view_cache_evictions += 1
    return True


def _resident_extend(work):
    """Run an extend whose base replay lives in this worker's cache."""
    ref = work.base_replay
    entry = _RESIDENT.get(work.node) if _RESIDENT is not None else None
    if entry is None or entry.head_index != ref.head_index \
            or entry.head_hash != ref.head_hash:
        outcome = CompactOutcome(work.node, work.kind)
        outcome.status = CompactOutcome.CACHE_MISS
        outcome.reason = (
            f"no resident replay for {work.node!r} at entry "
            f"{ref.head_index}"
        )
        outcome.stats = QueryStats()
        return outcome
    _RESIDENT.move_to_end(work.node)
    if entry.app_spec != work.app_spec:
        _rebind_machines(entry.result,
                         work.resolve_factory(_POOL_CONTEXT))
        entry.app_spec = work.app_spec
    work.base_replay = entry.result
    outcome = compute_build(work, _POOL_CONTEXT)
    stats = outcome.stats
    stats.view_cache_hits += 1
    # Inbound saving: the work item carried a head reference where the
    # blob pool ships (and this worker would re-decode) the base replay.
    stats.pickle_bytes_avoided += entry.blob_size
    if outcome.status == CompactOutcome.OK:
        if outcome.replay_ran:
            # Extended in place: the entry moves to the new verified
            # head, and the extended blob the blob pool would ship back
            # stays put — the outbound saving.
            entry.head_index, entry.head_hash = _response_head(
                work.response, outcome.hashes
            )
            stats.pickle_bytes_avoided += entry.blob_size
        outcome.replay_result = None
        outcome.resident_head = (entry.head_index, entry.head_hash)
    elif outcome.status == CompactOutcome.VERIFY_FAILED:
        # Verification precedes replay: the entry is still exactly at its
        # committed head and stays resident (a kept-stale view can extend
        # it later).
        outcome.resident_head = (entry.head_index, entry.head_hash)
    else:
        # REPLAY_FAILED: the resident state advanced past its committed
        # head into a failed replay — poisoned for extension. Ship the
        # failed replay (the proven-faulty view keeps it as evidence) and
        # drop the entry.
        _RESIDENT.pop(work.node, None)
    return outcome


def _adopt_build(work, outcome):
    """Park a fresh (or blob-based extended) ``ok`` build in the resident
    cache and strip the outbound blob: later refreshes ship heads."""
    if _RESIDENT is None or outcome.status != CompactOutcome.OK:
        return
    result = outcome.replay_result
    if result is None:
        return  # e.g. an empty blob-based extend: nothing newly built
    if not isinstance(result, ReplayResult):
        result = result.materialize()
    head_index, head_hash = _response_head(work.response, outcome.hashes)
    _store_resident(work.node, result, head_index, head_hash, outcome.stats,
                    app_spec=work.app_spec)
    outcome.replay_result = None
    outcome.resident_head = (head_index, head_hash)


def compute_build_resident_wire(payload):
    """The resident pool's build entry point: a shipped (possibly
    shm-borne) work payload in, a shipped outcome out, with this worker's
    view cache consulted and updated along the way."""
    if _POOL_CONTEXT is None:
        raise WireError("worker process was not initialized with a context")
    import pickle
    work_wire = pickle.loads(_load_shipped(payload))
    work = BuildWork.from_wire(work_wire, _POOL_CONTEXT)
    if isinstance(work.base_replay, _ResidentRef):
        outcome = _resident_extend(work)
    else:
        # Any build that runs without a resident base — cold full builds
        # and blob-carried extends alike — is a cache miss; this is the
        # single place misses are counted, so fallback rebuilds after a
        # lost entry tally exactly once.
        outcome = compute_build(work, _POOL_CONTEXT)
        outcome.stats.view_cache_misses += 1
        _adopt_build(work, outcome)
    return _ship_result(pickle.dumps(outcome.to_wire()))


def resident_op_wire(request):
    """An affinity-routed read against this worker's resident cache.

    ``request`` is ``(node, head_index, head_hash, op, payload)``. Graph
    reads return *cloned* value vertices (clones pickle under the
    constructor-rebuilding contract; graph-member vertices must never
    leave the worker). A missing entry — or one parked at a different
    head — answers ``W.lost``, which the coordinator raises as
    :class:`ResidentViewLost`.
    """
    node, head_index, head_hash, op, payload = request
    if op == "evict":
        dropped = (_RESIDENT is not None
                   and _RESIDENT.pop(node, None) is not None)
        return ("W.opres", dropped)
    entry = _RESIDENT.get(node) if _RESIDENT is not None else None
    if entry is None or entry.head_index != head_index \
            or entry.head_hash != head_hash:
        return ("W.lost",)
    _RESIDENT.move_to_end(node)
    if op == "blob":
        import pickle
        return _ship_result(pickle.dumps(replay_to_wire(entry.result)))
    from repro.provgraph.graph import _clone_vertex
    graph = entry.result.graph
    if op == "get":
        vertex = graph.get(payload)
        value = None if vertex is None else _clone_vertex(vertex)
    elif op == "around":
        vertex = graph.get(payload)
        if vertex is None:
            value = None
        else:
            value = (
                _clone_vertex(vertex),
                [_clone_vertex(p) for p in graph.predecessors(vertex)],
                [_clone_vertex(s) for s in graph.successors(vertex)],
            )
    elif op == "find_all":
        vtype, vnode, tup = payload
        value = [_clone_vertex(v)
                 for v in graph.find_all(vtype=vtype, node=vnode, tup=tup)]
    else:
        raise WireError(f"unknown resident op {op!r}")
    return ("W.opres", value)
