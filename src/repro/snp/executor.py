"""Executors for per-node view-build work (see DESIGN.md, "Parallel view
builds" and "Process-pool builds").

The microquery module splits a view build into a *fetch* step (touches the
deployment; coordinator side), a *verify+replay* compute step (a pure
function of a work item and a context; see :mod:`repro.snp.wire`) and a
*finalize* step on the calling thread in canonical node order. An executor
only decides how the per-node fetch+compute pipelines are scheduled:

* :class:`SerialExecutor` — runs tasks inline, one at a time, in the order
  given. The default; also the fallback for ``workers <= 1``.
* :class:`ThreadedExecutor` — runs tasks on a persistent thread pool.
  Downloads overlap; compute still serializes under the GIL.
* :class:`ProcessExecutor` — fetches on coordination threads, ships each
  work item's wire form to a warm spawn-based process pool for the
  compute step, and decodes the compact outcome. Replay and RSA
  verification run truly in parallel.
* :class:`WireCheckExecutor` — serial, but forces context, work and
  outcome through their wire representations: the serialization contract
  exercised without paying process spawn (a test/debug aid).

Task *results* always come back aligned with submission order, and every
executor funnels the same compute function, so the merge phase (and
therefore every observable query result and counter) is identical across
executors by construction.

``make_executor`` turns the user-facing spec (``None``, an int worker
count, ``"serial"``, ``"thread:4"``, ``"process:4"``, ``"wire"``, or an
executor instance) into an executor object.
"""

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.snp.wire import init_worker_process, warm_worker

#: Ceiling for auto-sized pools ("process"/"thread" specs with no
#: explicit N): view builds stop scaling well past this on one querier,
#: and unbounded spawn on a many-core box wastes start-up time.
MAX_DEFAULT_WORKERS = 8


def default_worker_count():
    """``os.cpu_count()`` clamped to ``[1, MAX_DEFAULT_WORKERS]`` — the
    worker count a bare ``"process"``/``"thread"`` spec resolves to."""
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


class SerialExecutor:
    """Run view-build tasks inline on the calling thread."""

    workers = 1

    def run(self, tasks):
        """Run zero-arg *tasks*; returns their results in task order."""
        return [task() for task in tasks]

    def close(self):
        pass

    def __repr__(self):
        return "SerialExecutor()"


class ThreadedExecutor:
    """Run view-build tasks on a persistent thread pool.

    The pool is created lazily on first use and reused across batches, so
    repeated refreshes do not pay thread start-up per call. ``close()``
    shuts the pool down; an unclosed executor's threads are reclaimed at
    interpreter shutdown like any ThreadPoolExecutor's.
    """

    def __init__(self, workers):
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None

    def run(self, tasks):
        """Run zero-arg *tasks* concurrently; results in task order."""
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="view-build",
            )
        return list(self._pool.map(lambda task: task(), tasks))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return f"ThreadedExecutor(workers={self.workers})"


class ProcessExecutor:
    """Back the compute step of view builds with worker *processes*.

    Per build job, a coordination thread runs the fetch step (so the
    transport-sleep download model still overlaps across jobs exactly as
    the threaded executor's does), encodes the work item, submits it to
    the process pool, and decodes the compact outcome — see
    :meth:`_BuildJob.run_remote <repro.snp.microquery._BuildJob>`.

    The pool uses the *spawn* start method (fork-safety: the coordinator
    holds live locks and thread pools) and is warmed by
    :meth:`prepare` — normally called from ``MicroQuerier.__init__`` — so
    the first query batch does not pay interpreter start-up. Workers are
    initialized once per pool with the wire form of the
    :class:`~repro.snp.wire.BuildContext`; a later ``prepare`` with a
    *different* context (a new deployment) recreates the pool.
    """

    def __init__(self, workers):
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None
        self._coordinator = None
        self._context_wire = None

    def prepare(self, context):
        """Create (or re-create) and warm the process pool for *context*."""
        wire = context.to_wire()
        if self._pool is not None:
            if wire == self._context_wire:
                return
            self._pool.shutdown(wait=True)
            self._pool = None
        mp_context = multiprocessing.get_context("spawn")
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=mp_context,
            initializer=init_worker_process, initargs=(wire,),
        )
        self._context_wire = wire
        # Queue one slow-ish no-op per worker so all of them spawn (and
        # run the initializer) now, not inside the first timed batch.
        list(self._pool.map(warm_worker, [0.05] * self.workers))

    def run_jobs(self, jobs, context):
        """Run build jobs; outcomes in submission order.

        Two stages, neither blocking the other: fetch threads retrieve
        segments (overlapping their transport sleeps) and submit each
        work item to the process pool *without waiting on it*, so the
        whole batch streams through the workers; then outcomes are
        collected — and therefore finalized — in submission order.
        """
        if not jobs:
            return []
        self.prepare(context)
        pool = self._pool
        if len(jobs) == 1:
            submissions = [jobs[0].submit_remote(pool)]
        else:
            if self._coordinator is None:
                # Fetch threads only sleep on the transport model and run
                # light bookkeeping — compute lives in the worker
                # processes — so their count is not tied to the worker
                # count: double it and downloads overlap deeper than the
                # threaded executor (whose threads must also compute)
                # could ever afford.
                self._coordinator = ThreadPoolExecutor(
                    max_workers=2 * self.workers,
                    thread_name_prefix="view-fetch",
                )
            submissions = list(self._coordinator.map(
                lambda job: job.submit_remote(pool), jobs
            ))
        return [job.collect_remote(future)
                for job, future in zip(jobs, submissions)]

    def close(self):
        if self._coordinator is not None:
            self._coordinator.shutdown(wait=True)
            self._coordinator = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._context_wire = None

    def __repr__(self):
        return f"ProcessExecutor(workers={self.workers})"


class WireCheckExecutor:
    """Serial executor that round-trips context, work and outcome through
    the wire layer on every job — the process boundary's serialization
    contract, checked deterministically and without spawn cost."""

    workers = 1

    def run_jobs(self, jobs, context):
        return [job.run_wire_check(context) for job in jobs]

    def close(self):
        pass

    def __repr__(self):
        return "WireCheckExecutor()"


def make_executor(spec=None):
    """Resolve an executor spec to an executor instance.

    ``None`` or ``"serial"`` → :class:`SerialExecutor`; an int ``n`` →
    serial for ``n == 1``, ``ThreadedExecutor(n)`` for ``n > 1``
    (``n < 1`` is an error); ``"thread:N"`` → ``ThreadedExecutor(N)``;
    ``"process:N"`` → ``ProcessExecutor(N)``; bare ``"thread"`` /
    ``"process"`` → the same pools sized to ``os.cpu_count()`` clamped
    to :data:`MAX_DEFAULT_WORKERS`; ``"wire"`` →
    :class:`WireCheckExecutor`; an object with a ``run`` or ``run_jobs``
    method passes through unchanged.
    """
    if spec is None or spec == "serial":
        return SerialExecutor()
    if isinstance(spec, bool):
        raise ValueError("executor spec must not be a bool")
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(f"worker count must be >= 1, got {spec}")
        return ThreadedExecutor(spec) if spec > 1 else SerialExecutor()
    if isinstance(spec, str):
        if spec == "thread":
            return make_executor(default_worker_count())
        if spec == "process":
            return ProcessExecutor(default_worker_count())
        if spec.startswith("thread:"):
            return make_executor(int(spec.split(":", 1)[1]))
        if spec.startswith("process:"):
            return ProcessExecutor(int(spec.split(":", 1)[1]))
        if spec == "wire":
            return WireCheckExecutor()
        raise ValueError(f"unknown executor spec {spec!r}")
    if hasattr(spec, "run") or hasattr(spec, "run_jobs"):
        return spec
    raise ValueError(f"cannot build an executor from {spec!r}")
