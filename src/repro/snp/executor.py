"""Executors for per-node view-build work (see DESIGN.md, "Parallel view
builds").

The microquery module splits a view build into a *node-local* phase that
touches no querier-shared state (retrieve, hash-chain and signature
verification, consistency check, replay) and a *merge* phase that runs on
the calling thread in canonical node order. An executor only decides how
the node-local tasks are scheduled:

* :class:`SerialExecutor` — runs tasks inline, one at a time, in the order
  given. The default; also the fallback for ``workers <= 1``.
* :class:`ThreadedExecutor` — runs tasks on a persistent thread pool.
  Task *results* still come back aligned with the submission order, so the
  merge phase (and therefore every observable query result and counter) is
  identical to the serial executor's by construction.

``make_executor`` turns the user-facing spec (``None``, an int worker
count, ``"serial"``, ``"thread:4"``, or an executor instance) into an
executor object.
"""

from concurrent.futures import ThreadPoolExecutor


class SerialExecutor:
    """Run view-build tasks inline on the calling thread."""

    workers = 1

    def run(self, tasks):
        """Run zero-arg *tasks*; returns their results in task order."""
        return [task() for task in tasks]

    def close(self):
        pass

    def __repr__(self):
        return "SerialExecutor()"


class ThreadedExecutor:
    """Run view-build tasks on a persistent thread pool.

    The pool is created lazily on first use and reused across batches, so
    repeated refreshes do not pay thread start-up per call. ``close()``
    shuts the pool down; an unclosed executor's threads are reclaimed at
    interpreter shutdown like any ThreadPoolExecutor's.
    """

    def __init__(self, workers):
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None

    def run(self, tasks):
        """Run zero-arg *tasks* concurrently; results in task order."""
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="view-build",
            )
        return list(self._pool.map(lambda task: task(), tasks))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return f"ThreadedExecutor(workers={self.workers})"


def make_executor(spec=None):
    """Resolve an executor spec to an executor instance.

    ``None`` or ``"serial"`` → :class:`SerialExecutor`; an int ``n`` →
    serial for ``n == 1``, ``ThreadedExecutor(n)`` for ``n > 1``
    (``n < 1`` is an error); ``"thread:N"`` → ``ThreadedExecutor(N)``;
    an object with a ``run`` method passes through unchanged.
    """
    if spec is None or spec == "serial":
        return SerialExecutor()
    if isinstance(spec, bool):
        raise ValueError("executor spec must not be a bool")
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(f"worker count must be >= 1, got {spec}")
        return ThreadedExecutor(spec) if spec > 1 else SerialExecutor()
    if isinstance(spec, str):
        if spec.startswith("thread:"):
            return make_executor(int(spec.split(":", 1)[1]))
        raise ValueError(f"unknown executor spec {spec!r}")
    if hasattr(spec, "run"):
        return spec
    raise ValueError(f"cannot build an executor from {spec!r}")
