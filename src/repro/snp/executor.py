"""Executors for per-node view-build work (see DESIGN.md, "Parallel view
builds", "Process-pool builds" and "Shared view plane").

The microquery module splits a view build into a *fetch* step (touches the
deployment; coordinator side), a *verify+replay* compute step (a pure
function of a work item and a context; see :mod:`repro.snp.wire`) and a
*finalize* step on the calling thread in canonical node order. An executor
only decides how the per-node fetch+compute pipelines are scheduled:

* :class:`SerialExecutor` — runs tasks inline, one at a time, in the order
  given. The default; also the fallback for ``workers <= 1``.
* :class:`ThreadedExecutor` — runs tasks on a persistent thread pool.
  Downloads overlap; compute still serializes under the GIL.
* :class:`ProcessExecutor` — the *resident* process pool: one
  single-worker slot per worker, each node affinity-hashed to the slot
  that owns its view. Workers keep replays resident between batches, so a
  refresh ships only the verified head plus the log/evidence delta; bulk
  payloads cross through ``multiprocessing.shared_memory``. A dead worker
  or evicted entry degrades to a cold build — bit-identical by
  construction.
* :class:`ProcessBlobExecutor` — the original blob-shipping process pool:
  every build ships its full work item (base replays included) and gets
  the re-pickled replay back. Kept as the resident plane's benchmark
  baseline and equivalence witness.
* :class:`WireCheckExecutor` — serial, but forces context, work and
  outcome through their wire representations: the serialization contract
  exercised without paying process spawn (a test/debug aid).

Task *results* always come back aligned with submission order, and every
executor funnels the same compute function, so the merge phase (and
therefore every observable query result and counter) is identical across
executors by construction.

``make_executor`` turns the user-facing spec (``None``, an int worker
count, ``"serial"``, ``"thread:4"``, ``"process:4"``,
``"process-blob:4"``, ``"wire"``, or an executor instance) into an
executor object.
"""

import hashlib
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.snp.wire import (
    ResidentViewLost, ShmArena, collect_result, compute_build_resident_wire,
    init_worker_process, resident_op_wire, ship_payload, warm_worker,
)

#: Ceiling for auto-sized pools ("process"/"thread" specs with no
#: explicit N): view builds stop scaling well past this on one querier,
#: and unbounded spawn on a many-core box wastes start-up time.
MAX_DEFAULT_WORKERS = 8


def default_worker_count():
    """``os.cpu_count()`` clamped to ``[1, MAX_DEFAULT_WORKERS]`` — the
    worker count a bare ``"process"``/``"thread"`` spec resolves to."""
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


class SerialExecutor:
    """Run view-build tasks inline on the calling thread."""

    workers = 1

    def run(self, tasks):
        """Run zero-arg *tasks*; returns their results in task order."""
        return [task() for task in tasks]

    def close(self):
        pass

    def __repr__(self):
        return "SerialExecutor()"


class ThreadedExecutor:
    """Run view-build tasks on a persistent thread pool.

    The pool is created lazily on first use and reused across batches, so
    repeated refreshes do not pay thread start-up per call. ``close()``
    shuts the pool down; an unclosed executor's threads are reclaimed at
    interpreter shutdown like any ThreadPoolExecutor's.
    """

    def __init__(self, workers):
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None

    def run(self, tasks):
        """Run zero-arg *tasks* concurrently; results in task order."""
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="view-build",
            )
        return list(self._pool.map(lambda task: task(), tasks))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self):
        return f"ThreadedExecutor(workers={self.workers})"


class _Submission:
    """One in-flight resident build: the slot's future plus the arena
    segment to release once the worker has consumed it."""

    __slots__ = ("future", "slot", "shm_name", "shm_bytes")

    def __init__(self, future, slot, shm_name, shm_bytes):
        self.future = future
        self.slot = slot
        self.shm_name = shm_name
        self.shm_bytes = shm_bytes


class ProcessExecutor:
    """The resident view plane: workers *own* views (see DESIGN.md,
    "Shared view plane").

    ``workers`` single-process slots are spawned (warm, spawn start
    method, fork-safety as before); every node is affinity-hashed to one
    slot, so the worker that builds a node's view is always the worker
    later asked to extend or query it. The worker parks each ``ok``
    replay in its resident cache keyed by the verified head, which lets

    * ``refresh()`` ship only the head reference + log/evidence delta
      (the base replay never crosses the boundary again), and
    * ``resolve()``/microqueries run graph reads *in the owning worker*
      (:meth:`resident_op`), returning cloned value vertices instead of
      decoding whole graphs on the coordinator's GIL.

    Bulk payloads still crossing the boundary ride a ref-counted
    shared-memory arena. Any lost state — dead worker, LRU-evicted entry,
    head mismatch — surfaces as
    :class:`~repro.snp.wire.ResidentViewLost`/``cache-miss`` and degrades
    to a cold build, which is bit-identical by construction.

    *resident_cap* bounds each worker's cache (LRU entries; None =
    unbounded) — mainly a test/ops knob to force the eviction path.
    """

    def __init__(self, workers, resident_cap=None):
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self.resident_cap = resident_cap
        self.arena = ShmArena()
        self._slots = None
        self._coordinator = None
        self._context_wire = None
        self._lock = threading.Lock()

    # ----------------------------------------------------------- lifecycle

    @property
    def alive(self):
        """Whether the slot pools exist (prepared and not closed)."""
        return self._slots is not None

    def _spawn_slot(self):
        mp_context = multiprocessing.get_context("spawn")
        return ProcessPoolExecutor(
            max_workers=1, mp_context=mp_context,
            initializer=init_worker_process,
            initargs=(self._context_wire, True, self.resident_cap),
        )

    def prepare(self, context):
        """Create (or re-create) and warm the slot pools for *context*."""
        wire = context.to_wire()
        with self._lock:
            if self._slots is not None:
                if wire == self._context_wire:
                    return
                for pool in self._slots:
                    if pool is not None:
                        pool.shutdown(wait=True)
                self._slots = None
            self._context_wire = wire
            self._slots = [self._spawn_slot() for _ in range(self.workers)]
            # One slow-ish no-op per slot so all of them spawn (and run
            # their initializer) now, concurrently — not inside the first
            # timed batch.
            warms = [pool.submit(warm_worker, 0.05) for pool in self._slots]
        for future in warms:
            future.result()

    def close(self):
        if self._coordinator is not None:
            self._coordinator.shutdown(wait=True)
            self._coordinator = None
        with self._lock:
            slots, self._slots = self._slots, None
            self._context_wire = None
        if slots is not None:
            for pool in slots:
                if pool is not None:
                    pool.shutdown(wait=True)
        self.arena.close()

    # ------------------------------------------------------------ affinity

    def slot_of(self, node):
        """The slot owning *node*'s view — a stable content hash of the
        node id, so ownership survives pool restarts and is identical
        across coordinator processes."""
        digest = hashlib.blake2s(repr(node).encode("utf-8"),
                                 digest_size=4).digest()
        return int.from_bytes(digest, "big") % self.workers

    def _slot_pool(self, slot):
        with self._lock:
            if self._slots is None:
                raise ResidentViewLost("executor is closed")
            pool = self._slots[slot]
            if pool is None:
                # Respawn a previously-broken slot; its resident cache is
                # gone, so builds routed here answer cache-miss until the
                # fallback rebuilds repopulate it.
                pool = self._slots[slot] = self._spawn_slot()
            return pool

    def _break_slot(self, slot):
        with self._lock:
            if self._slots is None:
                return
            pool = self._slots[slot]
            self._slots[slot] = None
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass

    # ------------------------------------------------------------- builds

    def submit_build(self, node, work_wire, _retry=True):
        """Ship one work item's pre-pickled wire form to *node*'s slot.

        Bulk payloads go through the shm arena; the pipe carries the
        segment name. Returns a :class:`_Submission` for
        :meth:`collect_build`.
        """
        import pickle
        data = pickle.dumps(work_wire)
        payload, shm_name, shm_bytes = ship_payload(data, self.arena)
        slot = self.slot_of(node)
        try:
            future = self._slot_pool(slot).submit(
                compute_build_resident_wire, payload
            )
        except (BrokenProcessPool, RuntimeError):
            if shm_name is not None:
                self.arena.release(shm_name)
            self._break_slot(slot)
            if _retry:
                # One respawn attempt: the fresh worker holds no resident
                # state, so a head-referencing work item answers
                # cache-miss and the job's fallback takes over.
                return self.submit_build(node, work_wire, _retry=False)
            raise ResidentViewLost(f"worker slot {slot} is down")
        return _Submission(future, slot, shm_name, shm_bytes)

    def collect_build(self, submission):
        """Wait for a submission; returns ``(outcome_wire, shm_bytes)``.

        Raises :class:`ResidentViewLost` when the owning worker died —
        the caller falls back to a cold build."""
        try:
            shipped = submission.future.result()
        except (BrokenProcessPool, RuntimeError) as exc:
            self._break_slot(submission.slot)
            raise ResidentViewLost(
                f"worker slot {submission.slot} died: {exc}"
            )
        finally:
            if submission.shm_name is not None:
                self.arena.release(submission.shm_name)
        data, out_shm = collect_result(shipped)
        import pickle
        return pickle.loads(data), submission.shm_bytes + out_shm

    def run_jobs(self, jobs, context):
        """Run build jobs; outcomes in submission order.

        Fetch threads retrieve segments (overlapping their transport
        sleeps) and submit each work item to its owning slot without
        waiting; outcomes are collected — and therefore finalized — in
        submission order. Collection handles the fallback ladder (worker
        death, cache miss) per job.
        """
        if not jobs:
            return []
        self.prepare(context)
        if len(jobs) == 1:
            submissions = [jobs[0].submit_resident(self)]
        else:
            if self._coordinator is None:
                # Fetch threads only sleep on the transport model and run
                # light bookkeeping — compute lives in the worker
                # processes — so their count is not tied to the worker
                # count: double it and downloads overlap deeper than the
                # threaded executor (whose threads must also compute)
                # could ever afford.
                self._coordinator = ThreadPoolExecutor(
                    max_workers=2 * self.workers,
                    thread_name_prefix="view-fetch",
                )
            submissions = list(self._coordinator.map(
                lambda job: job.submit_resident(self), jobs
            ))
        return [job.collect_resident(self, submission)
                for job, submission in zip(jobs, submissions)]

    # ------------------------------------------------------- resident ops

    def resident_op(self, node, head_index, head_hash, op, payload=None,
                    stats=None):
        """Run a read against the resident view *node*'s slot holds at
        ``(head_index, head_hash)``. Raises :class:`ResidentViewLost`
        when the entry (or the worker) is gone."""
        slot = self.slot_of(node)
        try:
            result = self._slot_pool(slot).submit(
                resident_op_wire, (node, head_index, head_hash, op, payload)
            ).result()
        except (BrokenProcessPool, RuntimeError) as exc:
            self._break_slot(slot)
            raise ResidentViewLost(f"worker slot {slot} died: {exc}")
        tag = result[0]
        if tag == "W.lost":
            raise ResidentViewLost(
                f"resident view for {node!r} at entry {head_index} is gone"
            )
        if tag == "W.opres":
            return result[1]
        data, shm = collect_result(result)  # a blob pull
        if stats is not None and shm:
            stats.shm_bytes += shm
        return data

    def evict_resident(self, node):
        """Drop *node*'s resident entry (explicit invalidation: forks, GC
        floors, ``invalidate()``). Best-effort — a dead worker already
        lost it. Returns whether an entry was actually dropped."""
        if self._slots is None:
            return False
        try:
            return bool(self.resident_op(node, 0, None, "evict"))
        except ResidentViewLost:
            return False

    def __repr__(self):
        return f"ProcessExecutor(workers={self.workers})"


class ProcessBlobExecutor:
    """The blob-shipping process pool (the pre-resident design).

    Per build job, a coordination thread runs the fetch step, encodes the
    *entire* work item — base replays included — submits it to a shared
    process pool, and decodes the compact outcome, whose replay comes
    back as a re-pickled blob. Kept as the resident plane's baseline
    (``BENCH_parallel`` measures resident wins against it) and as an
    equivalence witness.

    The pool uses the *spawn* start method (fork-safety: the coordinator
    holds live locks and thread pools) and is warmed by
    :meth:`prepare` — normally called from ``MicroQuerier.__init__`` — so
    the first query batch does not pay interpreter start-up. Workers are
    initialized once per pool with the wire form of the
    :class:`~repro.snp.wire.BuildContext`; a later ``prepare`` with a
    *different* context (a new deployment) recreates the pool.
    """

    def __init__(self, workers):
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None
        self._coordinator = None
        self._context_wire = None

    @property
    def alive(self):
        return self._pool is not None

    def prepare(self, context):
        """Create (or re-create) and warm the process pool for *context*."""
        wire = context.to_wire()
        if self._pool is not None:
            if wire == self._context_wire:
                return
            self._pool.shutdown(wait=True)
            self._pool = None
        mp_context = multiprocessing.get_context("spawn")
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=mp_context,
            initializer=init_worker_process, initargs=(wire,),
        )
        self._context_wire = wire
        # Queue one slow-ish no-op per worker so all of them spawn (and
        # run the initializer) now, not inside the first timed batch.
        list(self._pool.map(warm_worker, [0.05] * self.workers))

    def run_jobs(self, jobs, context):
        """Run build jobs; outcomes in submission order.

        Two stages, neither blocking the other: fetch threads retrieve
        segments (overlapping their transport sleeps) and submit each
        work item to the process pool *without waiting on it*, so the
        whole batch streams through the workers; then outcomes are
        collected — and therefore finalized — in submission order.
        """
        if not jobs:
            return []
        self.prepare(context)
        pool = self._pool
        if len(jobs) == 1:
            submissions = [jobs[0].submit_remote(pool)]
        else:
            if self._coordinator is None:
                self._coordinator = ThreadPoolExecutor(
                    max_workers=2 * self.workers,
                    thread_name_prefix="view-fetch",
                )
            submissions = list(self._coordinator.map(
                lambda job: job.submit_remote(pool), jobs
            ))
        return [job.collect_remote(future)
                for job, future in zip(jobs, submissions)]

    def close(self):
        if self._coordinator is not None:
            self._coordinator.shutdown(wait=True)
            self._coordinator = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._context_wire = None

    def __repr__(self):
        return f"ProcessBlobExecutor(workers={self.workers})"


class WireCheckExecutor:
    """Serial executor that round-trips context, work and outcome through
    the wire layer on every job — the process boundary's serialization
    contract, checked deterministically and without spawn cost."""

    workers = 1

    def run_jobs(self, jobs, context):
        return [job.run_wire_check(context) for job in jobs]

    def close(self):
        pass

    def __repr__(self):
        return "WireCheckExecutor()"


def make_executor(spec=None):
    """Resolve an executor spec to an executor instance.

    ``None`` or ``"serial"`` → :class:`SerialExecutor`; an int ``n`` →
    serial for ``n == 1``, ``ThreadedExecutor(n)`` for ``n > 1``
    (``n < 1`` is an error); ``"thread:N"`` → ``ThreadedExecutor(N)``;
    ``"process:N"`` → the resident :class:`ProcessExecutor(N)`;
    ``"process-blob:N"`` → the blob-shipping
    :class:`ProcessBlobExecutor(N)`; bare ``"thread"`` / ``"process"`` /
    ``"process-blob"`` → the same pools sized to ``os.cpu_count()``
    clamped to :data:`MAX_DEFAULT_WORKERS`; ``"wire"`` →
    :class:`WireCheckExecutor`; an object with a ``run`` or ``run_jobs``
    method passes through unchanged.
    """
    if spec is None or spec == "serial":
        return SerialExecutor()
    if isinstance(spec, bool):
        raise ValueError("executor spec must not be a bool")
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(f"worker count must be >= 1, got {spec}")
        return ThreadedExecutor(spec) if spec > 1 else SerialExecutor()
    if isinstance(spec, str):
        if spec == "thread":
            return make_executor(default_worker_count())
        if spec == "process":
            return ProcessExecutor(default_worker_count())
        if spec == "process-blob":
            return ProcessBlobExecutor(default_worker_count())
        if spec.startswith("thread:"):
            return make_executor(int(spec.split(":", 1)[1]))
        if spec.startswith("process-blob:"):
            return ProcessBlobExecutor(int(spec.split(":", 1)[1]))
        if spec.startswith("process:"):
            return ProcessExecutor(int(spec.split(":", 1)[1]))
        if spec == "wire":
            return WireCheckExecutor()
        raise ValueError(f"unknown executor spec {spec!r}")
    if hasattr(spec, "run") or hasattr(spec, "run_jobs"):
        return spec
    raise ValueError(f"cannot build an executor from {spec!r}")
