"""MapReduce with reported provenance — the paper's Hadoop application
(Section 6.2).

The paper instruments Hadoop to *report* provenance (extraction method #2)
at the level of individual key-value pairs: the provenance of an
intermediate pair consists of the arguments of the map invocation, and the
provenance of an output consists of the arguments of the reduce invocation.
Input files appear in the log only as hashes (the trivial optimization of
Section 6.2 — the bytes live in a content store and are authenticated by
hash at replay time).

This module provides:

* :class:`MapReduceApp` — a deterministic state machine for a worker node.
  A node becomes a mapper when it receives a ``mapTask`` base tuple and a
  reducer when it receives a ``reduceTask`` base tuple (both come from the
  JobTracker, which the paper treats as a source of base tuples).
* map side: ``mapTask → [mapOut per occurrence] → combineOut per word →
  shuffle to the responsible reducer (+ a mapDone end-of-stream marker)``;
  the per-occurrence layer is optional (``granularity='offsets'``) and
  reproduces Figure 4's MapOut vertices.
* reduce side: once every expected mapper's ``mapDone`` arrived, the
  reducer derives one ``output(word, total)`` per word, supported by the
  believed shuffle tuples — the reduce invocation's arguments.
* :class:`WordCountJob` — the JobTracker: splits a corpus, registers
  content hashes, assigns tasks, runs the cluster, and fetches results.
* :class:`CorruptWordCountApp` — a mapper that injects bogus key-value
  pairs for a chosen word (the Hadoop-Squirrel scenario); installed via
  :class:`repro.snp.adversary.MisexecutingNode` so replay against the
  honest program exposes it.
"""

import hashlib
import zlib

from repro.model import Der, Snd, StateMachine, Tup, Ack, PLUS
from repro.util.serialization import canonical_bytes

#: Average Hadoop shuffle-message payload in the paper is ~1.08 MB; our
#: synthetic corpora are smaller, so the native size is simply the data
#: itself (tuple-encoding overhead is the 'provenance' category).
COMBINED = "combined"
OFFSETS = "offsets"


#: Declared relation schema (arity counts the @location term). MapReduce
#: has no Datalog rules — its provenance is *reported* (method #2) — but
#: the schema still feeds ndlint so the ``--apps`` sweep covers all five
#: applications, and a unit test checks the tuple constructors against it.
RELATION_SCHEMA = {
    "mapTask": 5,
    "reduceTask": 3,
    "mapOut": 5,
    "combineOut": 4,
    "shuffle": 5,
    "shuffleBlock": 4,
    "output": 4,
}


def mapreduce_schema_program():
    """A rule-less :class:`~repro.datalog.engine.Program` carrying the
    declared schema, for static analysis only (nothing executes it)."""
    from repro.datalog import Program
    return Program([], inputs=dict(RELATION_SCHEMA), outputs=("output",))


def content_hash(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def partition_for(word, n_reducers):
    """Deterministic shuffle partition (Python's hash() is randomized)."""
    return zlib.crc32(word.encode("utf-8")) % n_reducers


# ------------------------------------------------------------------- tuples

def map_task(node, job, split_id, text_hash, reducers):
    return Tup("mapTask", node, job, split_id, text_hash, tuple(reducers))


def reduce_task(node, job, mappers):
    return Tup("reduceTask", node, job, tuple(mappers))


def map_out(node, job, split_id, word, offset):
    return Tup("mapOut", node, job, split_id, word, offset)


def combine_out(node, job, word, count):
    return Tup("combineOut", node, job, word, count)


def shuffle_tuple(reducer, job, mapper, word, count):
    return Tup("shuffle", reducer, job, mapper, word, count)


def shuffle_block(reducer, job, mapper, pairs):
    """The whole (word, count) partition one mapper ships to one reducer.

    Per paper Section 6.2, "the set of intermediate key-value pairs sent
    from a map task to a reduce task constitutes a message" — one large
    message per mapper/reducer pair, not one per pair. The per-pair
    ``shuffle`` facts are derived (and reported) at each end; only the
    block crosses the wire."""
    return Tup("shuffleBlock", reducer, job, mapper, tuple(pairs))


def output_tuple(reducer, job, word, count):
    return Tup("output", reducer, job, word, count)


class MapReduceApp(StateMachine):
    """Worker state machine with reported provenance.

    *content_store* maps text hashes to file contents; it stands in for the
    distributed filesystem and must be shared with the replayer (contents
    are authenticated by the hash recorded in the task tuple).
    """

    def __init__(self, node_id, content_store, granularity=COMBINED):
        super().__init__(node_id)
        self.content_store = content_store
        self.granularity = granularity
        self._local = {}        # tup -> appeared_at
        self._beliefs = {}      # tup -> (peer, appeared_at)
        self._expected = {}     # job -> tuple of mappers
        self._task_tuple = {}   # job -> reduceTask tuple
        self._done = {}         # job -> set of mappers
        self._emitted = set()   # jobs whose outputs were emitted

    # ----------------------------------------------------------- map side

    def map_function(self, text):
        """WordCount's mapper: (word, offset) per occurrence. Subclasses
        may override — but a node whose *runtime* mapper differs from the
        registered one is exactly the corrupt-mapper attack."""
        out = []
        offset = 0
        for word in text.split():
            out.append((word, offset))
            offset += len(word) + 1
        return out

    def handle_insert(self, tup, t):
        self._local[tup] = t
        if tup.relation == "mapTask":
            return self._run_map(tup, t)
        if tup.relation == "reduceTask":
            job, mappers = tup.args[0], tup.args[1]
            self._expected[job] = mappers
            self._task_tuple[job] = tup
            self._done.setdefault(job, set())
            return self._maybe_reduce(job, t)
        return []

    def handle_delete(self, tup, t):
        self._local.pop(tup, None)
        return []

    def handle_receive(self, msg, t):
        if isinstance(msg, Ack):
            return []
        if msg.polarity != PLUS:
            self._beliefs.pop(msg.tup, None)
            return []
        self._beliefs[msg.tup] = (msg.src, t)
        if msg.tup.relation == "shuffleBlock":
            job, mapper, pairs = msg.tup.args
            outputs = []
            # Unpack the block into per-pair shuffle facts (the reported
            # provenance granularity of Section 6.2).
            for word, count in pairs:
                sh = shuffle_tuple(self.node_id, job, mapper, word, count)
                self._local[sh] = t
                outputs.append(Der(sh, "unpack", (msg.tup,)))
            self._done.setdefault(job, set()).add(mapper)
            return outputs + self._maybe_reduce(job, t)
        return []

    def _run_map(self, task, t):
        """Execute the map + combine + shuffle pipeline, reporting
        provenance for every stage."""
        job, split_id, text_hash, reducers = task.args
        text = self.content_store[text_hash]
        occurrences = self.map_function(text)
        outputs = []
        counts = {}
        supports = {}
        if self.granularity == OFFSETS:
            for word, offset in occurrences:
                mo = map_out(self.node_id, job, split_id, word, offset)
                self._local[mo] = t
                outputs.append(Der(mo, "map", (task,)))
                counts[word] = counts.get(word, 0) + 1
                supports.setdefault(word, []).append(mo)
        else:
            for word, _offset in occurrences:
                counts[word] = counts.get(word, 0) + 1
        partitions = {reducer: [] for reducer in reducers}
        block_supports = {reducer: [] for reducer in reducers}
        for word in sorted(counts):
            count = counts[word]
            co = combine_out(self.node_id, job, word, count)
            self._local[co] = t
            if self.granularity == OFFSETS:
                outputs.append(Der(co, "combine", tuple(supports[word])))
            else:
                outputs.append(Der(co, "combine", (task,)))
            reducer = reducers[partition_for(word, len(reducers))]
            partitions[reducer].append((word, count))
            block_supports[reducer].append(co)
        # One wire message per reducer: the whole partition (empty blocks
        # double as end-of-stream markers).
        for reducer in reducers:
            block = shuffle_block(reducer, job, self.node_id,
                                  partitions[reducer])
            self._local[block] = t
            outputs.append(
                Der(block, "shuffle",
                    tuple(block_supports[reducer]) or (task,))
            )
            outputs.append(Snd(self.make_msg(PLUS, block, reducer, t)))
        return outputs

    # -------------------------------------------------------- reduce side

    def _maybe_reduce(self, job, t):
        expected = self._expected.get(job)
        if expected is None or job in self._emitted:
            return []
        if set(expected) - self._done.get(job, set()):
            return []  # still waiting for mappers
        self._emitted.add(job)
        task = self._task_tuple[job]
        by_word = {}
        for tup in self._local:
            if tup.relation == "shuffle" and tup.args[0] == job:
                _job, _mapper, word, count = tup.args
                by_word.setdefault(word, []).append(tup)
        outputs = []
        for word in sorted(by_word):
            group = sorted(by_word[word],
                           key=lambda s: canonical_bytes(s.canonical()))
            total = sum(s.args[3] for s in group)
            out = output_tuple(self.node_id, job, word, total)
            self._local[out] = t
            outputs.append(Der(out, "reduce", (task,) + tuple(group)))
        return outputs

    # ------------------------------------------------------- checkpointing

    def snapshot(self):
        snap = super().snapshot()
        snap["mr"] = {
            "local": dict(self._local),
            "beliefs": dict(self._beliefs),
            "expected": dict(self._expected),
            "task_tuple": dict(self._task_tuple),
            "done": {j: set(d) for j, d in self._done.items()},
            "emitted": set(self._emitted),
        }
        return snap

    def restore(self, snap):
        super().restore(snap)
        mr = snap["mr"]
        self._local = dict(mr["local"])
        self._beliefs = dict(mr["beliefs"])
        self._expected = dict(mr["expected"])
        self._task_tuple = dict(mr["task_tuple"])
        self._done = {j: set(d) for j, d in mr["done"].items()}
        self._emitted = set(mr["emitted"])

    def extant_tuples(self):
        return sorted(self._local.items(),
                      key=lambda kv: canonical_bytes(kv[0].canonical()))

    def believed_tuples(self):
        return sorted(
            ((tup, peer, at) for tup, (peer, at) in self._beliefs.items()),
            key=lambda item: canonical_bytes(item[0].canonical()),
        )

    # ----------------------------------------------------------- inspection

    def tuples_of(self, relation):
        out = [t for t in self._local if t.relation == relation]
        out += [t for t in self._beliefs if t.relation == relation]
        return sorted(set(out), key=lambda t: canonical_bytes(t.canonical()))


class CorruptWordCountApp(MapReduceApp):
    """A mapper that injects *extra_count* bogus occurrences of
    *target_word* (Section 7.3: Map-3 emitting 9,991 extra squirrels)."""

    def __init__(self, node_id, content_store, target_word="squirrel",
                 extra_count=9991, granularity=COMBINED):
        super().__init__(node_id, content_store, granularity=granularity)
        self.target_word = target_word
        self.extra_count = extra_count

    def map_function(self, text):
        out = super().map_function(text)
        base = (out[-1][1] + 1000) if out else 0
        for k in range(self.extra_count):
            out.append((self.target_word, base + k))
        return out


def build_mapreduce_app_factory(content, granularity=COMBINED):
    """Registry builder (see :mod:`repro.apps`). *content* maps text hashes
    to file contents — inside a process-pool worker it is the snapshot the
    wire spec carried, standing in for the distributed filesystem."""
    return lambda node_id: MapReduceApp(node_id, content,
                                        granularity=granularity)


def mapreduce_native_sizer(msg):
    """Paper accounting (Section 7.4): SNooPy adds a fixed number of bytes
    per message over whatever the unmodified system serializes. A shuffle
    block *is* the baseline Hadoop message (the mapper→reducer partition),
    so its native size is its payload; SNP's additions are the fixed
    timestamp/authenticator/ack overheads counted by the traffic meter."""
    return msg.payload_size(), "provenance"


class WordCountJob:
    """The JobTracker: splits input, assigns tasks, collects results."""

    def __init__(self, deployment, content_store, job_id="job0",
                 n_mappers=4, n_reducers=2, granularity=COMBINED,
                 corrupt_mappers=None):
        self.deployment = deployment
        self.content_store = content_store
        self.job_id = job_id
        self.granularity = granularity
        self.mappers = [f"map{i}" for i in range(n_mappers)]
        self.reducers = [f"red{i}" for i in range(n_reducers)]
        self.corrupt_mappers = dict(corrupt_mappers or {})
        self._add_workers()

    def _add_workers(self):
        from repro.apps import AppFactory
        from repro.snp.adversary import MisexecutingNode
        # The registry-backed factory keeps a live reference to the shared
        # content store locally; its wire spec snapshots the store's
        # contents at encode time, so process-pool replays see whatever the
        # distributed filesystem held when the build was fetched.
        honest_factory = AppFactory(
            "mapreduce", content=self.content_store,
            granularity=self.granularity,
        )

        for name in self.mappers + self.reducers:
            cls = (MisexecutingNode if name in self.corrupt_mappers
                   else None)
            if cls is None:
                self.deployment.add_node(
                    name, honest_factory, native_sizer=mapreduce_native_sizer
                )
            else:
                node = self.deployment.add_node(
                    name, honest_factory, node_cls=cls,
                    native_sizer=mapreduce_native_sizer,
                )
                spec = self.corrupt_mappers[name]
                node.install_corrupt_app(CorruptWordCountApp(
                    name, self.content_store,
                    granularity=self.granularity, **spec
                ))

    def run(self, splits):
        """*splits* is a list of text strings, one per mapper (extras are
        dropped). Returns the combined output word counts."""
        for reducer in self.reducers:
            self.deployment.node(reducer).insert(
                reduce_task(reducer, self.job_id, self.mappers)
            )
        for mapper, text in zip(self.mappers, splits):
            digest = content_hash(text)
            self.content_store[digest] = text
            self.deployment.node(mapper).insert(
                map_task(mapper, self.job_id, f"split-{mapper}", digest,
                         self.reducers)
            )
        self.deployment.run()
        results = {}
        for reducer in self.reducers:
            node = self.deployment.node(reducer)
            for tup in node.app.tuples_of("output"):
                job, word, count = tup.args
                if job == self.job_id:
                    results[word] = count
        return results

    def output_tuple_for(self, word):
        reducer = self.reducers[partition_for(word, len(self.reducers))]
        node = self.deployment.node(reducer)
        for tup in node.app.tuples_of("output"):
            if tup.args[0] == self.job_id and tup.args[1] == word:
                return tup
        return None
