"""BGP with a SNooPy proxy — the paper's Quagga application (Section 6.3).

The paper treats the Quagga daemon as a **black box**: a small proxy
intercepts its BGP messages, converts them to tuples, and infers provenance
from an *external specification* of four rules (extraction method #3),
one of which is a 'maybe' rule because the daemon's route-selection policy
may be confidential. We reproduce that structure:

* :class:`BgpDaemon` — a self-contained BGP decision process (RIB, local
  preference by business relationship, Gao-Rexford export policy, optional
  preference overrides and export filters). SNooPy never replays it: it is
  the black box.
* the proxy rule set (:func:`bgp_proxy_program`):

  - **M0** (maybe): ``route(@X,Pfx,P) maybe← originate(@X,Pfx)`` with
    ``P=(X,)`` — a network may originate its own prefix;
  - **M1** (maybe): ``route(@X,Pfx,P) maybe← announce(@X,Pfx,Path,Nbr)``
    with ``P=(X,)+Path`` — a selected route must extend a route that was
    previously advertised to X (the paper's fourth rule);
  - **M2** (maybe): ``exportRoute(@X,Nbr,Pfx,P) maybe←
    route(@X,Pfx,P) ∧ neighbor(@X,Nbr)`` — exporting is at the policy's
    discretion;
  - **E1**: ``announce(@Nbr,Pfx,P,X) ← exportRoute(@X,Nbr,Pfx,P)`` — how
    announcements propagate between networks (the paper's first rule).

  The constraint that a network exports at most one route per prefix at a
  time (the paper's second and third rules) is enforced by the driver's
  token management and surfaces in the provenance graph as Section 3.4
  replacement edges (disappear-of-old → appear-of-new), which
  :class:`BgpProxyApp` annotates.

* :class:`BgpNetwork` — the driver: it relays believed announcements into
  each daemon, lets the daemon decide, and mirrors the daemon's selections
  and exports as maybe-rule choice tokens (logged base-tuple inserts, so
  replay is exact).

Scenario builders reproduce the two Section 7.2 queries:
:func:`build_disappear_scenario` (Quagga-Disappear) and
:func:`build_bad_gadget` (Quagga-BadGadget, the [11] oscillation).
"""

from repro.datalog import (
    Var, Atom, Guard, Rule, MaybeRule, Program, DifferentialDatalogApp,
    choice_tuple,
)
from repro.model import Tup, Der, Und

CUSTOMER = "customer"
PEER = "peer"
PROVIDER = "provider"

#: Classic local-preference ladder: customer routes are revenue, provider
#: routes cost money.
RELATIONSHIP_PREF = {CUSTOMER: 100, PEER: 90, PROVIDER: 80}

#: Average Quagga BGP message size from the paper (Section 7.4): 68 bytes.
NATIVE_BGP_MESSAGE_BYTES = 68


# --------------------------------------------------------------------- rules

def bgp_proxy_program():
    X, Nbr, Pfx, Path, P, From = (Var(v) for v in
                                  ("X", "Nbr", "Pfx", "Path", "P", "_From"))
    m0 = MaybeRule(
        "M0",
        head=Atom("route", X, Pfx, P),
        body=[Atom("originate", X, Pfx)],
        guards=[Guard(lambda b: b["P"] == (b["X"],), vars=(P, X),
                      label="P==(X,)")],
    )
    m1 = MaybeRule(
        "M1",
        head=Atom("route", X, Pfx, P),
        body=[Atom("announce", X, Pfx, Path, From)],
        guards=[
            Guard(lambda b: b["P"] == (b["X"],) + b["Path"],
                  vars=(P, X, Path), label="P==(X,)+Path"),
            Guard(lambda b: b["X"] not in b["Path"], vars=(X, Path),
                  label="X not in Path"),
        ],
    )
    m2 = MaybeRule(
        "M2",
        head=Atom("exportRoute", X, Nbr, Pfx, P),
        body=[Atom("route", X, Pfx, P), Atom("neighbor", X, Nbr)],
    )
    e1 = Rule(
        "E1",
        head=Atom("announce", Nbr, Pfx, P, X),
        body=[Atom("exportRoute", X, Nbr, Pfx, P)],
    )
    return Program([m0, m1, m2, e1],
                   inputs={"originate": 2, "neighbor": 2},
                   outputs=("announce",))


class BgpProxyApp(DifferentialDatalogApp):
    """The proxy's state machine, with Section 3.4 replacement edges.

    When the daemon switches routes, the driver deletes the old choice
    token and inserts the new one at the same instant; this subclass pairs
    the resulting underive/derive so the new route's appearance is causally
    linked to the old route's disappearance.
    """

    TRACKED = {"route": 1, "exportRoute": 2}  # relation -> key arity

    def __init__(self, node_id, program=None):
        super().__init__(node_id, program or bgp_proxy_program())
        self._recently_undone = {}

    def _group_key(self, tup):
        arity = self.TRACKED.get(tup.relation)
        if arity is None:
            return None
        return (tup.relation, tup.loc) + tup.args[:arity]

    def _postprocess(self, outputs, t):
        for out in outputs:
            if isinstance(out, Und):
                key = self._group_key(out.tup)
                if key is not None:
                    self._recently_undone[key] = out.tup
            elif isinstance(out, Der):
                key = self._group_key(out.tup)
                if key is None:
                    continue
                undone = self._recently_undone.pop(key, None)
                if undone is not None and undone != out.tup:
                    out.replaces = undone
        return outputs

    def handle_insert(self, tup, t):
        return self._postprocess(super().handle_insert(tup, t), t)

    def handle_delete(self, tup, t):
        return self._postprocess(super().handle_delete(tup, t), t)

    def handle_receive(self, msg, t):
        return self._postprocess(super().handle_receive(msg, t), t)

    def snapshot(self):
        snap = super().snapshot()
        snap["recently_undone"] = dict(self._recently_undone)
        return snap

    def restore(self, snap):
        super().restore(snap)
        self._recently_undone = dict(snap.get("recently_undone", {}))


def build_bgp_app_factory():
    """Registry builder (see :mod:`repro.apps`): compiles the proxy's
    external specification once and returns the per-node factory."""
    program = bgp_proxy_program()
    return lambda node_id: BgpProxyApp(node_id, program)


def bgp_app_factory():
    from repro.apps import AppFactory
    return AppFactory("bgp")


def bgp_native_sizer(msg):
    """Traffic model: the unmodified daemon would have sent a compact BGP
    update (~68 bytes on average, per the paper); the tuple encoding on the
    wire is proxy overhead."""
    return NATIVE_BGP_MESSAGE_BYTES, "proxy"


# -------------------------------------------------------------------- daemon

class BgpDaemon:
    """A deterministic BGP decision process (the black box).

    *neighbors* maps neighbor AS → relationship (from this AS's point of
    view: CUSTOMER means the neighbor is our customer). *pref_override*
    maps (prefix, first_hop_as) → local-pref, which is how BadGadget-style
    dispute wheels are configured. *export_filter(nbr, prefix, path)* may
    veto individual exports (the Quagga-Disappear scenario).
    """

    def __init__(self, asn, neighbors, originated=(),
                 pref_override=None, export_filter=None):
        self.asn = asn
        self.neighbors = dict(neighbors)
        self.originated = set(originated)
        self.pref_override = pref_override or {}
        self.export_filter = export_filter

    def local_pref(self, prefix, path, from_nbr):
        override = self.pref_override.get((prefix, path[0] if path else None))
        if override is not None:
            return override
        return RELATIONSHIP_PREF[self.neighbors[from_nbr]]

    def select(self, prefix, candidates):
        """Pick the best route. *candidates* is a list of (path, from_nbr)
        as advertised (path starts with from_nbr); returns (full_path,
        from_nbr) or None. Origination always wins for own prefixes."""
        if prefix in self.originated:
            return (self.asn,), None
        valid = [
            (path, nbr) for path, nbr in candidates
            if self.asn not in path
        ]
        if not valid:
            return None
        def rank(entry):
            path, nbr = entry
            return (-self.local_pref(prefix, path, nbr), len(path), path)
        path, nbr = min(valid, key=rank)
        return (self.asn,) + path, nbr

    def should_export(self, nbr, prefix, full_path, learned_from):
        """Gao-Rexford export policy plus the optional custom filter."""
        if nbr == learned_from:
            return False  # never send a route back where it came from
        if learned_from is not None:
            learned_rel = self.neighbors[learned_from]
            nbr_rel = self.neighbors[nbr]
            # Routes from peers/providers are exported only to customers.
            if learned_rel in (PEER, PROVIDER) and nbr_rel != CUSTOMER:
                return False
        if self.export_filter is not None \
                and not self.export_filter(nbr, prefix, full_path):
            return False
        return True


# -------------------------------------------------------------------- tuples

def originate(asn, prefix):
    return Tup("originate", asn, prefix)


def neighbor(asn, nbr):
    return Tup("neighbor", asn, nbr)


def route(asn, prefix, path):
    return Tup("route", asn, prefix, tuple(path))


def export_route(asn, nbr, prefix, path):
    return Tup("exportRoute", asn, nbr, prefix, tuple(path))


def announce(asn, prefix, path, from_nbr):
    return Tup("announce", asn, prefix, tuple(path), from_nbr)


def route_token(asn, prefix, path):
    return choice_tuple("M0" if len(path) == 1 and path[0] == asn else "M1",
                        asn, prefix, tuple(path))


def export_token(asn, nbr, prefix, path):
    return choice_tuple("M2", asn, nbr, prefix, tuple(path))


# -------------------------------------------------------------------- driver

class BgpNetwork:
    """Runs BGP daemons behind SNooPy proxies inside a deployment."""

    def __init__(self, deployment, node_overrides=None):
        self.deployment = deployment
        self.daemons = {}
        self.selected = {}   # asn -> {prefix: (full_path, from_nbr)}
        self.exported = {}   # asn -> {(nbr, prefix): full_path}
        self.route_changes = []   # (round, asn, prefix, old, new) flutter log
        self._node_overrides = node_overrides or {}
        self._round = 0

    def add_as(self, daemon):
        factory = bgp_app_factory()
        cls = self._node_overrides.get(daemon.asn)
        kwargs = {"native_sizer": bgp_native_sizer}
        if cls is None:
            node = self.deployment.add_node(daemon.asn, factory, **kwargs)
        else:
            node = self.deployment.add_node(daemon.asn, factory,
                                            node_cls=cls, **kwargs)
        self.daemons[daemon.asn] = daemon
        self.selected[daemon.asn] = {}
        self.exported[daemon.asn] = {}
        for nbr in sorted(daemon.neighbors):
            node.insert(neighbor(daemon.asn, nbr))
        for prefix in sorted(daemon.originated):
            node.insert(originate(daemon.asn, prefix))
        return node

    # ------------------------------------------------------------- decisions

    def _believed_announces(self, asn):
        node = self.deployment.node(asn)
        out = {}
        for tup in node.app.tuples_of("announce"):
            prefix, path, from_nbr = tup.args
            out.setdefault(prefix, []).append((path, from_nbr))
        return out

    def _decide_as(self, asn):
        """Run one decision pass of *asn*'s daemon; mirror the outcome as
        choice-token changes on its proxy. Returns True if anything
        changed."""
        daemon = self.daemons[asn]
        node = self.deployment.node(asn)
        announces = self._believed_announces(asn)
        prefixes = set(announces) | set(daemon.originated) \
            | set(self.selected[asn])
        changed = False
        for prefix in sorted(prefixes, key=str):
            best = daemon.select(prefix, announces.get(prefix, []))
            current = self.selected[asn].get(prefix)
            if best != current:
                changed = True
                self.route_changes.append(
                    (self._round, asn, prefix,
                     current[0] if current else None,
                     best[0] if best else None)
                )
                # Withdraw exports that depended on the old selection first.
                if current is not None:
                    self._sync_exports(asn, prefix, None, None)
                    node.delete(route_token(asn, prefix, current[0]))
                if best is not None:
                    node.insert(route_token(asn, prefix, best[0]))
                self.selected[asn][prefix] = best
                if best is None:
                    del self.selected[asn][prefix]
            selection = self.selected[asn].get(prefix)
            if selection is not None:
                full_path, learned_from = selection
                if self._sync_exports(asn, prefix, full_path, learned_from):
                    changed = True
        return changed

    def _sync_exports(self, asn, prefix, full_path, learned_from):
        """Align the proxy's export tokens with the daemon's export policy
        for *prefix*; full_path None withdraws everything."""
        daemon = self.daemons[asn]
        node = self.deployment.node(asn)
        changed = False
        for nbr in sorted(daemon.neighbors):
            key = (nbr, prefix)
            current = self.exported[asn].get(key)
            want = None
            if full_path is not None \
                    and daemon.should_export(nbr, prefix, full_path,
                                             learned_from):
                want = full_path
            if want == current:
                continue
            changed = True
            if current is not None:
                node.delete(export_token(asn, nbr, prefix, current))
                del self.exported[asn][key]
            if want is not None:
                node.insert(export_token(asn, nbr, prefix, want))
                self.exported[asn][key] = want
        return changed

    def converge(self, max_rounds=30):
        """Alternate message delivery and daemon decisions until a fixpoint
        (or until *max_rounds*, which a BadGadget never reaches). Returns
        the number of rounds executed."""
        for round_index in range(max_rounds):
            self._round = round_index
            self.deployment.run()
            changed = False
            for asn in sorted(self.daemons, key=str):
                if self._decide_as(asn):
                    changed = True
            self.deployment.run()
            if not changed:
                return round_index + 1
        return max_rounds

    def routing_table(self, asn):
        return dict(self.selected[asn])


# ----------------------------------------------------------------- scenarios

def build_disappear_scenario(deployment):
    """The Quagga-Disappear setup (Section 7.2, after Teixeira et al.):

    ``origin`` announces a prefix reachable via two of AS ``j``'s customers,
    ``c1`` (long path) and ``c2`` (short path, but j's export policy filters
    paths through c2 toward its peer ``alice``). c2's announcement arrives
    later; j switches to it, and — because of the filter — withdraws the
    route from alice, whose table entry disappears.

    Returns (network, prefix). Drive it with
    ``net.converge()`` / :func:`trigger_disappear`.
    """
    prefix = "10.0.0.0/8"
    net = BgpNetwork(deployment)
    net.add_as(BgpDaemon("origin", {"mid": PROVIDER},
                         originated=[prefix]))
    net.add_as(BgpDaemon("mid", {"origin": CUSTOMER, "c1": PROVIDER}))
    net.add_as(BgpDaemon("c1", {"mid": CUSTOMER, "j": PROVIDER}))
    net.add_as(BgpDaemon(
        "c2", {"origin": CUSTOMER, "j": PROVIDER},
    ))
    net.add_as(BgpDaemon(
        "j", {"c1": CUSTOMER, "c2": CUSTOMER, "alice": PEER},
        export_filter=lambda nbr, pfx, path:
            not (nbr == "alice" and "c2" in path),
    ))
    net.add_as(BgpDaemon("alice", {"j": PEER}))
    return net, prefix


def trigger_disappear(net, prefix):
    """Activate c2's shorter path by connecting origin→c2 (a new
    announcement), causing j to switch and alice's route to vanish."""
    origin_node = net.deployment.node("origin")
    daemon = net.daemons["origin"]
    if "c2" not in daemon.neighbors:
        daemon.neighbors["c2"] = PROVIDER
        origin_node.insert(neighbor("origin", "c2"))
    return net.converge()


def build_bad_gadget(deployment):
    """BadGadget (Griffin et al. [11]): AS 0 originates; ASes 1, 2, 3 each
    prefer the route through their clockwise neighbor over their direct
    route to 0. No stable assignment exists, so routes flutter forever.

    Returns (network, prefix).
    """
    prefix = "20.0.0.0/8"
    net = BgpNetwork(deployment)
    net.add_as(BgpDaemon(
        "as0", {"as1": PROVIDER, "as2": PROVIDER, "as3": PROVIDER},
        originated=[prefix],
    ))
    # The dispute wheel: as1 prefers routes through as2, as2 through as3,
    # as3 through as1 — each over its direct route to the origin. Business
    # relationships are arranged so every wheel edge is exportable: each
    # ring AS treats the neighbor that prefers routes through it as a
    # customer (provider routes may be exported to customers).
    ring = {"as1": "as2", "as2": "as3", "as3": "as1"}
    for asn, preferred in ring.items():
        prev = next(a for a in ring if ring[a] == asn)
        net.add_as(BgpDaemon(
            asn, {"as0": CUSTOMER, preferred: PROVIDER, prev: CUSTOMER},
            pref_override={
                (prefix, preferred): 200,   # the wheel: via neighbor wins
                (prefix, "as0"): 50,
            },
        ))
    return net, prefix
