"""Example applications (paper Section 6).

Each application exercises a different provenance-extraction method
(Section 5.3):

* :mod:`repro.apps.mincost` / :mod:`repro.apps.pathvector` — native Datalog
  programs (method #1, *inferred provenance*), including the running MinCost
  example of Section 3.3;
* :mod:`repro.apps.chord` — a declarative Chord DHT (method #1), the paper's
  RapidNet application;
* :mod:`repro.apps.mapreduce` — a MapReduce engine with *reported
  provenance* (method #2), the paper's Hadoop application;
* :mod:`repro.apps.bgp` — a BGP daemon treated as a black box behind a
  proxy with an *external specification* of four rules including a 'maybe'
  rule (method #3), the paper's Quagga application.
"""
