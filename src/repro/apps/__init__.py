"""Example applications (paper Section 6).

Each application exercises a different provenance-extraction method
(Section 5.3):

* :mod:`repro.apps.mincost` / :mod:`repro.apps.pathvector` — native Datalog
  programs (method #1, *inferred provenance*), including the running MinCost
  example of Section 3.3;
* :mod:`repro.apps.chord` — a declarative Chord DHT (method #1), the paper's
  RapidNet application;
* :mod:`repro.apps.mapreduce` — a MapReduce engine with *reported
  provenance* (method #2), the paper's Hadoop application;
* :mod:`repro.apps.bgp` — a BGP daemon treated as a black box behind a
  proxy with an *external specification* of four rules including a 'maybe'
  rule (method #3), the paper's Quagga application.

Factory registry
----------------

Deterministic replay rebuilds a node's state machine from the *factory*
registered at :meth:`~repro.snp.deployment.Deployment.add_node`. Factories
built from Datalog programs close over compiled rules (including guard and
expression lambdas), which can never cross a process boundary — so
process-pool view builds (see :mod:`repro.snp.wire`) ship a *name + plain
kwargs* spec instead and resolve it against this registry inside each
worker. :class:`AppFactory` is the callable that carries such a spec; the
built-in applications all hand one out, and external applications can join
with :func:`register_app`.
"""

_REGISTRY = {}

#: Built-in application builders, imported lazily so that pulling in
#: ``repro.apps`` (e.g. inside a spawned worker) does not pay for every
#: example program's rule compilation up front.
_BUILTIN_BUILDERS = {
    "chord": ("repro.apps.chord", "build_chord_app_factory"),
    "mincost": ("repro.apps.mincost", "build_mincost_app_factory"),
    "pathvector": ("repro.apps.pathvector", "build_pathvector_app_factory"),
    "bgp": ("repro.apps.bgp", "build_bgp_app_factory"),
    "mapreduce": ("repro.apps.mapreduce", "build_mapreduce_app_factory"),
}


def register_app(name, builder):
    """Register *builder* under *name*.

    ``builder(**kwargs)`` must return a state-machine factory — a callable
    mapping ``node_id`` to a fresh deterministic state machine. Both the
    name and every kwarg an :class:`AppFactory` is created with must be
    wire-encodable plain data (see :mod:`repro.snp.wire`), because they are
    what travels to process-pool workers in place of the factory itself.
    """
    _REGISTRY[name] = builder
    return builder


def resolve_builder(name):
    """The builder registered under *name* (imports built-ins lazily)."""
    builder = _REGISTRY.get(name)
    if builder is not None:
        return builder
    entry = _BUILTIN_BUILDERS.get(name)
    if entry is None:
        raise KeyError(
            f"no application builder registered under {name!r}; "
            "register one with repro.apps.register_app"
        )
    import importlib

    module_name, attr = entry
    builder = getattr(importlib.import_module(module_name), attr)
    _REGISTRY[name] = builder
    return builder


def lint_targets():
    """``name → Program`` for every built-in application.

    This is what ``python -m repro.datalog.analyze --apps`` and the CI
    analysis job sweep: the four Datalog programs plus MapReduce's
    rule-less schema program. Imported lazily, like the builders.
    """
    from repro.apps.bgp import bgp_proxy_program
    from repro.apps.chord import chord_program
    from repro.apps.mapreduce import mapreduce_schema_program
    from repro.apps.mincost import mincost_program
    from repro.apps.pathvector import pathvector_program
    return {
        "mincost": mincost_program(),
        "pathvector": pathvector_program(),
        "chord": chord_program(),
        "bgp": bgp_proxy_program(),
        "mapreduce": mapreduce_schema_program(),
    }


class AppFactory:
    """A registry-backed, wire-representable state-machine factory.

    Locally it behaves exactly like the closure it replaces: calling it
    with a ``node_id`` returns a fresh state machine (the underlying
    builder runs once, so per-factory work such as rule compilation is
    shared by all nodes using the factory). For the process boundary it
    exposes :meth:`wire_spec`: the registry name plus the kwargs in wire
    form, from which a worker rebuilds an equivalent factory. Mutable
    kwargs (e.g. MapReduce's content store) are snapshotted at
    ``wire_spec()`` time, i.e. once per shipped work item.
    """

    __slots__ = ("name", "kwargs", "_resolved")

    def __init__(self, name, **kwargs):
        self.name = name
        self.kwargs = kwargs
        self._resolved = None

    def __call__(self, node_id):
        if self._resolved is None:
            self._resolved = resolve_builder(self.name)(**self.kwargs)
        return self._resolved(node_id)

    def wire_spec(self):
        from repro.snp.wire import value_to_wire

        return (self.name, value_to_wire(dict(self.kwargs)))

    def __repr__(self):
        inner = ", ".join(f"{k}={v!r}" for k, v in self.kwargs.items())
        return f"AppFactory({self.name!r}{', ' if inner else ''}{inner})"


def factory_from_spec(spec):
    """Rebuild a factory from a :meth:`AppFactory.wire_spec` tuple."""
    from repro.snp.wire import value_from_wire

    name, kwargs_wire = spec
    return resolve_builder(name)(**value_from_wire(kwargs_wire))
