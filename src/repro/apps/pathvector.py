"""Path-vector routing (paper Section 3.1's routing example).

A simplified form of the protocol BGP uses: routes carry the full path, and
a router never accepts a route whose path already contains it (loop
freedom guarantees finite derivations, satisfying the paper's requirement).

Rules:

* **P1** ``route(@X,Y,(X,Y)) ← link(@X,Y)`` — one-hop routes;
* **P2** ``route(@Y,D,(Y,)+P) ← link(@X,Y) ∧ bestRoute(@X,D,P)`` with the
  guard ``Y ∉ P`` — a neighbor extends X's best route (evaluated at X,
  pushed to Y);
* **P3** ``bestRoute(@X,D,min<P>) ← route(@X,D,P)`` — shortest path wins,
  ties broken lexicographically.
"""

from repro.datalog import (
    Var, Expr, Atom, Guard, Rule, AggregateRule, Program,
    DifferentialDatalogApp,
)
from repro.model import Tup


def pathvector_program(max_path_len=16):
    X, Y, D, P = Var("X"), Var("Y"), Var("D"), Var("P")
    p1 = Rule(
        "P1",
        head=Atom("route", X, Y,
                  Expr(lambda b: (b["X"], b["Y"]), "(X,Y)", vars=(X, Y))),
        body=[Atom("link", X, Y)],
    )
    p2 = Rule(
        "P2",
        head=Atom("route", Y, D,
                  Expr(lambda b: (b["Y"],) + b["P"], "(Y,)+P",
                       vars=(Y, P))),
        body=[Atom("link", X, Y), Atom("bestRoute", X, D, P)],
        guards=[
            Guard(lambda b: b["Y"] not in b["P"], vars=(Y, P),
                  label="Y not in P"),
            Guard(lambda b: len(b["P"]) < max_path_len, vars=(P,),
                  label="len(P)<max"),
            Guard(lambda b: b["Y"] != b["D"], vars=(Y, D), label="Y!=D"),
        ],
    )
    p3 = AggregateRule(
        "P3",
        head=Atom("bestRoute", X, D, P),
        body=[Atom("route", X, D, P)],
        agg_var=P, func="min",
        key=lambda path: (len(path), path),
    )
    return Program([p1, p2, p3],
                   inputs={"link": 2}, outputs=("bestRoute",))


def build_pathvector_app_factory(max_path_len=16):
    """Registry builder (see :mod:`repro.apps`): compiles the program once
    and returns the plain per-node factory."""
    program = pathvector_program(max_path_len=max_path_len)
    return lambda node_id: DifferentialDatalogApp(node_id, program)


def pathvector_factory(max_path_len=16):
    from repro.apps import AppFactory
    return AppFactory("pathvector", max_path_len=max_path_len)


def link(x, y):
    return Tup("link", x, y)


def route(x, dest, path):
    return Tup("route", x, dest, tuple(path))


def best_route(x, dest, path):
    return Tup("bestRoute", x, dest, tuple(path))


def build_network(deployment, edges, node_overrides=None):
    """Create nodes for every endpoint in *edges* and insert symmetric
    links, letting the protocol converge between insertions."""
    node_overrides = node_overrides or {}
    factory = pathvector_factory()
    names = sorted({n for pair in edges for n in pair})
    nodes = {}
    for name in names:
        cls = node_overrides.get(name)
        if cls is None:
            nodes[name] = deployment.add_node(name, factory)
        else:
            nodes[name] = deployment.add_node(name, factory, node_cls=cls)
    for x, y in sorted(edges):
        nodes[x].insert(link(x, y))
        deployment.run()
        nodes[y].insert(link(y, x))
        deployment.run()
    return nodes
