"""MinCost routing — the paper's running example (Section 3.3).

Five routers connected by weighted links; each finds its lowest-cost path
to every destination. Three rules:

* **R1** — a router knows the cost of its direct links:
  ``cost(@X,Y,Y,K) ← link(@X,Y,K)``
* **R2** — it learns advertised routes from neighbors:
  ``cost(@C,D,X,K1+K2) ← link(@X,C,K1) ∧ bestCost(@X,D,K2)``
  (evaluated at X; the head lives at the neighbor C, so X pushes the
  derived tuple to C — exactly the ``cost(@c,d,b,5)`` flow of Figure 2)
* **R3** — it picks the cheapest known path:
  ``bestCost(@X,D,min<K>) ← cost(@X,D,Z,K)``

A ``max_cost`` guard bounds derivations (the paper requires all derivations
to be finite; without the bound, link deletions could count to infinity).
"""

from repro.datalog import (
    Var, Expr, Atom, Guard, Rule, AggregateRule, Program,
    DifferentialDatalogApp,
)
from repro.model import Tup

#: The link costs of the example network in Section 3.3's figure.
PAPER_TOPOLOGY = {
    ("a", "b"): 6,
    ("a", "e"): 3,
    ("a", "d"): 10,
    ("b", "c"): 2,
    ("b", "d"): 3,
    ("c", "d"): 5,
    ("d", "e"): 5,
    ("c", "e"): 1,
}


def mincost_program(max_cost=255):
    """Build the three-rule MinCost program."""
    X, Y, Z, K, K1, K2, C, D = (Var(n) for n in
                                ("X", "Y", "_Z", "K", "K1", "K2", "C", "D"))
    r1 = Rule(
        "R1",
        head=Atom("cost", X, Y, Y, K),
        body=[Atom("link", X, Y, K)],
    )
    r2 = Rule(
        "R2",
        head=Atom("cost", C, D, X,
                  Expr(lambda b: b["K1"] + b["K2"], "K1+K2",
                       vars=(K1, K2))),
        body=[Atom("link", X, C, K1), Atom("bestCost", X, D, K2)],
        guards=[
            Guard(lambda b: b["C"] != b["D"], vars=(C, D), label="C!=D"),
            Guard(lambda b: b["K1"] + b["K2"] <= max_cost,
                  vars=(K1, K2), label="K1+K2<=max"),
        ],
    )
    r3 = AggregateRule(
        "R3",
        head=Atom("bestCost", X, D, K),
        body=[Atom("cost", X, D, Z, K)],
        agg_var=K, func="min",
    )
    return Program([r1, r2, r3],
                   inputs={"link": 3}, outputs=("bestCost",))


def build_mincost_app_factory(max_cost=255):
    """Registry builder (see :mod:`repro.apps`): compiles the program once
    and returns the plain per-node factory."""
    program = mincost_program(max_cost=max_cost)
    return lambda node_id: DifferentialDatalogApp(node_id, program)


def mincost_factory(max_cost=255):
    """State-machine factory usable with Deployment.add_node."""
    from repro.apps import AppFactory
    return AppFactory("mincost", max_cost=max_cost)


def link(x, y, cost):
    """The base tuple ``link(@x, y, cost)``."""
    return Tup("link", x, y, cost)


def best_cost(x, dest, cost):
    """The derived tuple ``bestCost(@x, dest, cost)``."""
    return Tup("bestCost", x, dest, cost)


def cost(x, dest, via, k):
    return Tup("cost", x, dest, via, k)


def build_paper_network(deployment, topology=None, node_cls=None,
                        node_overrides=None):
    """Create the five-router network and insert its links.

    *node_overrides* maps node ids to SNooPyNode subclasses (adversaries).
    Links are inserted in both directions (the paper assumes symmetric
    links). Returns the node dict. Call ``deployment.run()`` afterwards to
    let the protocol converge.
    """
    topology = PAPER_TOPOLOGY if topology is None else topology
    node_overrides = node_overrides or {}
    factory = mincost_factory()
    names = sorted({n for pair in topology for n in pair})
    nodes = {}
    for name in names:
        cls = node_overrides.get(name)
        if cls is None:
            nodes[name] = deployment.add_node(name, factory)
        else:
            nodes[name] = deployment.add_node(name, factory, node_cls=cls)
    for (x, y), k in sorted(topology.items()):
        nodes[x].insert(link(x, y, k))
        deployment.run()
        nodes[y].insert(link(y, x, k))
        deployment.run()
    return nodes
