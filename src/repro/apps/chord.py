"""A declarative Chord DHT (paper Section 6.1).

The paper's first application is a declarative Chord running on RapidNet,
with provenance *inferred* automatically from the rules (extraction method
#1). This module implements Chord as a Datalog program over this library's
engine, covering:

* successor/predecessor selection over the known-node set (ring distance
  minimization);
* finger entries (one per power-of-two offset, seeded by ``fingerIndex``
  base tuples);
* gossip-based stabilization driven by periodic tick base tuples — each
  tick re-derives per-tick ``ping`` tuples toward the successor (keep-alive
  traffic) and pushes ``shareNode`` facts that extend the neighborhood's
  knowledge;
* iterative lookups: a ``lookup`` tuple hops node to node, each hop picking
  the known node that minimizes the remaining ring distance to the key
  (strictly decreasing, so lookups terminate), and resolving to a
  ``lookupResult`` at the requester when the key falls in the current
  node's (id, successor-id] arc.

The Eclipse attack of Section 7.2 is modeled in two flavors:
``poison_known_nodes`` (the attacker lies about its *inputs*, inserting
bogus knownNode base tuples — undetectable automatically, but the
provenance query exposes the attacker as the root of the poisoned finger)
and fabricated ``lookupResult`` messages via
:class:`repro.snp.adversary.FabricatorNode` (detected: red send vertex).
"""

from repro.datalog import (
    Var, Expr, Atom, Guard, Rule, AggregateRule, Program,
    DifferentialDatalogApp,
)
from repro.model import Tup


def ring_distance(a, b, ring_bits):
    """Clockwise distance from id *a* to id *b* on the 2^ring_bits ring."""
    return (b - a) % (1 << ring_bits)


def in_halfopen_arc(key, left, right, ring_bits):
    """True iff *key* lies in the half-open ring arc (left, right].

    The left endpoint is excluded: a key equal to a node's own id is owned
    by that node, not by its successor (Chord's successor(k) is the first
    node with id ≥ k).
    """
    if left == right:
        return True  # a single-node ring owns everything
    distance = ring_distance(left, key, ring_bits)
    return 0 < distance <= ring_distance(left, right, ring_bits)


def chord_program(ring_bits=16):
    """Build the Chord rule set for a 2^ring_bits identifier ring."""
    size = 1 << ring_bits
    N, Id, M, MId, S, SId, D = (Var(v) for v in
                                ("N", "Id", "M", "MId", "S", "SId", "D"))
    K, R, Q, T, J, Off, P = (Var(v) for v in
                             ("K", "R", "Q", "T", "J", "Off", "P"))
    # Leading-underscore variables mark intentional wildcards for ndlint
    # (each occurs at most once per rule, so no accidental self-joins).
    _M, _MId, _S, _SId, _R = (Var(v) for v in
                              ("_M", "_MId", "_S", "_SId", "_R"))

    def dist(b):
        return (b["MId"] - b["Id"]) % size

    # --- successor selection -------------------------------------------------
    succ_cand = Rule(
        "SC",
        head=Atom("succCand", N, M, MId,
                  Expr(dist, "dist(Id,MId)", vars=(Id, MId))),
        body=[Atom("knownNode", N, M, MId), Atom("node", N, Id)],
        guards=[Guard(lambda b: b["M"] != b["N"], vars=(M, N),
                      label="M!=N")],
    )
    succ_dist = AggregateRule(
        "SD",
        head=Atom("succDist", N, D),
        body=[Atom("succCand", N, _M, _MId, D)],
        agg_var=D, func="min",
    )
    succ = Rule(
        "S1",
        head=Atom("succ", N, M, MId),
        body=[Atom("succCand", N, M, MId, D), Atom("succDist", N, D)],
    )

    # --- predecessor ---------------------------------------------------------
    pred_cand = Rule(
        "PC",
        head=Atom("predCand", N, M, MId,
                  Expr(lambda b: (b["Id"] - b["MId"]) % size, "dist(MId,Id)",
                       vars=(Id, MId))),
        body=[Atom("knownNode", N, M, MId), Atom("node", N, Id)],
        guards=[Guard(lambda b: b["M"] != b["N"], vars=(M, N),
                      label="M!=N")],
    )
    pred_dist = AggregateRule(
        "PD",
        head=Atom("predDist", N, D),
        body=[Atom("predCand", N, _M, _MId, D)],
        agg_var=D, func="min",
    )
    pred = Rule(
        "P1",
        head=Atom("pred", N, M, MId),
        body=[Atom("predCand", N, M, MId, D), Atom("predDist", N, D)],
    )

    # --- fingers ---------------------------------------------------------------
    # fingerIndex(@N, J, Off) base tuples carry the 2^J offsets.
    finger_cand = Rule(
        "FC",
        head=Atom("fingerCand", N, J, M, MId,
                  Expr(lambda b: (b["MId"] - (b["Id"] + b["Off"])) % size,
                       "dist(Id+Off,MId)", vars=(Id, Off, MId))),
        body=[Atom("fingerIndex", N, J, Off), Atom("knownNode", N, M, MId),
              Atom("node", N, Id)],
        guards=[Guard(lambda b: b["M"] != b["N"], vars=(M, N),
                      label="M!=N")],
    )
    finger_dist = AggregateRule(
        "FD",
        head=Atom("fingerDist", N, J, D),
        body=[Atom("fingerCand", N, J, _M, _MId, D)],
        agg_var=D, func="min",
    )
    finger = Rule(
        "F1",
        head=Atom("finger", N, J, M, MId),
        body=[Atom("fingerCand", N, J, M, MId, D),
              Atom("fingerDist", N, J, D)],
    )

    # --- stabilization gossip ---------------------------------------------------
    # Per-tick keep-alive to the successor (periodic traffic), and
    # knowledge propagation over the *static* bootstrap peer set. Gossiping
    # over derived succ/pred pointers would create a cross-node retraction
    # cycle (learning a node moves succ, which retracts earlier gossip,
    # which can flap forever); over gossipPeer base tuples the propagation
    # is monotone, so it terminates — and the bootstrap ring still reaches
    # every member transitively.
    ping = Rule(
        "G1",
        head=Atom("ping", S, N, T),
        body=[Atom("stabTick", N, T), Atom("succ", N, S, _SId)],
    )
    share = Rule(
        "G2",
        head=Atom("shareNode", P, M, MId),
        body=[Atom("gossipPeer", N, P), Atom("knownNode", N, M, MId)],
        guards=[Guard(lambda b: b["M"] != b["P"], vars=(M, P),
                      label="M!=P")],
    )
    learn = Rule(
        "G4",
        head=Atom("knownNode", N, M, MId),
        body=[Atom("shareNode", N, M, MId)],
        guards=[Guard(lambda b: b["M"] != b["N"], vars=(M, N),
                      label="M!=N")],
    )

    # --- lookups -----------------------------------------------------------------
    start = Rule(
        "L0",
        head=Atom("lookup", N, K, N, Q),
        body=[Atom("lookupReq", N, K, Q)],
    )
    resolve = Rule(
        "L1",
        head=Atom("lookupResult", R, Q, K, S, SId),
        body=[Atom("lookup", N, K, R, Q), Atom("node", N, Id),
              Atom("succ", N, S, SId)],
        guards=[Guard(lambda b: in_halfopen_arc(b["K"], b["Id"], b["SId"],
                                                ring_bits),
                      vars=(K, Id, SId), label="K in (Id,SId]")],
    )
    hop_cand = Rule(
        "L2",
        head=Atom("hopCand", N, K, R, Q, M,
                  Expr(lambda b: (b["K"] - b["MId"]) % size, "dist(MId,K)",
                       vars=(K, MId))),
        body=[Atom("lookup", N, K, R, Q), Atom("node", N, Id),
              Atom("succ", N, _S, SId), Atom("knownNode", N, M, MId)],
        guards=[
            Guard(lambda b: not in_halfopen_arc(b["K"], b["Id"], b["SId"],
                                                ring_bits),
                  vars=(K, Id, SId), label="K not in (Id,SId]"),
            Guard(lambda b: b["M"] != b["N"], vars=(M, N), label="M!=N"),
            # Strict progress toward the key guarantees termination.
            Guard(lambda b: ((b["K"] - b["MId"]) % size)
                            < ((b["K"] - b["Id"]) % size),
                  vars=(K, MId, Id), label="closer(M,K)"),
        ],
    )
    hop_best = AggregateRule(
        "L3",
        head=Atom("hopBest", N, K, Q, D),
        body=[Atom("hopCand", N, K, _R, Q, _M, D)],
        agg_var=D, func="min",
    )
    forward = Rule(
        "L4",
        head=Atom("lookup", M, K, R, Q),
        body=[Atom("hopCand", N, K, R, Q, M, D), Atom("hopBest", N, K, Q, D)],
    )

    return Program(
        [
            succ_cand, succ_dist, succ,
            pred_cand, pred_dist, pred,
            finger_cand, finger_dist, finger,
            ping, share, learn,
            start, resolve, hop_cand, hop_best, forward,
        ],
        inputs={"node": 2, "knownNode": 3, "fingerIndex": 3,
                "gossipPeer": 2, "stabTick": 2, "lookupReq": 3},
        outputs=("lookupResult", "finger", "pred", "ping"),
    )


def build_chord_app_factory(ring_bits=16):
    """Registry builder (see :mod:`repro.apps`): compiles the program once
    and returns the plain per-node factory."""
    program = chord_program(ring_bits=ring_bits)
    return lambda node_id: DifferentialDatalogApp(node_id, program)


def chord_factory(ring_bits=16):
    from repro.apps import AppFactory
    return AppFactory("chord", ring_bits=ring_bits)


# ----------------------------------------------------------------- tuples

def node_tuple(n, node_id_hash):
    return Tup("node", n, node_id_hash)


def known_node(n, m, m_id):
    return Tup("knownNode", n, m, m_id)


def finger_index(n, j, offset):
    return Tup("fingerIndex", n, j, offset)


def gossip_peer(n, p):
    return Tup("gossipPeer", n, p)


def stab_tick(n, t):
    return Tup("stabTick", n, t)


def lookup_req(n, key, req_id):
    return Tup("lookupReq", n, key, req_id)


def lookup_result(r, req_id, key, owner, owner_id):
    return Tup("lookupResult", r, req_id, key, owner, owner_id)


class ChordNetwork:
    """Drives a Chord ring inside a deployment.

    Node ids are spread deterministically around the ring. ``bootstrap``
    seeds each node with knowledge of a few ring neighbors; stabilization
    rounds then gossip the rest.
    """

    def __init__(self, deployment, n_nodes, ring_bits=16, finger_count=None,
                 seed=7, node_overrides=None):
        self.deployment = deployment
        self.ring_bits = ring_bits
        self.size = 1 << ring_bits
        self.finger_count = (
            min(ring_bits, 8) if finger_count is None else finger_count
        )
        factory = chord_factory(ring_bits=ring_bits)
        import random
        rng = random.Random(seed)
        ids = sorted(rng.sample(range(self.size), n_nodes))
        self.members = []           # [(name, ring_id)] sorted by ring id
        node_overrides = node_overrides or {}
        for index, ring_id in enumerate(ids):
            name = f"n{index}"
            cls = node_overrides.get(name)
            if cls is None:
                self.deployment.add_node(name, factory)
            else:
                self.deployment.add_node(name, factory, node_cls=cls)
            self.members.append((name, ring_id))
        self._tick_counter = {}

    def node(self, name):
        return self.deployment.node(name)

    def ring_id(self, name):
        for member, ring_id in self.members:
            if member == name:
                return ring_id
        raise KeyError(name)

    def owner_of(self, key):
        """Ground truth: the ring member whose arc contains *key*."""
        for name, ring_id in self.members:
            if ring_id >= key:
                return name, ring_id
        return self.members[0]

    def bootstrap(self, neighbors=2):
        """Insert node/finger-index base tuples plus initial ring
        knowledge (each node learns its *neighbors* ring successors)."""
        count = len(self.members)
        for index, (name, ring_id) in enumerate(self.members):
            node = self.node(name)
            node.insert(node_tuple(name, ring_id))
            for j in range(self.finger_count):
                offset = 1 << (self.ring_bits - self.finger_count + j)
                node.insert(finger_index(name, j, offset))
            for step in range(1, neighbors + 1):
                peer, peer_id = self.members[(index + step) % count]
                node.insert(known_node(name, peer, peer_id))
                node.insert(gossip_peer(name, peer))
            prev, _prev_id = self.members[(index - 1) % count]
            node.insert(gossip_peer(name, prev))
        self.deployment.run()

    def stabilize(self, rounds=3):
        """Run gossip rounds: each round bumps every node's tick."""
        for _round in range(rounds):
            for name, _ring_id in self.members:
                node = self.node(name)
                old = self._tick_counter.get(name)
                new = 0 if old is None else old + 1
                if old is not None:
                    node.delete(stab_tick(name, old))
                node.insert(stab_tick(name, new))
                self._tick_counter[name] = new
            self.deployment.run()

    def lookup(self, from_name, key, req_id):
        """Issue a lookup and run the network to quiescence; returns the
        lookupResult tuples that arrived at the requester."""
        node = self.node(from_name)
        node.insert(lookup_req(from_name, key, req_id))
        self.deployment.run()
        return [
            t for t in node.app.tuples_of("lookupResult")
            if t.args[0] == req_id
        ]

    # ------------------------------------------------------------ attacks

    def poison_known_nodes(self, attacker_name, claimed_id=None,
                           victim_name=None):
        """Eclipse-attack flavor 2: the attacker lies about its *inputs*,
        claiming to be a node at *claimed_id*. By default the claimed id is
        placed exactly on the *victim*'s largest finger target, so once the
        lie gossips around, the victim's finger points at the attacker.
        Undetectable automatically (Section 4.2 limitation), but provenance
        queries expose the attacker's insert as the poisoned finger's
        origin."""
        attacker = self.node(attacker_name)
        if victim_name is None:
            victim_name = next(name for name, _r in self.members
                               if name != attacker_name)
        if claimed_id is None:
            largest_offset = 1 << (self.ring_bits - 1)
            claimed_id = (self.ring_id(victim_name)
                          + largest_offset) % self.size
            taken = {rid for _n, rid in self.members}
            while claimed_id in taken:
                claimed_id = (claimed_id + 1) % self.size
        attacker.insert(known_node(attacker_name, attacker_name,
                                   claimed_id))
        self.deployment.run()
        return claimed_id
