"""A text parser for the rule DSL (DDlog-style surface syntax).

The paper's prototype expresses programs in Distributed Datalog. This
parser accepts a compact textual form and produces a :class:`Program`:

    # MinCost (paper Section 3.3)
    input link/3.
    output bestCost.
    R1: cost(@X, Y, Y, K) :- link(@X, Y, K).
    R2: cost(@C, D, X, K1+K2) :- link(@X, C, K1), bestCost(@X, D, K2),
        C != D.
    R3: bestCost(@X, D, min<K>) :- cost(@X, D, Z, K).

Syntax:

* ``Name: head :- body.`` — one rule per ``.``-terminated clause; ``#``
  starts a comment.
* Identifiers starting with an upper-case letter or ``_`` are variables
  (a leading ``_`` marks an intentional wildcard for the analyzer);
  quoted strings and numerals are constants; the first argument of every
  atom must be the ``@location``.
* Head arguments may be arithmetic expressions over variables
  (``K1+K2``, ``K*2``); they compile to :class:`Expr`.
* Comparisons in the body (``X != Y``, ``K < 10``) become guards.
* ``min<K>`` / ``max<K>`` / ``sum<K>`` / ``count<K>`` in the head makes
  the rule an :class:`AggregateRule`.
* ``:~`` instead of ``:-`` declares a :class:`MaybeRule`.
* ``input link/3.`` declares a base relation (with its arity, counting
  the @location) and ``output bestCost.`` a relation consumed outside
  the program — both feed the analyzer's closed-world liveness checks,
  so ``input`` and ``output`` are reserved words at clause starts.

Every AST node is built with a :class:`~repro.datalog.ast.Span` (line,
column, rule index), so parse errors and analyzer diagnostics point at
real source locations. :func:`parse_program` runs the static analyzer
(:mod:`repro.datalog.analysis`) by default; pass ``check=False`` to get
the raw program (e.g. to render its diagnostics yourself).
"""

import re

from repro.datalog.ast import (
    AggregateRule, Atom, Expr, Guard, MaybeRule, Rule, Span, Var,
)
from repro.datalog.engine import Program
from repro.util.errors import ParseError

_TOKEN = re.compile(r"""
      (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<number>-?\d+(\.\d+)?)
    | (?P<string>'[^']*'|"[^\"]*")
    | (?P<op><=|>=|!=|==|:-|:~|[-+*/(),.@<>:])
    | (?P<ws>\s+)
""", re.VERBOSE)

_COMPARE_OPS = {"<", ">", "<=", ">=", "!=", "=="}
_AGG_FUNCS = ("min", "max", "sum", "count")
_DECL_KEYWORDS = ("input", "output")


class _Token:
    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind, value, line, col):
        self.kind = kind
        self.value = value
        self.line = line
        self.col = col

    def span(self, rule_index=None):
        return Span(self.line, self.col, length=max(1, len(self.value)),
                    rule_index=rule_index)


_EOF = _Token(None, "", 0, 0)


def _tokenize(text):
    tokens = []
    position = 0
    line = 1
    line_start = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise ParseError(
                f"rule syntax error at {text[position:position + 20]!r}",
                line=line, col=position - line_start + 1,
            )
        if match.lastgroup == "ws":
            chunk = match.group()
            newlines = chunk.count("\n")
            if newlines:
                line += newlines
                line_start = position + chunk.rindex("\n") + 1
        else:
            tokens.append(_Token(match.lastgroup, match.group(), line,
                                 position - line_start + 1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0
        self.rule_index = 0

    def peek(self, offset=0):
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else _EOF

    def take(self, expected=None):
        token = self.peek()
        if token.kind is None:
            last = self.tokens[-1] if self.tokens else _EOF
            raise ParseError("unexpected end of rule",
                             line=last.line or None, col=last.col or None)
        if expected is not None and token.value != expected:
            raise ParseError(
                f"expected {expected!r}, got {token.value!r}",
                line=token.line, col=token.col,
            )
        self.position += 1
        return token

    def at_end(self):
        return self.position >= len(self.tokens)

    def span(self, token):
        return token.span(rule_index=self.rule_index)

    # --------------------------------------------------------- components

    def parse_declaration(self):
        """``input name/arity.`` or ``output name.`` → (kw, name, arity)."""
        keyword = self.take().value
        name_token = self.take()
        if name_token.kind != "name":
            raise ParseError(
                f"expected a relation name after '{keyword}', got "
                f"{name_token.value!r}",
                line=name_token.line, col=name_token.col,
            )
        arity = None
        if self.peek().value == "/":
            self.take("/")
            arity_token = self.take()
            if arity_token.kind != "number" or "." in arity_token.value:
                raise ParseError(
                    f"expected an integer arity, got {arity_token.value!r}",
                    line=arity_token.line, col=arity_token.col,
                )
            arity = int(arity_token.value)
        self.take(".")
        return keyword, name_token.value, arity

    def parse_rule(self):
        name_token = self.take()
        name = name_token.value
        rule_span = self.span(name_token)
        self.take(":")
        head, agg = self.parse_atom(allow_expr=True, allow_agg=True)
        arrow_token = self.take()
        arrow = arrow_token.value
        if arrow not in (":-", ":~"):
            raise ParseError(f"expected ':-' or ':~', got {arrow!r}",
                             line=arrow_token.line, col=arrow_token.col)
        body = []
        guards = []
        while True:
            if self.peek().value == ".":
                self.take(".")
                break
            if self._next_is_comparison():
                guards.append(self.parse_comparison())
            else:
                atom, body_agg = self.parse_atom()
                if body_agg is not None:
                    raise ParseError(
                        f"rule {name}: aggregates are head-only",
                        line=atom.span.line, col=atom.span.col,
                    )
                body.append(atom)
            if self.peek().value == ",":
                self.take(",")
        self.rule_index += 1
        if agg is not None:
            func, agg_var = agg
            if arrow == ":~":
                raise ParseError(
                    f"rule {name}: a maybe rule cannot aggregate",
                    line=rule_span.line, col=rule_span.col,
                )
            return AggregateRule(name, head, body, agg_var=agg_var,
                                 func=func, guards=tuple(guards),
                                 span=rule_span)
        if arrow == ":~":
            return MaybeRule(name, head, body, guards=tuple(guards),
                             span=rule_span)
        return Rule(name, head, body, guards=tuple(guards), span=rule_span)

    def _next_is_comparison(self):
        """A comparison clause starts with a term followed by a compare op
        (an atom starts with name + '(')."""
        token = self.peek()
        if token.kind == "name" and self.peek(1).value == "(":
            return False
        return True

    def parse_atom(self, allow_expr=True, allow_agg=False):
        relation_token = self.take()
        relation = relation_token.value
        atom_span = self.span(relation_token)
        self.take("(")
        self.take("@")
        loc = self.parse_term(allow_expr=False)
        terms = []
        agg = None
        while self.peek().value != ")":
            self.take(",")
            token = self.peek()
            if (allow_agg and token.kind == "name"
                    and token.value in _AGG_FUNCS
                    and self.peek(1).value == "<"):
                func_token = self.take()          # func
                self.take("<")
                var_token = self.take()
                self.take(">")
                agg_var = Var(var_token.value, span=self.span(var_token))
                agg = (func_token.value, agg_var)
                terms.append(agg_var)
            else:
                terms.append(self.parse_term(allow_expr=allow_expr))
        self.take(")")
        return Atom(relation, loc, *terms, span=atom_span), agg

    def parse_term(self, allow_expr=True):
        """A term: constant, variable, or (head-only) arithmetic over
        variables and constants."""
        first_token = self.peek()
        expr_tokens = [self.parse_operand()]
        while allow_expr and self.peek().value in ("+", "-", "*", "/"):
            expr_tokens.append(self.take().value)
            expr_tokens.append(self.parse_operand())
        if len(expr_tokens) == 1:
            return expr_tokens[0]
        return _compile_expression(expr_tokens, span=self.span(first_token))

    def parse_operand(self):
        token = self.take()
        kind, value = token.kind, token.value
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "string":
            return value[1:-1]
        if kind == "name":
            if value[0].isupper() or value[0] == "_":
                return Var(value, span=self.span(token))
            return value  # lower-case bare word: a constant symbol
        raise ParseError(f"unexpected token {value!r} in term",
                         line=token.line, col=token.col)

    def parse_comparison(self):
        first_token = self.peek()
        left = self.parse_term()
        op_token = self.take()
        op = op_token.value
        if op not in _COMPARE_OPS:
            raise ParseError(f"expected comparison, got {op!r}",
                             line=op_token.line, col=op_token.col)
        right = self.parse_term()
        return _compile_guard(left, op, right, span=self.span(first_token))


def _value_of(term, bindings):
    if isinstance(term, Var):
        return bindings[term.name]
    if isinstance(term, Expr):
        return term.evaluate(bindings)
    return term


def _compile_expression(parts, span=None):
    """Fold [operand, op, operand, ...] left to right into an Expr."""
    label = "".join(
        part if isinstance(part, str) else repr(part) for part in parts
    )
    var_names = tuple(
        part.name for part in parts if isinstance(part, Var)
    )

    def evaluate(bindings):
        accumulator = _value_of(parts[0], bindings)
        index = 1
        while index < len(parts):
            op = parts[index]
            value = _value_of(parts[index + 1], bindings)
            if op == "+":
                accumulator = accumulator + value
            elif op == "-":
                accumulator = accumulator - value
            elif op == "*":
                accumulator = accumulator * value
            else:
                accumulator = accumulator / value
            index += 2
        return accumulator

    return Expr(evaluate, label, vars=var_names, span=span)


def _term_vars(term):
    """Variable names a comparison side reads (None when unknown)."""
    if isinstance(term, Var):
        return (term.name,)
    if isinstance(term, Expr):
        return term.vars
    return ()


def _compile_guard(left, op, right, span=None):
    import operator
    fn = {
        "<": operator.lt, ">": operator.gt, "<=": operator.le,
        ">=": operator.ge, "!=": operator.ne, "==": operator.eq,
    }[op]

    def guard(bindings):
        return fn(_value_of(left, bindings), _value_of(right, bindings))

    left_vars = _term_vars(left)
    right_vars = _term_vars(right)
    declared = (
        None if left_vars is None or right_vars is None
        else left_vars + right_vars
    )
    return Guard(guard, vars=declared, label=f"{left!r}{op}{right!r}",
                 span=span)


def _strip_comments(text):
    return "\n".join(
        line.split("#", 1)[0] for line in text.splitlines()
    )


def _parse(text):
    """(rules, inputs, outputs) from program text."""
    parser = _Parser(_tokenize(_strip_comments(text)))
    rules = []
    inputs = {}
    outputs = []
    while not parser.at_end():
        token = parser.peek()
        if (token.kind == "name" and token.value in _DECL_KEYWORDS
                and parser.peek(1).kind == "name"):
            keyword, name, arity = parser.parse_declaration()
            if keyword == "input":
                inputs[name] = arity
            else:
                outputs.append(name)
        else:
            rules.append(parser.parse_rule())
    return rules, inputs, outputs


def parse_rules(text):
    """Parse a program text into a list of rules."""
    return _parse(text)[0]


def parse_program(text, check=True):
    """Parse a program text into a :class:`Program`.

    With ``check=True`` (the default) the program must pass the static
    analyzer with no error-severity diagnostics, else
    :class:`~repro.datalog.analysis.ProgramAnalysisError` is raised.
    """
    rules, inputs, outputs = _parse(text)
    program = Program(rules, inputs=inputs or None, outputs=outputs)
    if check:
        program.ensure_checked()
    return program
