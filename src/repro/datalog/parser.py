"""A text parser for the rule DSL (DDlog-style surface syntax).

The paper's prototype expresses programs in Distributed Datalog. This
parser accepts a compact textual form and produces a :class:`Program`:

    # MinCost (paper Section 3.3)
    R1: cost(@X, Y, Y, K) :- link(@X, Y, K).
    R2: cost(@C, D, X, K1+K2) :- link(@X, C, K1), bestCost(@X, D, K2),
        C != D.
    R3: bestCost(@X, D, min<K>) :- cost(@X, D, Z, K).

Syntax:

* ``Name: head :- body.`` — one rule per ``.``-terminated clause; ``#``
  starts a comment.
* Upper-case identifiers are variables; quoted strings and numerals are
  constants; the first argument of every atom must be the ``@location``.
* Head arguments may be arithmetic expressions over variables
  (``K1+K2``, ``K*2``); they compile to :class:`Expr`.
* Comparisons in the body (``X != Y``, ``K < 10``) become guards.
* ``min<K>`` / ``max<K>`` / ``sum<K>`` / ``count<K>`` in the head makes
  the rule an :class:`AggregateRule`.
* ``:~`` instead of ``:-`` declares a :class:`MaybeRule`.
"""

import re

from repro.datalog.ast import (
    AggregateRule, Atom, Expr, Guard, MaybeRule, Rule, Var,
)
from repro.datalog.engine import Program
from repro.util.errors import ConfigurationError

_TOKEN = re.compile(r"""
      (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<number>-?\d+(\.\d+)?)
    | (?P<string>'[^']*'|"[^\"]*")
    | (?P<op><=|>=|!=|==|:-|:~|[-+*/(),.@<>:])
    | (?P<ws>\s+)
""", re.VERBOSE)

_COMPARE_OPS = {"<", ">", "<=", ">=", "!=", "=="}
_AGG_FUNCS = ("min", "max", "sum", "count")


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise ConfigurationError(
                f"rule syntax error at ...{text[position:position + 20]!r}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append((match.lastgroup, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    def peek(self, offset=0):
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else (None, None)

    def take(self, expected=None):
        kind, value = self.peek()
        if kind is None:
            raise ConfigurationError("unexpected end of rule")
        if expected is not None and value != expected:
            raise ConfigurationError(
                f"expected {expected!r}, got {value!r}"
            )
        self.position += 1
        return kind, value

    def at_end(self):
        return self.position >= len(self.tokens)

    # --------------------------------------------------------- components

    def parse_rule(self):
        _kind, name = self.take()
        self.take(":")
        head, agg = self.parse_atom(allow_expr=True, allow_agg=True)
        _kind, arrow = self.take()
        if arrow not in (":-", ":~"):
            raise ConfigurationError(f"expected ':-' or ':~', got {arrow!r}")
        body = []
        guards = []
        while True:
            if self.peek()[1] == ".":
                self.take(".")
                break
            if self._next_is_comparison():
                guards.append(self.parse_comparison())
            else:
                atom, body_agg = self.parse_atom()
                if body_agg is not None:
                    raise ConfigurationError(
                        f"rule {name}: aggregates are head-only"
                    )
                body.append(atom)
            if self.peek()[1] == ",":
                self.take(",")
        if agg is not None:
            func, agg_var = agg
            if arrow == ":~":
                raise ConfigurationError(
                    f"rule {name}: a maybe rule cannot aggregate"
                )
            return AggregateRule(name, head, body, agg_var=agg_var,
                                 func=func, guards=tuple(guards))
        if arrow == ":~":
            return MaybeRule(name, head, body, guards=tuple(guards))
        return Rule(name, head, body, guards=tuple(guards))

    def _next_is_comparison(self):
        """A comparison clause starts with a term followed by a compare op
        (an atom starts with name + '(')."""
        kind, value = self.peek()
        if kind == "name" and self.peek(1)[1] == "(":
            return False
        return True

    def parse_atom(self, allow_expr=True, allow_agg=False):
        _kind, relation = self.take()
        self.take("(")
        self.take("@")
        loc = self.parse_term(allow_expr=False)
        terms = []
        agg = None
        while self.peek()[1] != ")":
            self.take(",")
            kind, value = self.peek()
            if (allow_agg and kind == "name" and value in _AGG_FUNCS
                    and self.peek(1)[1] == "<"):
                self.take()          # func
                self.take("<")
                _k, var_name = self.take()
                self.take(">")
                agg_var = Var(var_name)
                agg = (value, agg_var)
                terms.append(agg_var)
            else:
                terms.append(self.parse_term(allow_expr=allow_expr))
        self.take(")")
        return Atom(relation, loc, *terms), agg

    def parse_term(self, allow_expr=True):
        """A term: constant, variable, or (head-only) arithmetic over
        variables and constants."""
        expr_tokens = [self.parse_operand()]
        while allow_expr and self.peek()[1] in ("+", "-", "*", "/"):
            _k, op = self.take()
            expr_tokens.append(op)
            expr_tokens.append(self.parse_operand())
        if len(expr_tokens) == 1:
            return expr_tokens[0]
        return _compile_expression(expr_tokens)

    def parse_operand(self):
        kind, value = self.take()
        if kind == "number":
            return float(value) if "." in value else int(value)
        if kind == "string":
            return value[1:-1]
        if kind == "name":
            if value[0].isupper():
                return Var(value)
            return value  # lower-case bare word: a constant symbol
        raise ConfigurationError(f"unexpected token {value!r} in term")

    def parse_comparison(self):
        left = self.parse_term()
        _kind, op = self.take()
        if op not in _COMPARE_OPS:
            raise ConfigurationError(f"expected comparison, got {op!r}")
        right = self.parse_term()
        return _compile_guard(left, op, right)


def _value_of(term, bindings):
    if isinstance(term, Var):
        return bindings[term.name]
    if isinstance(term, Expr):
        return term.evaluate(bindings)
    return term


def _compile_expression(parts):
    """Fold [operand, op, operand, ...] left to right into an Expr."""
    label = "".join(
        part if isinstance(part, str) else repr(part) for part in parts
    )
    var_names = tuple(
        part.name for part in parts if isinstance(part, Var)
    )

    def evaluate(bindings):
        accumulator = _value_of(parts[0], bindings)
        index = 1
        while index < len(parts):
            op = parts[index]
            value = _value_of(parts[index + 1], bindings)
            if op == "+":
                accumulator = accumulator + value
            elif op == "-":
                accumulator = accumulator - value
            elif op == "*":
                accumulator = accumulator * value
            else:
                accumulator = accumulator / value
            index += 2
        return accumulator

    return Expr(evaluate, label, vars=var_names)


def _term_vars(term):
    """Variable names a comparison side reads (None when unknown)."""
    if isinstance(term, Var):
        return (term.name,)
    if isinstance(term, Expr):
        return term.vars
    return ()


def _compile_guard(left, op, right):
    import operator
    fn = {
        "<": operator.lt, ">": operator.gt, "<=": operator.le,
        ">=": operator.ge, "!=": operator.ne, "==": operator.eq,
    }[op]

    def guard(bindings):
        return fn(_value_of(left, bindings), _value_of(right, bindings))

    left_vars = _term_vars(left)
    right_vars = _term_vars(right)
    declared = (
        None if left_vars is None or right_vars is None
        else left_vars + right_vars
    )
    return Guard(guard, vars=declared, label=f"{left!r}{op}{right!r}")


def parse_rules(text):
    """Parse a program text into a list of rules."""
    stripped = "\n".join(
        line.split("#", 1)[0] for line in text.splitlines()
    )
    parser = _Parser(_tokenize(stripped))
    rules = []
    while not parser.at_end():
        rules.append(parser.parse_rule())
    return rules


def parse_program(text):
    """Parse a program text into a :class:`Program`."""
    return Program(parse_rules(text))
