"""The incremental Datalog engine: a deterministic node state machine.

:class:`DatalogApp` implements :class:`repro.model.StateMachine` over a
:class:`Program` of rules. It maintains derivations incrementally:

* a base-tuple insert/delete or an incoming ``+τ/−τ`` notification starts a
  cascade of (un)derivations, processed from a FIFO worklist in a canonical
  deterministic order (assumption 6 of the paper: node computation must be
  deterministic, since replay regenerates the provenance graph);
* a derivation whose head is located on another node emits a ``Snd`` output
  pushing ``+τ`` there (``−τ`` when the derivation is lost), exactly the
  cross-node notification protocol of Section 3.1;
* aggregate rules (min/max/sum/count) are recomputed per group whenever a
  contributing tuple changes; value changes surface as an ``Und`` of the old
  head followed by a ``Der`` of the new one.

Multiple simultaneous derivations of one tuple are tracked with reference
counts; the reported provenance is the first surviving derivation (the
unique-derivation simplification of Appendix A.1, see DESIGN.md).

Evaluation is compile-then-execute: :class:`Program` compiles every rule
into an indexed join plan (:mod:`repro.datalog.plan`) and the cascade
executes those plans against the store's secondary hash indexes, so a
triggering tuple touches only the tuples that can actually join with it.
The scan-based strategy survives as :class:`repro.datalog.naive.
NaiveDatalogApp`, the reference both implementations are property-tested
against.

The evaluation model is *differential*: every ``+τ/−τ`` is a weighted
z-set delta (:mod:`repro.datalog.zset`) run to fixpoint. A per-trigger
:class:`~repro.datalog.plan.JoinPlan` executes the delta-lifted join
ΔR⋈S (the triggering tuple is the singleton delta side), retraction is a
weight −1 update serviced by the store's support counts — never by
snapshot-restore — and :meth:`DatalogApp.delta_batch` journals a batch of
events into its net output z-set (a retract-then-reinsert cancels to the
empty delta). Four counters expose the differential cost model:
``delta_tuples_in`` (presence toggles consumed), ``delta_tuples_out``
(derivation changes emitted), ``retractions_applied`` (instances dropped
by support loss) and ``support_rederivations`` (min/max recomputes forced
by a disappearing support). :class:`repro.datalog.differential.
DifferentialDatalogApp` adds incrementally maintained aggregate groups on
top of this base.
"""

from collections import deque
from contextlib import contextmanager

from repro.datalog.analysis import analyze
from repro.datalog.ast import Var, Rule, AggregateRule, MaybeRule
from repro.datalog.plan import compile_rule
from repro.datalog.store import TupleStore, DerivationInstance
from repro.datalog.zset import ZSet
from repro.model import Ack, Der, Snd, StateMachine, Und, MINUS, PLUS
from repro.util.errors import ConfigurationError


class Program:
    """An ordered collection of rules, indexed by body relation.

    Every rule is compiled at :meth:`add` time into an indexed join plan
    (:mod:`repro.datalog.plan`); ``plans[i]`` is the compiled form of
    ``rules[i]``.

    *inputs* / *outputs* optionally declare the base relations the
    deployment inserts (``{relation: arity-or-None}`` or names) and the
    relations consumed outside the program — they enable the analyzer's
    closed-world liveness checks (:mod:`repro.datalog.analysis`).
    """

    def __init__(self, rules=(), inputs=None, outputs=None):
        self.rules = []
        self.plans = []
        self._by_body_relation = {}
        self.declared_inputs = inputs
        self.declared_outputs = tuple(outputs) if outputs else ()
        self._analysis = None
        self._checked = False
        for rule in rules:
            self.add(rule)

    def add(self, rule):
        if not isinstance(rule, (Rule, AggregateRule, MaybeRule)):
            raise ConfigurationError(f"not a rule: {rule!r}")
        index = len(self.rules)
        self.rules.append(rule)
        self.plans.append(compile_rule(rule))
        for pos, atom in enumerate(rule.body):
            self._by_body_relation.setdefault(atom.relation, []).append(
                (index, rule, pos)
            )
        self._analysis = None   # a new rule invalidates the memoized result
        self._checked = False
        return rule

    def analyze(self):
        """Run (and memoize) the static analyzer over this program."""
        if self._analysis is None:
            self._analysis = analyze(
                self.rules,
                inputs=self.declared_inputs,
                outputs=self.declared_outputs,
            )
        return self._analysis

    def ensure_checked(self):
        """Gate: analyze once and raise on error-severity diagnostics.

        Memoized per instance — programs are shared across nodes and
        replays, so the fleet pays for one analysis. Raises
        :class:`~repro.datalog.analysis.ProgramAnalysisError` (a
        :class:`ConfigurationError`) when the program is unsafe.
        """
        if not self._checked:
            self.analyze().raise_if_errors()
            self._checked = True
        return self._analysis

    def triggers_for(self, relation):
        """(rule_index, rule, body_position) triples whose body uses *relation*."""
        return self._by_body_relation.get(relation, ())

    def index_requirements(self):
        """All (relation, positions) secondary indexes the plans need."""
        requirements = set()
        for plan in self.plans:
            requirements |= plan.index_requirements()
        return requirements


def _seed_bindings(rule, node_id):
    """Bind the rule's shared body location to this node (or None if the
    rule cannot evaluate here because its body location is a different
    constant)."""
    loc = rule.body_loc
    if isinstance(loc, Var):
        return {loc.name: node_id}
    return {} if loc == node_id else None


class DatalogApp(StateMachine):
    """A deterministic Datalog state machine for one node."""

    #: Subclasses (the naive reference evaluator) set this False to skip
    #: secondary-index registration and maintenance.
    USE_INDEXES = True

    def __init__(self, node_id, program, unsafe_skip_analysis=False):
        super().__init__(node_id)
        if not unsafe_skip_analysis:
            # The ndlint gate: refuse programs with error-severity
            # diagnostics (memoized on the shared Program instance).
            program.ensure_checked()
        self.program = program
        self.store = TupleStore(node_id)
        if self.USE_INDEXES:
            for relation, positions in program.index_requirements():
                self.store.register_index(relation, positions)
        # (rule_index, group_key) -> (head_tup, support) for aggregate heads
        self._agg_current = {}
        #: Evaluation counters (not part of snapshots): candidate tuples
        #: enumerated by join steps, and partial/full matches a guard
        #: rejected. bench_engine reads them to show binding-aware guard
        #: scheduling pruning work the naive evaluator re-does.
        self.join_candidates = 0
        self.guard_prunes = 0
        #: Differential cost counters (not part of snapshots, all
        #: deterministic): input presence toggles consumed, derivation
        #: changes (Der/Und) emitted, derivation instances dropped
        #: because a support disappeared, and min/max group recomputes a
        #: disappearing support forced (the support re-derivation path).
        #: ``delta_tuples_out`` is the engine's *semantic* work metric —
        #: bench_engine gates refresh cost against it.
        self.delta_tuples_in = 0
        self.delta_tuples_out = 0
        self.retractions_applied = 0
        self.support_rederivations = 0

    # ------------------------------------------------------------------ API

    def handle_insert(self, tup, t):
        outputs = []
        if self.store.add_base(tup, t):
            self.delta_tuples_in += 1
            self._run_cascade([("appear", tup, None)], t, outputs)
        return outputs

    def handle_delete(self, tup, t):
        outputs = []
        if self.store.remove_base(tup):
            self.delta_tuples_in += 1
            self._run_cascade([("disappear", tup, None)], t, outputs)
        return outputs

    def handle_receive(self, msg, t):
        if isinstance(msg, Ack):
            return []
        outputs = []
        if msg.polarity == PLUS:
            if self.store.add_belief(msg.tup, msg.src, t):
                self.delta_tuples_in += 1
                self._run_cascade([("appear", msg.tup, None)], t, outputs)
        else:
            if self.store.remove_belief(msg.tup, msg.src):
                self.delta_tuples_in += 1
                self._run_cascade([("disappear", msg.tup, None)], t, outputs)
        return outputs

    @contextmanager
    def delta_batch(self):
        """Collect the net z-set of presence changes over a run of events.

        Usage: ``with app.delta_batch() as delta: ...`` — every
        ``handle_*`` call inside the block journals its appear (+1) and
        disappear (−1) transitions into *delta*, which nets out
        cancelling changes: a tuple retracted and re-derived within the
        block contributes nothing. Events are still processed one at a
        time in order (outputs and traces are exactly those of unbatched
        execution); only the delta accounting is batched. Nestable — the
        innermost sink wins, mirroring how an enclosing refresh batch
        owns its epoch delta.
        """
        delta = ZSet()
        previous = self.store.delta_sink
        self.store.delta_sink = delta
        try:
            yield delta
        finally:
            self.store.delta_sink = previous

    def apply_delta(self, events, t):
        """Run a batch of events as one delta to fixpoint.

        *events* is an iterable of ``("ins", tup)``, ``("del", tup)`` or
        ``("rcv", msg)`` pairs. Returns ``(outputs, delta)`` where
        *outputs* is the concatenated Der/Und/Snd stream (identical to
        issuing the events individually) and *delta* the net
        :class:`~repro.datalog.zset.ZSet` of presence changes.
        """
        outputs = []
        with self.delta_batch() as delta:
            for kind, payload in events:
                if kind == "ins":
                    outputs.extend(self.handle_insert(payload, t))
                elif kind == "del":
                    outputs.extend(self.handle_delete(payload, t))
                elif kind == "rcv":
                    outputs.extend(self.handle_receive(payload, t))
                else:
                    raise ConfigurationError(
                        f"unknown delta event kind {kind!r}"
                    )
        return outputs, delta

    # ------------------------------------------------------- cascade engine

    def _run_cascade(self, initial_events, t, outputs):
        """Drain the derivation worklist to a fixpoint, deterministically.

        Events are ("appear"|"disappear", tup, der_info). ``der_info`` is
        (rule_name, support, replaces) when the event is a derivation this
        cascade produced (so the Der/Und output can be emitted); None for
        base/belief changes whose vertices come from the triggering log
        event itself.
        """
        worklist = deque(initial_events)
        dirty_groups = []
        dirty_seen = set()
        while worklist or dirty_groups:
            if not worklist:
                # Recompute one aggregate group; may enqueue more events.
                key = dirty_groups.pop(0)
                dirty_seen.discard(key)
                self._recompute_group(key, t, worklist)
                continue
            kind, tup, der_info = worklist.popleft()
            if kind == "appear":
                self._emit_appear(tup, der_info, t, outputs)
                self._match_rules_on_appear(tup, t, worklist, dirty_groups,
                                            dirty_seen)
            else:
                self._emit_disappear(tup, der_info, t, outputs)
                self._retract_on_disappear(tup, t, worklist, dirty_groups,
                                           dirty_seen)

    def _emit_appear(self, tup, der_info, t, outputs):
        if der_info is not None:
            rule_name, support, replaces = der_info
            outputs.append(Der(tup, rule_name, support, replaces=replaces))
            self.delta_tuples_out += 1
        if tup.loc != self.node_id:
            outputs.append(Snd(self.make_msg(PLUS, tup, tup.loc, t)))

    def _emit_disappear(self, tup, der_info, t, outputs):
        if der_info is not None:
            rule_name, support, _ = der_info
            outputs.append(Und(tup, rule_name, support))
            self.delta_tuples_out += 1
        if tup.loc != self.node_id:
            outputs.append(Snd(self.make_msg(MINUS, tup, tup.loc, t)))

    # -- appearance: find newly satisfied rule instances ---------------------

    def _match_rules_on_appear(self, tup, t, worklist, dirty_groups, dirty_seen):
        if tup.loc != self.node_id:
            return  # not visible here; only the head's node can match it
        for rule_index, rule, pos in self.program.triggers_for(tup.relation):
            if isinstance(rule, AggregateRule):
                self._mark_dirty(rule_index, rule, tup,
                                 dirty_groups, dirty_seen, "appear")
                continue
            seed = _seed_bindings(rule, self.node_id)
            if seed is None:
                continue
            bound = rule.body[pos].match(tup, seed)
            if bound is None:
                continue
            for bindings, support in self._matches_from(rule_index, rule,
                                                        pos, bound, tup):
                head = rule.head.instantiate(bindings)
                instance = DerivationInstance(rule.name, support)
                is_new, appeared = self.store.add_derivation(head, instance, t)
                if is_new and appeared:
                    worklist.append(
                        ("appear", head, (rule.name, support, None))
                    )

    def _matches_from(self, rule_index, rule, pos, bound, tup):
        """Full, guard-passing body matches with position *pos* pinned.

        Delegates to the rule's compiled per-trigger
        :meth:`~repro.datalog.plan.JoinPlan.execute` — the delta-lifted
        join ΔR⋈S: the triggering tuple is the singleton delta side, the
        remaining body atoms probe the store's secondary hash indexes in
        SIPS order, and results come back in the canonical support order
        that keeps replay byte-identical (DESIGN.md).
        """
        return self.program.plans[rule_index].joins[pos].execute(
            self.store, bound, tup, self
        )

    # -- disappearance: retract dependent derivations -------------------------

    def _retract_on_disappear(self, tup, t, worklist, dirty_groups, dirty_seen):
        if tup.loc != self.node_id:
            return
        for rule_index, rule, _pos in self.program.triggers_for(tup.relation):
            if isinstance(rule, AggregateRule):
                self._mark_dirty(rule_index, rule, tup,
                                 dirty_groups, dirty_seen, "disappear")
        removed = self.store.remove_derivations_supported_by(tup)
        self.retractions_applied += len(removed)
        for head, instance, disappeared in removed:
            if disappeared:
                worklist.append(
                    ("disappear", head, (instance.rule, instance.support, None))
                )

    # -- aggregates ---------------------------------------------------------

    def _mark_dirty(self, rule_index, rule, tup, dirty_groups, dirty_seen,
                    cause):
        """Schedule one aggregate group for recompute after *tup*'s
        *cause* ("appear"/"disappear") transition."""
        seed = _seed_bindings(rule, self.node_id)
        if seed is None:
            return
        bindings = rule.body[0].match(tup, seed)
        if bindings is None:
            return
        if not all(guard(bindings) for guard in rule.guards):
            # An aggregate body is a single atom, so these bindings are
            # complete: a guard rejecting them means the tuple was never a
            # group member, and its change cannot move any group's value.
            return
        group_key = tuple(bindings.get(v.name) for v in rule.group_vars)
        key = (rule_index, group_key)
        # Membership bookkeeping must see every member transition, even
        # the ones the dirty-marking below skips (a no-op in this base
        # engine; the differential engine maintains group state here).
        self._note_membership(key, tup, bindings, cause)
        if key in dirty_seen:
            return
        if rule.func in ("min", "max"):
            if self._agg_unaffected(rule_index, rule, key, tup, bindings):
                return
            if cause == "disappear":
                # The group may have lost its witness: the recompute
                # re-derives the optimum from the support set.
                self.support_rederivations += 1
        dirty_seen.add(key)
        dirty_groups.append(key)

    def _note_membership(self, key, tup, bindings, cause):
        """Hook for engines that maintain aggregate-group membership
        incrementally (:class:`~repro.datalog.differential.
        DifferentialDatalogApp`). Called for every guard-passing member
        transition, including those the dirty-marking skips."""

    def _agg_unaffected(self, rule_index, rule, key, tup, bindings):
        """True when a min/max group provably cannot change.

        A candidate strictly *worse* than the stored optimum — in the full
        deterministic ordering (value key, then canonical tie-break) — can
        neither beat the current witness on appear nor *be* the witness on
        disappear, so the recompute would be a no-op. Ties and improvements
        always recompute (a tie may silently re-support the head with a
        different witness, exactly as a full recompute would). Only valid
        while the group is clean: callers check ``dirty_seen`` first, and a
        dirty group keeps its pending recompute regardless.
        """
        stored = self._agg_current.get(key)
        if stored is None:
            return False
        head, support = stored
        plan = self.program.plans[rule_index]
        if plan.head_agg_pos is None or not support:
            return False
        value_key = rule.key if rule.key is not None else (lambda v: v)
        candidate = (value_key(bindings[rule.agg_var.name]),
                     tup.canonical_key())
        current = (value_key(plan.head_agg_value(head)),
                   support[0].canonical_key())
        if rule.func == "min":
            return candidate > current
        return candidate < current

    def _recompute_group(self, key, t, worklist):
        rule_index, group_key = key
        rule = self.program.rules[rule_index]
        seed = _seed_bindings(rule, self.node_id)
        if seed is None:
            return
        members = self._group_members(key, rule, seed)

        old = self._agg_current.get(key)
        new_head, new_support, new_bindings = self._aggregate(
            rule, group_key, members
        )
        old_head = old[0] if old else None
        if new_head == old_head:
            if old and new_head is not None and old[1] != new_support:
                # Same value, different witness: silently re-support (the
                # head never ceased to hold, so no der/und churn).
                self._agg_current[key] = (new_head, new_support)
            return
        if old_head is not None:
            instance = DerivationInstance(rule.name, ())
            if self.store.remove_derivation(old_head, instance):
                worklist.append(
                    ("disappear", old_head, (rule.name, old[1], None))
                )
            del self._agg_current[key]
        if new_head is not None:
            instance = DerivationInstance(rule.name, ())
            _is_new, appeared = self.store.add_derivation(new_head, instance, t)
            self._agg_current[key] = (new_head, new_support)
            if appeared:
                worklist.append(
                    ("appear", new_head, (rule.name, new_support, None))
                )

    def _group_members(self, key, rule, seed):
        """One group's members as ``[(bindings, tup)]`` in canonical
        candidate order, by rescanning the group's index bucket: every
        candidate is re-unified against the body atom, guard-checked,
        and filtered to the exact group key (bucket collisions — or the
        full-relation fallback — may hold other groups' tuples). The
        differential engine overrides this with incrementally maintained
        membership."""
        rule_index, group_key = key
        members = []
        atom = rule.body[0]
        for candidate in sorted(
            self._group_candidates(rule_index, rule, group_key),
            key=lambda c: c.canonical_key(),
        ):
            bindings = atom.match(candidate, seed)
            if bindings is None:
                continue
            if not all(guard(bindings) for guard in rule.guards):
                continue
            cand_key = tuple(bindings.get(v.name) for v in rule.group_vars)
            if cand_key != group_key:
                continue
            members.append((bindings, candidate))
        return members

    def _group_candidates(self, rule_index, rule, group_key):
        """Candidate member tuples of one aggregate group (unordered).

        Probes the per-(rule, group-key) membership index — group members
        share the group variables' values at fixed body-atom positions, so
        they share one index bucket. The caller still unifies and
        guard-checks every candidate; sorting happens there too.
        """
        plan = self.program.plans[rule_index]
        if plan.group_positions:
            return self.store.index_lookup(
                rule.body[0].relation, plan.group_positions,
                plan.group_index_key(group_key),
            )
        return self.store.visible_set(rule.body[0].relation)

    def _aggregate(self, rule, group_key, members):
        """Compute (head, support, bindings) for a group; head None if empty."""
        if not members:
            return None, (), None
        var = rule.agg_var.name
        if rule.func in ("min", "max"):
            chooser = min if rule.func == "min" else max
            value_key = rule.key if rule.key is not None else (lambda v: v)
            best = chooser(
                members,
                key=lambda m: (value_key(m[0][var]),
                               m[1].canonical_key()),
            )
            bindings, witness = best
            head = rule.head.instantiate(bindings)
            return head, (witness,), bindings
        if rule.func == "sum":
            value = sum(m[0][var] for m in members)
        else:  # count
            value = len(members)
        bindings = dict(members[0][0])
        bindings[var] = value
        head = rule.head.instantiate(bindings)
        support = tuple(m[1] for m in members)
        return head, support, bindings

    # ------------------------------------------------------------ checkpoints

    def snapshot(self):
        snap = super().snapshot()
        snap["store"] = self.store.snapshot()
        snap["agg"] = {
            key: (head, support)
            for key, (head, support) in self._agg_current.items()
        }
        return snap

    def restore(self, snap):
        super().restore(snap)
        self.store.restore(snap["store"])
        self._agg_current = {
            key: (head, support) for key, (head, support) in snap["agg"].items()
        }

    def extant_tuples(self):
        return self.store.all_local()

    def believed_tuples(self):
        return self.store.all_beliefs()

    # ------------------------------------------------------------- inspection

    def has_tuple(self, tup):
        return self.store.present(tup)

    def tuples_of(self, relation):
        """All present tuples of *relation* visible at this node."""
        return self.store.visible(relation)
