"""Per-node tuple storage with derivation refcounts and beliefs.

A node's store tracks three things:

* **local tuples** — base insertions and rule derivations made on this node
  (including derivations whose head is located on another node, which this
  node hosts and pushes to the head's node);
* **believed tuples** — remote tuples this node has been notified of via
  ``+τ`` messages (Section 3.2's believe vertices);
* **derivation instances** — (rule, support) pairs per derived tuple, the
  logical reference counter of Section 3.1 ("if a tuple has more than one
  derivation, we can distinguish between them using a logical reference
  counter").

Together these give every tuple a z-set **weight** — base count plus
derivation instances plus believed notifications (:meth:`TupleStore.
weight`) — and a tuple is *present* exactly while its weight is positive.
The ``0 ↔ positive`` crossings are the only observable transitions:
:meth:`_note_appear`/:meth:`_note_disappear` fire there, and while a
**delta sink** (a :class:`~repro.datalog.zset.ZSet`) is installed they
journal ``+1``/``−1`` into it, so a batch of events yields its net
semantic delta with retractions as weight ``−1`` entries
(:meth:`~repro.datalog.engine.DatalogApp.delta_batch`).

A tuple participates in rule matching on this node iff it is *visible*:
present (locally or as a belief) and located here (``loc == node``). A
locally derived tuple whose head is remote exists here but is matchable only
at the remote node once believed there.

Compiled join plans (:mod:`repro.datalog.plan`) register **secondary hash
indexes** here: per ``(relation, bound-positions)`` maps from a key (the
tuple's values at those positions) to the set of visible tuples carrying
that key. Indexes are maintained incrementally on every appear/disappear
and rebuilt wholesale on :meth:`TupleStore.restore`; they are pure derived
state and never snapshotted. Position 0 is the location argument,
position *i* ≥ 1 is ``args[i-1]``.
"""

from repro.util.serialization import canonical_bytes


class DerivationInstance:
    """One concrete way a tuple was derived: rule name + ground supports."""

    __slots__ = ("rule", "support")

    def __init__(self, rule, support):
        self.rule = rule
        self.support = tuple(support)

    def key(self):
        return (self.rule, self.support)

    def __eq__(self, other):
        return (
            isinstance(other, DerivationInstance) and self.key() == other.key()
        )

    def __hash__(self):
        return hash(("derivation", self.rule, self.support))

    def __repr__(self):
        return f"DerivationInstance({self.rule}, {self.support!r})"


class TupleStore:
    def __init__(self, node_id):
        self.node_id = node_id
        self._base_count = {}        # tup -> int
        self._derivations = {}       # tup -> dict key -> DerivationInstance
        self._beliefs = {}           # tup -> dict peer -> int
        self._by_support = {}        # support tup -> set of (head, instance key)
        self._visible = {}           # relation -> set of visible tups
        self._appeared_at = {}       # tup -> local time it became present
        self._believe_peer = {}      # tup -> peer whose notification created belief
        self._indexes = {}           # (relation, positions) -> {key: set of tups}
        self._rel_indexes = {}       # relation -> [(positions, buckets)]
        #: Optional ZSet journaling net presence changes (+1 appear, −1
        #: disappear) while installed. Never snapshotted; :meth:`restore`
        #: replaces state wholesale without journaling, so a sink must
        #: not span a restore.
        self.delta_sink = None

    # -- presence ----------------------------------------------------------

    def locally_present(self, tup):
        return (
            self._base_count.get(tup, 0) > 0
            or bool(self._derivations.get(tup))
        )

    def believed(self, tup):
        counts = self._beliefs.get(tup)
        return bool(counts) and any(c > 0 for c in counts.values())

    def present(self, tup):
        return self.locally_present(tup) or self.believed(tup)

    def is_base(self, tup):
        return self._base_count.get(tup, 0) > 0

    def weight(self, tup):
        """The tuple's z-set multiplicity: base insertions plus derivation
        instances plus believed notifications. Agrees with
        :meth:`present` as ``weight > 0`` — appear/disappear events fire
        exactly on the 0 ↔ positive crossings, which is what lets a
        retraction be a weight −1 update instead of a snapshot restore."""
        return (
            self._base_count.get(tup, 0)
            + len(self._derivations.get(tup, ()))
            + sum(self._beliefs.get(tup, {}).values())
        )

    def belief_peer(self, tup):
        """The peer this node believes *tup* from (None if not a belief)."""
        return self._believe_peer.get(tup)

    def appeared_at(self, tup):
        return self._appeared_at.get(tup)

    # -- mutation: local tuples ---------------------------------------------

    def add_base(self, tup, t):
        """Insert a base tuple; returns True if the tuple newly appeared."""
        was = self.present(tup)
        self._base_count[tup] = self._base_count.get(tup, 0) + 1
        if not was:
            self._note_appear(tup, t)
        return not was

    def remove_base(self, tup):
        """Delete a base tuple; returns True if the tuple ceased to exist.

        Deleting a tuple that was never inserted returns False and leaves
        the store unchanged (the caller decides how to flag the anomaly).
        """
        count = self._base_count.get(tup, 0)
        if count == 0:
            return False
        if count == 1:
            del self._base_count[tup]
        else:
            self._base_count[tup] = count - 1
        if not self.present(tup):
            self._note_disappear(tup)
            return True
        return False

    def add_derivation(self, tup, instance, t):
        """Record a derivation instance; returns (is_new_instance, appeared)."""
        instances = self._derivations.setdefault(tup, {})
        if instance.key() in instances:
            return False, False
        was = self.present(tup)
        instances[instance.key()] = instance
        for support in instance.support:
            self._by_support.setdefault(support, set()).add(
                (tup, instance.key())
            )
        if not was:
            self._note_appear(tup, t)
        return True, not was

    def remove_derivations_supported_by(self, support_tup):
        """Drop every derivation instance that uses *support_tup*.

        Returns the list of (head, instance, disappeared) in deterministic
        order, where *disappeared* says the head tuple ceased to be present.
        """
        entries = self._by_support.pop(support_tup, set())
        results = []
        for head, key in sorted(
            entries,
            key=lambda e: (e[0].canonical_key(), canonical_bytes(e[1][0])),
        ):
            instances = self._derivations.get(head)
            if not instances or key not in instances:
                continue
            instance = instances.pop(key)
            for other_support in instance.support:
                if other_support != support_tup:
                    refs = self._by_support.get(other_support)
                    if refs:
                        refs.discard((head, key))
            disappeared = False
            if not instances:
                del self._derivations[head]
                if not self.present(head):
                    self._note_disappear(head)
                    disappeared = True
            results.append((head, instance, disappeared))
        return results

    def remove_derivation(self, tup, instance):
        """Remove one specific instance; returns True if *tup* disappeared."""
        instances = self._derivations.get(tup)
        if not instances or instance.key() not in instances:
            return False
        instances.pop(instance.key())
        for support in instance.support:
            refs = self._by_support.get(support)
            if refs:
                refs.discard((tup, instance.key()))
        if not instances:
            del self._derivations[tup]
            if not self.present(tup):
                self._note_disappear(tup)
                return True
        return False

    def derivation_instances(self, tup):
        return list(self._derivations.get(tup, {}).values())

    # -- mutation: beliefs ---------------------------------------------------

    def add_belief(self, tup, peer, t):
        """Record a +τ notification from *peer*; True if τ newly present."""
        was = self.present(tup)
        peers = self._beliefs.setdefault(tup, {})
        peers[peer] = peers.get(peer, 0) + 1
        if not was:
            self._believe_peer[tup] = peer
            self._note_appear(tup, t)
        return not was

    def remove_belief(self, tup, peer):
        """Record a −τ notification from *peer*; True if τ ceased."""
        peers = self._beliefs.get(tup)
        if not peers or peers.get(peer, 0) == 0:
            return False
        peers[peer] -= 1
        if peers[peer] == 0:
            del peers[peer]
        if not peers:
            del self._beliefs[tup]
        if not self.present(tup):
            self._believe_peer.pop(tup, None)
            self._note_disappear(tup)
            return True
        return False

    # -- matching -------------------------------------------------------------

    def visible(self, relation):
        """Visible tuples of *relation* in deterministic order."""
        tups = self._visible.get(relation, ())
        return sorted(tups, key=lambda t: t.canonical_key())

    def visible_set(self, relation):
        """Visible tuples of *relation* as an unordered set (no copy).

        Callers that need determinism must sort; plan execution does, once,
        over full matches.
        """
        return self._visible.get(relation, ())

    # -- secondary indexes ---------------------------------------------------

    @staticmethod
    def _project(tup, positions):
        """The tuple's index key for *positions*, or None when its arity is
        too small to have those positions (such a tuple can never match the
        registering pattern)."""
        values = []
        for position in positions:
            if position == 0:
                values.append(tup.loc)
            elif position <= len(tup.args):
                values.append(tup.args[position - 1])
            else:
                return None
        return tuple(values)

    def register_index(self, relation, positions):
        """Ensure a secondary index on *(relation, positions)* exists,
        backfilled from the currently visible tuples. Idempotent."""
        positions = tuple(positions)
        spec = (relation, positions)
        if spec in self._indexes:
            return
        buckets = {}
        self._indexes[spec] = buckets
        self._rel_indexes.setdefault(relation, []).append(
            (positions, buckets)
        )
        self._backfill(buckets, relation, positions)

    def _backfill(self, buckets, relation, positions):
        """Populate an index's *buckets* from the current visible set."""
        for tup in self._visible.get(relation, ()):
            key = self._project(tup, positions)
            if key is not None:
                buckets.setdefault(key, set()).add(tup)

    def index_lookup(self, relation, positions, key):
        """Visible tuples of *relation* whose projection on *positions*
        equals *key* (unordered). Falls back to the full visible set when
        the index was never registered — correct, since every caller
        re-unifies candidates against its pattern, just slower."""
        buckets = self._indexes.get((relation, positions))
        if buckets is None:
            return self._visible.get(relation, ())
        return buckets.get(key, ())

    def _note_appear(self, tup, t):
        if self.delta_sink is not None:
            self.delta_sink.add(tup, 1)
        self._appeared_at[tup] = t
        if tup.loc == self.node_id:
            self._visible.setdefault(tup.relation, set()).add(tup)
            for positions, buckets in self._rel_indexes.get(tup.relation, ()):
                key = self._project(tup, positions)
                if key is not None:
                    buckets.setdefault(key, set()).add(tup)

    def _note_disappear(self, tup):
        if self.delta_sink is not None:
            self.delta_sink.add(tup, -1)
        self._appeared_at.pop(tup, None)
        if tup.loc == self.node_id:
            rel = self._visible.get(tup.relation)
            if rel:
                rel.discard(tup)
            for positions, buckets in self._rel_indexes.get(tup.relation, ()):
                key = self._project(tup, positions)
                if key is not None:
                    bucket = buckets.get(key)
                    if bucket:
                        bucket.discard(tup)
                        if not bucket:
                            del buckets[key]

    # -- checkpoint support -----------------------------------------------------

    def snapshot(self):
        return {
            "base": {t: c for t, c in self._base_count.items()},
            "derivations": {
                t: [(k, inst.support) for k, inst in insts.items()]
                for t, insts in self._derivations.items()
            },
            "beliefs": {t: dict(p) for t, p in self._beliefs.items()},
            "appeared": dict(self._appeared_at),
            "believe_peer": dict(self._believe_peer),
        }

    def restore(self, snap):
        self._base_count = dict(snap["base"])
        self._derivations = {}
        self._by_support = {}
        for tup, insts in snap["derivations"].items():
            table = self._derivations.setdefault(tup, {})
            for key, support in insts:
                instance = DerivationInstance(key[0], support)
                table[instance.key()] = instance
                for s in support:
                    self._by_support.setdefault(s, set()).add(
                        (tup, instance.key())
                    )
        self._beliefs = {t: dict(p) for t, p in snap["beliefs"].items()}
        self._appeared_at = dict(snap["appeared"])
        self._believe_peer = dict(snap["believe_peer"])
        self._visible = {}
        for tup in self._appeared_at:
            if tup.loc == self.node_id:
                self._visible.setdefault(tup.relation, set()).add(tup)
        # Secondary indexes are derived state: keep the registrations (they
        # belong to the compiled program, not the snapshot) and rebuild the
        # buckets from the restored visible sets.
        for (relation, positions), buckets in self._indexes.items():
            buckets.clear()
            self._backfill(buckets, relation, positions)

    # -- enumeration -------------------------------------------------------------

    def all_local(self):
        """All locally present tuples (base or derived) with appear times."""
        out = []
        for tup in self._base_count:
            out.append((tup, self._appeared_at.get(tup)))
        for tup in self._derivations:
            if tup not in self._base_count:
                out.append((tup, self._appeared_at.get(tup)))
        out.sort(key=lambda pair: pair[0].canonical_key())
        return out

    def all_beliefs(self):
        """All believed tuples as (tup, peer, appeared_at)."""
        out = []
        for tup, peers in self._beliefs.items():
            if any(c > 0 for c in peers.values()):
                out.append(
                    (tup, self._believe_peer.get(tup), self._appeared_at.get(tup))
                )
        out.sort(key=lambda item: item[0].canonical_key())
        return out
