"""Rule compilation: from declarative rules to indexed join plans.

The engine used to evaluate rules interpretively — every appearing tuple
re-enumerated every visible tuple of every body relation. This module
compiles each rule *once*, at :meth:`Program.add` time, into the static
schedule that evaluation follows:

* a :class:`JoinPlan` per trigger position — when a tuple of body atom
  *k*'s relation appears, the plan for trigger *k* follows the SIPS
  annotation computed by :func:`repro.datalog.analysis.sip_join` (greedy
  most-bound-first atom order, earliest-step guard schedule) and
  precomputes, for every join
  step, the **index key**: the tuple of argument positions whose values
  are already known when the step runs (constants in the pattern plus
  variables bound by earlier steps). At runtime the step is a hash lookup
  on the corresponding :class:`~repro.datalog.store.TupleStore` secondary
  index instead of a relation scan;
* a **guard schedule**: each :class:`~repro.datalog.ast.Guard` with
  declared variables fires at the earliest step where its variables are
  bound, pruning partial matches; opaque callables fire after the body is
  fully bound (exactly the old semantics);
* for aggregate rules, an :class:`AggPlan` giving the positions of the
  group variables inside the single body atom, so a dirty group's members
  come from one index bucket rather than a scan of the whole relation.

Plans only *accelerate* evaluation; they never change results. Every
candidate from an index is still unified via ``atom.match`` (which
re-checks constants, repeated variables and cross-atom equality), and the
engine sorts full matches into the same canonical order the interpretive
scan produced, so the determinism contract (DESIGN.md) is untouched.

Positions are 0-based over ``(loc,) + terms``: position 0 is the ``@``
location, position *i* ≥ 1 is ``terms[i-1]``.
"""

from repro.datalog.analysis import (
    atom_arity, atom_var_names, bound_positions, rule_sips, sip_join,
    term_at,
)
from repro.datalog.ast import AggregateRule, Var

__all__ = [
    "AggPlan", "JoinPlan", "JoinStep", "RulePlan", "compile_rule",
    "guard_schedule_counts", "atom_arity", "atom_var_names", "term_at",
]


class JoinStep:
    """One join step: probe *atom* through an index and extend bindings.

    ``index_positions`` is the sorted tuple of positions whose values are
    known when the step runs (the store index spec); ``key_parts`` is the
    aligned recipe for the runtime key — ``(True, var_name)`` reads a
    binding, ``(False, constant)`` is a literal. ``guards`` fire on each
    successful match of this step (their variables are all bound here and
    not earlier).
    """

    __slots__ = ("body_pos", "atom", "index_positions", "key_parts", "guards")

    def __init__(self, body_pos, atom, index_positions, key_parts, guards):
        self.body_pos = body_pos
        self.atom = atom
        self.index_positions = index_positions
        self.key_parts = key_parts
        self.guards = guards

    def key(self, bindings):
        return tuple(
            bindings[value] if is_var else value
            for is_var, value in self.key_parts
        )

    def __repr__(self):
        return (
            f"JoinStep(pos={self.body_pos}, {self.atom!r}, "
            f"index={self.index_positions})"
        )


class JoinPlan:
    """The evaluation schedule for one rule triggered at one body position."""

    __slots__ = ("rule", "trigger_pos", "pre_guards", "steps")

    def __init__(self, rule, trigger_pos, pre_guards, steps):
        self.rule = rule
        self.trigger_pos = trigger_pos
        self.pre_guards = pre_guards
        self.steps = steps

    def execute(self, store, bound, trigger_tup, app):
        """Run this plan's delta-lifted join ΔR ⋈ S ⋈ … for one trigger.

        *trigger_tup* is the singleton delta side, pinned at
        ``trigger_pos``; *bound* is the trigger atom's unification with
        it. Each step probes one remaining body atom through a
        :class:`~repro.datalog.store.TupleStore` secondary hash index
        keyed by the values already bound, and scheduled guards prune
        partial matches as early as their variables allow. Returns
        (bindings, support) pairs — *support* lists the matched ground
        tuple per body atom, in body order — sorted into the canonical
        support order the interpretive scan produced, which is what
        keeps replay byte-identical (DESIGN.md). *app* accumulates the
        evaluation counters (``join_candidates``, ``guard_prunes``).
        """
        for guard in self.pre_guards:
            if not guard(bound):
                app.guard_prunes += 1
                return ()
        results = []
        chosen = [None] * len(self.rule.body)
        chosen[self.trigger_pos] = trigger_tup
        steps = self.steps

        def run(step_index, bindings):
            if step_index == len(steps):
                results.append((bindings, tuple(chosen)))
                return
            step = steps[step_index]
            if step.index_positions:
                candidates = store.index_lookup(
                    step.atom.relation, step.index_positions,
                    step.key(bindings),
                )
            else:
                candidates = store.visible_set(step.atom.relation)
            for candidate in candidates:
                app.join_candidates += 1
                extended = step.atom.match(candidate, bindings)
                if extended is None:
                    continue
                if not all(guard(extended) for guard in step.guards):
                    app.guard_prunes += 1
                    continue
                chosen[step.body_pos] = candidate
                run(step_index + 1, extended)
                chosen[step.body_pos] = None

        run(0, bound)
        results.sort(
            key=lambda pair: tuple(s.canonical_key() for s in pair[1])
        )
        return results

    def __repr__(self):
        return (
            f"JoinPlan({self.rule.name}@{self.trigger_pos}: "
            f"{list(self.steps)!r})"
        )


def _key_parts(atom, positions):
    parts = []
    for position in positions:
        term = term_at(atom, position)
        if isinstance(term, Var):
            parts.append((True, term.name))
        else:
            parts.append((False, term))
    return tuple(parts)


def _compile_join(rule, trigger_pos, sip=None):
    """Lower one SIPS annotation (:func:`repro.datalog.analysis.sip_join`)
    into an executable :class:`JoinPlan`.

    The analyzer owns the ordering decisions — greedy most-bound-first
    atoms, earliest-step guard firing, opaque guards on full bindings;
    this function only materializes the index keys and resolves guard
    indexes back to the rule's callables.
    """
    if sip is None:
        sip = sip_join(rule, trigger_pos)
    pre_guards = tuple(rule.guards[index] for index in sip.pre_guards)
    steps = []
    for sip_step in sip.steps:
        atom = rule.body[sip_step.body_pos]
        positions = bound_positions(atom, sip_step.bound_before)
        steps.append(JoinStep(
            body_pos=sip_step.body_pos,
            atom=atom,
            index_positions=positions,
            key_parts=_key_parts(atom, positions),
            guards=tuple(rule.guards[index] for index in sip_step.guards),
        ))
    return JoinPlan(rule, sip.trigger_pos, pre_guards, tuple(steps))


class RulePlan:
    """Compiled form of an ordinary (or maybe) rule: one JoinPlan per
    trigger position."""

    kind = "join"

    __slots__ = ("rule", "joins")

    def __init__(self, rule, sips=None):
        self.rule = rule
        self.joins = tuple(
            _compile_join(rule, pos, sip=None if sips is None else sips[pos])
            for pos in range(len(rule.body))
        )

    def index_requirements(self):
        requirements = set()
        for join in self.joins:
            for step in join.steps:
                if step.index_positions:
                    requirements.add(
                        (step.atom.relation, step.index_positions)
                    )
        return requirements


class AggPlan:
    """Compiled form of an aggregate rule: the group membership index.

    ``group_positions`` is the sorted tuple of positions (in the single
    body atom) where the rule's group variables first occur;
    ``group_perm`` maps those positions back to the group-key order
    (``rule.group_vars``), so a dirty group's index key is a permutation
    of its group key. ``group_positions`` is empty when there is nothing
    to index (no group variables, or a group variable that does not occur
    in the body atom — then recompute falls back to scanning the
    relation, which is also the only correct option).
    """

    kind = "aggregate"

    __slots__ = ("rule", "group_positions", "group_perm", "head_agg_pos")

    def __init__(self, rule):
        self.rule = rule
        # Where the aggregate value lands in the head tuple — lets the
        # engine read a group's current value back off its head instead of
        # storing it separately (min/max short-circuit in _mark_dirty).
        self.head_agg_pos = None
        for position in range(atom_arity(rule.head)):
            term = term_at(rule.head, position)
            if isinstance(term, Var) and term.name == rule.agg_var.name:
                self.head_agg_pos = position
                break
        atom = rule.body[0]
        first_position = {}
        for position in range(atom_arity(atom)):
            term = term_at(atom, position)
            if isinstance(term, Var) and term.name not in first_position:
                first_position[term.name] = position
        pairs = []
        for group_index, var in enumerate(rule.group_vars):
            position = first_position.get(var.name)
            if position is None:
                pairs = []
                break
            pairs.append((position, group_index))
        pairs.sort()
        self.group_positions = tuple(position for position, _gi in pairs)
        self.group_perm = tuple(group_index for _pos, group_index in pairs)

    def group_index_key(self, group_key):
        """The store-index key for *group_key* (ordered by group_vars)."""
        return tuple(group_key[gi] for gi in self.group_perm)

    def head_agg_value(self, head_tup):
        """The aggregate value carried by a ground head tuple."""
        if self.head_agg_pos == 0:
            return head_tup.loc
        return head_tup.args[self.head_agg_pos - 1]

    def index_requirements(self):
        if not self.group_positions:
            return set()
        return {(self.rule.body[0].relation, self.group_positions)}


def guard_schedule_counts(program_or_rules):
    """Static guard-placement counts over every (rule, trigger) schedule.

    ``pre`` counts guards decidable on the trigger bindings alone,
    ``mid`` guards fired at a join step before the last (pruning partial
    matches), ``late`` guards that only run on fully bound bodies (the
    final step, or a single-atom body's trigger). ``pre + mid`` is the
    planner's static pruning opportunity — benchmarks track it so a
    scheduling regression (guards drifting to full binding) is caught
    even when wall time hides it.
    """
    rules = getattr(program_or_rules, "rules", program_or_rules)
    counts = {"pre": 0, "mid": 0, "late": 0}
    for rule in rules:
        if isinstance(rule, AggregateRule):
            continue
        for join in rule_sips(rule):
            if join.steps:
                counts["pre"] += len(join.pre_guards)
                for step in join.steps[:-1]:
                    counts["mid"] += len(step.guards)
                counts["late"] += len(join.steps[-1].guards)
            else:
                counts["late"] += len(join.pre_guards)
    return counts


def compile_rule(rule, sips=None):
    """Compile *rule* into its plan (RulePlan or AggPlan).

    *sips* optionally supplies precomputed per-trigger SIPS annotations
    (e.g. from a :class:`~repro.datalog.analysis.ProgramAnalysis`); they
    must validate under :func:`~repro.datalog.analysis.sip_violations`,
    which the analyzer's binding pass enforces (ND401).
    """
    if isinstance(rule, AggregateRule):
        return AggPlan(rule)
    return RulePlan(rule, sips=sips)
