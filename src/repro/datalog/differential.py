"""The differential evaluator: incrementally maintained aggregate groups.

:class:`DifferentialDatalogApp` is the production engine for replay and
the resident view plane. It inherits the whole delta-lifted fixpoint from
:class:`~repro.datalog.engine.DatalogApp` — compiled join plans, z-set
delta journaling, support-counted retraction — and adds the one piece of
state the base engine still recomputes from the store on every dirty
group: **aggregate-group membership**.

The base engine answers "who is in group *g*?" by rescanning *g*'s index
bucket, re-unifying every candidate against the body atom and re-running
the guards (:meth:`~repro.datalog.engine.DatalogApp._group_members`).
This engine maintains the answer directly: the
:meth:`~repro.datalog.engine.DatalogApp._mark_dirty` hook
:meth:`_note_membership` fires on every guard-passing member transition —
including the ones the min/max dirty-marking short-circuit skips — and
keeps a ``(rule_index, group_key) -> {tup: bindings}`` map. A dirty
group's recompute then reads its members off the map: no bucket scan, no
re-unification, no guard re-evaluation.

Determinism is preserved exactly:

* **min/max** groups hand the map's members to the chooser unsorted — the
  chooser key (aggregate value key, then the member's canonical key) is a
  total order, so the winner is independent of enumeration order;
* **sum/count** groups sort members into canonical order first, because
  the head's residual bindings come from the *first* member and the
  support tuple lists *all* members in order — both observable — and a
  float sum folded in a different order is a different float. The map
  adjusts in place; the fold re-runs canonically so results stay
  schedule-independent.

The map is **derived state**: it is a function of the store's visible
set, never snapshotted (snapshots stay bit-identical to the base
engine's), and rebuilt from the restored store on
:meth:`restore`. Replay therefore restores a checkpoint exactly as
before and the membership map simply reappears.
"""

from repro.datalog.ast import AggregateRule
from repro.datalog.engine import DatalogApp, _seed_bindings

__all__ = ["DifferentialDatalogApp"]


class DifferentialDatalogApp(DatalogApp):
    """Delta-lifted engine with incrementally maintained group membership."""

    def __init__(self, node_id, program, unsafe_skip_analysis=False):
        # (rule_index, group_key) -> {member_tup: bindings}. Derived from
        # the store's visible set; excluded from snapshots, rebuilt on
        # restore.
        self._members = {}
        super().__init__(node_id, program,
                         unsafe_skip_analysis=unsafe_skip_analysis)

    # ------------------------------------------------------ membership map

    def _note_membership(self, key, tup, bindings, cause):
        if cause == "appear":
            self._members.setdefault(key, {})[tup] = bindings
        else:
            group = self._members.get(key)
            if group is not None:
                group.pop(tup, None)
                if not group:
                    del self._members[key]

    def _group_members(self, key, rule, seed):
        group = self._members.get(key)
        if not group:
            return []
        if rule.func in ("min", "max"):
            # Chooser key is total (value key, canonical tie-break):
            # enumeration order cannot change the winner.
            return [(bindings, tup) for tup, bindings in group.items()]
        # sum/count: first member's bindings and the full support order
        # are observable — canonical order, always.
        return sorted(
            ((bindings, tup) for tup, bindings in group.items()),
            key=lambda member: member[1].canonical_key(),
        )

    def _rebuild_members(self):
        """Recompute the membership map from the store's visible set.

        Mirrors the base engine's per-group scan once, over every
        aggregate rule: unify each visible tuple of the body relation,
        run the guards, and file survivors under their group key.
        """
        self._members = {}
        for rule_index, rule in enumerate(self.program.rules):
            if not isinstance(rule, AggregateRule):
                continue
            seed = _seed_bindings(rule, self.node_id)
            if seed is None:
                continue
            atom = rule.body[0]
            for tup in self.store.visible_set(atom.relation):
                bindings = atom.match(tup, seed)
                if bindings is None:
                    continue
                if not all(guard(bindings) for guard in rule.guards):
                    continue
                group_key = tuple(
                    bindings.get(v.name) for v in rule.group_vars
                )
                self._members.setdefault(
                    (rule_index, group_key), {}
                )[tup] = bindings

    # ------------------------------------------------------------ restore

    def restore(self, snap):
        super().restore(snap)
        self._rebuild_members()
