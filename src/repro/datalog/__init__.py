"""Distributed Datalog (DDlog/ExSPAN-style) engine.

The paper's primary systems are modeled as tuples plus derivation rules
(Section 3.1): ``τ@n ← τ1@n1 ∧ … ∧ τk@nk``. This package provides:

* :mod:`repro.datalog.ast` — an embedded rule DSL (variables, guards, head
  expressions, aggregate and ``maybe`` rules);
* :mod:`repro.datalog.store` — per-node tuple storage with derivation
  refcounts and believed remote tuples;
* :mod:`repro.datalog.engine` — :class:`DatalogApp`, a deterministic
  :class:`repro.model.StateMachine` that incrementally maintains derivations
  and emits ``+τ/−τ`` notifications for rules whose head lives on another
  node.

Rules follow the standard declarative-networking localization convention:
every body atom of a rule shares one location term, which is bound to the
evaluating node; the head's location may name a different node, in which
case the derived tuple is pushed there with an update message (exactly the
structure of Figure 2 in the paper, where node b derives ``cost(@c,d,b,5)``
and sends it to c).
"""

from repro.datalog.ast import Var, Expr, Atom, Rule, AggregateRule, MaybeRule, choice_tuple
from repro.datalog.engine import DatalogApp, Program

__all__ = [
    "Var",
    "Expr",
    "Atom",
    "Rule",
    "AggregateRule",
    "MaybeRule",
    "choice_tuple",
    "DatalogApp",
    "Program",
]
