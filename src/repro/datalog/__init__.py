"""Distributed Datalog (DDlog/ExSPAN-style) engine.

The paper's primary systems are modeled as tuples plus derivation rules
(Section 3.1): ``τ@n ← τ1@n1 ∧ … ∧ τk@nk``. This package provides:

* :mod:`repro.datalog.ast` — an embedded rule DSL (variables, guards, head
  expressions, aggregate and ``maybe`` rules);
* :mod:`repro.datalog.analysis` — ndlint, the five-pass static analyzer
  (safety, arity/types, stratification, SIPS binding order, liveness)
  whose error diagnostics gate every program before it runs;
* :mod:`repro.datalog.store` — per-node tuple storage with derivation
  refcounts and believed remote tuples;
* :mod:`repro.datalog.plan` — the rule compiler: at ``Program.add`` time
  every rule becomes an indexed :class:`~repro.datalog.plan.JoinPlan`
  (deterministic body ordering per trigger position, precomputed index
  keys, earliest-step guard schedule);
* :mod:`repro.datalog.engine` — :class:`DatalogApp`, a deterministic
  :class:`repro.model.StateMachine` that incrementally maintains derivations
  by executing the compiled plans over the store's secondary indexes and
  emits ``+τ/−τ`` notifications for rules whose head lives on another
  node;
* :mod:`repro.datalog.naive` — :class:`NaiveDatalogApp`, the scan-based
  reference evaluator the indexed engine is property-tested against, plus
  the recompute-from-scratch retraction oracle;
* :mod:`repro.datalog.zset` — :class:`ZSet`, the weighted z-set delta
  algebra (multiplicity views, per-batch delta journals);
* :mod:`repro.datalog.differential` — :class:`DifferentialDatalogApp`,
  the production engine for replay and the resident view plane:
  delta-lifted joins plus incrementally maintained aggregate-group
  membership, trace-identical to the two engines above.

Rules follow the standard declarative-networking localization convention:
every body atom of a rule shares one location term, which is bound to the
evaluating node; the head's location may name a different node, in which
case the derived tuple is pushed there with an update message (exactly the
structure of Figure 2 in the paper, where node b derives ``cost(@c,d,b,5)``
and sends it to c).
"""

from repro.datalog.analysis import (
    Diagnostic, ProgramAnalysis, ProgramAnalysisError, analyze,
)
from repro.datalog.ast import (
    Var, Expr, Atom, Guard, Rule, AggregateRule, MaybeRule, Span,
    choice_tuple,
)
from repro.datalog.differential import DifferentialDatalogApp
from repro.datalog.engine import DatalogApp, Program
from repro.datalog.naive import NaiveDatalogApp
from repro.datalog.parser import ParseError, parse_program
from repro.datalog.zset import ZSet

__all__ = [
    "Var",
    "Expr",
    "Atom",
    "Guard",
    "Rule",
    "AggregateRule",
    "MaybeRule",
    "Span",
    "choice_tuple",
    "DatalogApp",
    "DifferentialDatalogApp",
    "NaiveDatalogApp",
    "Program",
    "ZSet",
    "Diagnostic",
    "ProgramAnalysis",
    "ProgramAnalysisError",
    "analyze",
    "ParseError",
    "parse_program",
]
