"""The naive scan-based reference evaluator.

:class:`NaiveDatalogApp` is the pre-plan evaluation strategy kept as an
executable specification: every trigger re-enumerates every visible tuple
of every body relation (guards applied only on fully bound bodies), and
every dirty aggregate group rescans its whole relation. It must produce
**byte-identical** outputs to the indexed :class:`~repro.datalog.engine.
DatalogApp` — the property suite (tests/property/test_prop_plan_equiv.py)
checks exactly that on randomized programs and event schedules, and
``benchmarks/bench_engine.py`` uses it as the before-side of the speedup
measurement.

Do not use it in deployments; it exists to keep the optimized engine
honest.

Like :class:`~repro.datalog.engine.DatalogApp`, construction runs the
ndlint gate (``Program.ensure_checked``) unless told
``unsafe_skip_analysis=True`` — the reference evaluator refuses unsafe
programs too.
"""

from repro.datalog.engine import DatalogApp


class NaiveDatalogApp(DatalogApp):
    """Reference evaluator: interpretive scans, no secondary indexes."""

    USE_INDEXES = False

    def _matches_from(self, rule_index, rule, pos, bound, tup):
        results = []

        def recurse(body_pos, current, support):
            if body_pos == len(rule.body):
                results.append((current, tuple(support)))
                return
            if body_pos == pos:
                support.append(tup)
                recurse(body_pos + 1, current, support)
                support.pop()
                return
            atom = rule.body[body_pos]
            for candidate in self.store.visible(atom.relation):
                self.join_candidates += 1
                extended = atom.match(candidate, current)
                if extended is not None:
                    support.append(candidate)
                    recurse(body_pos + 1, extended, support)
                    support.pop()

        recurse(0, bound, [])
        results.sort(
            key=lambda pair: tuple(s.canonical_key() for s in pair[1])
        )
        kept = []
        for bindings, support in results:
            if all(guard(bindings) for guard in rule.guards):
                kept.append((bindings, support))
            else:
                self.guard_prunes += 1
        return kept

    def _group_candidates(self, rule_index, rule, group_key):
        return self.store.visible_set(rule.body[0].relation)

    def _mark_dirty(self, rule_index, rule, tup, dirty_groups, dirty_seen):
        # Seed semantics: mark unconditionally (no guard filtering, no
        # min/max short-circuit). Recompute re-derives membership anyway,
        # so the indexed engine's skips must never change outputs — which
        # is precisely what comparing against this version checks.
        from repro.datalog.engine import _seed_bindings
        seed = _seed_bindings(rule, self.node_id)
        if seed is None:
            return
        bindings = rule.body[0].match(tup, seed)
        if bindings is None:
            return
        group_key = tuple(bindings.get(v.name) for v in rule.group_vars)
        key = (rule_index, group_key)
        if key not in dirty_seen:
            dirty_seen.add(key)
            dirty_groups.append(key)
