"""The naive scan-based reference evaluator, plus the retraction oracle.

:class:`NaiveDatalogApp` is the pre-plan evaluation strategy kept as an
executable specification: every trigger re-enumerates every visible tuple
of every body relation (guards applied only on fully bound bodies), and
every dirty aggregate group rescans its whole relation. It must produce
**byte-identical** outputs to the indexed :class:`~repro.datalog.engine.
DatalogApp` — the property suites (tests/property/) check exactly that on
randomized programs and event schedules, and ``benchmarks/bench_engine.py``
uses it as the before-side of the speedup measurement.

:func:`scratch_model` is the *reference retraction semantics*: the model
any mixed insert/retract schedule must converge to is the one obtained by
folding the schedule into its net base multiset (:func:`net_base_counts`)
and evaluating that multiset from scratch on a fresh mesh, with no
deletion ever issued. The incremental engines service a retraction as a
weight −1 z-set update (support-counted instance removal plus aggregate
re-derivation); this recompute-from-scratch oracle is what proves those
shortcuts sound on arbitrary schedules, not just monotone runs.

Do not use any of this in deployments; it exists to keep the optimized
engines honest.

Like :class:`~repro.datalog.engine.DatalogApp`, construction runs the
ndlint gate (``Program.ensure_checked``) unless told
``unsafe_skip_analysis=True`` — the reference evaluator refuses unsafe
programs too.
"""

from collections import deque

from repro.datalog.engine import DatalogApp
from repro.model import Snd


class NaiveDatalogApp(DatalogApp):
    """Reference evaluator: interpretive scans, no secondary indexes."""

    USE_INDEXES = False

    def _matches_from(self, rule_index, rule, pos, bound, tup):
        results = []

        def recurse(body_pos, current, support):
            if body_pos == len(rule.body):
                results.append((current, tuple(support)))
                return
            if body_pos == pos:
                support.append(tup)
                recurse(body_pos + 1, current, support)
                support.pop()
                return
            atom = rule.body[body_pos]
            for candidate in self.store.visible(atom.relation):
                self.join_candidates += 1
                extended = atom.match(candidate, current)
                if extended is not None:
                    support.append(candidate)
                    recurse(body_pos + 1, extended, support)
                    support.pop()

        recurse(0, bound, [])
        results.sort(
            key=lambda pair: tuple(s.canonical_key() for s in pair[1])
        )
        kept = []
        for bindings, support in results:
            if all(guard(bindings) for guard in rule.guards):
                kept.append((bindings, support))
            else:
                self.guard_prunes += 1
        return kept

    def _group_candidates(self, rule_index, rule, group_key):
        return self.store.visible_set(rule.body[0].relation)

    def _mark_dirty(self, rule_index, rule, tup, dirty_groups, dirty_seen,
                    cause):
        # Seed semantics: mark unconditionally (no guard filtering, no
        # min/max short-circuit). Recompute re-derives membership anyway,
        # so the indexed engine's skips must never change outputs — which
        # is precisely what comparing against this version checks.
        from repro.datalog.engine import _seed_bindings
        seed = _seed_bindings(rule, self.node_id)
        if seed is None:
            return
        bindings = rule.body[0].match(tup, seed)
        if bindings is None:
            return
        group_key = tuple(bindings.get(v.name) for v in rule.group_vars)
        key = (rule_index, group_key)
        if key not in dirty_seen:
            if cause == "disappear" and rule.func in ("min", "max"):
                self.support_rederivations += 1
            dirty_seen.add(key)
            dirty_groups.append(key)


# --------------------------------------------- recompute-from-scratch oracle


def net_base_counts(ops):
    """Fold a mixed insert/retract schedule into its net base multiset.

    *ops* is a sequence of ``(kind, node, tup)`` with kind ``"ins"`` or
    ``"del"``. This is the specification of deletion at the input
    boundary: an insert adds one copy, a delete removes one copy *if any
    is present* (deleting an absent tuple is a no-op, exactly like
    :meth:`~repro.datalog.store.TupleStore.remove_base`). Returns
    ``{(node, tup): count}`` with zero-count entries dropped.
    """
    counts = {}
    for kind, node, tup in ops:
        key = (node, tup)
        if kind == "ins":
            counts[key] = counts.get(key, 0) + 1
        elif kind == "del":
            if counts.get(key, 0) > 0:
                counts[key] -= 1
        else:
            raise ValueError(f"unknown schedule op {kind!r}")
    return {key: count for key, count in counts.items() if count > 0}


def model_state(app):
    """An engine's order-insensitive model projection.

    Visible/local tuple sets, beliefs as (tuple, net per-peer
    notification counts), and the derivation-instance keys per tuple —
    everything the fixpoint model determines. Deliberately excluded as
    schedule history, not model content: appear *times* (when the
    schedule last made a tuple appear) and the ``believe_peer``
    creator attribution (which peer's notification happened to arrive
    while the tuple was absent — reordering the same net schedule
    legitimately changes it). Same-schedule runs compare both
    bit-exactly through the engines' snapshots instead.
    """
    return {
        "local": sorted(repr(t) for t, _at in app.extant_tuples()),
        "beliefs": sorted(
            (repr(t), tuple(sorted(
                (peer, count) for peer, count in peers.items()
                if count > 0
            )))
            for t, peers in app.store._beliefs.items()
            if any(count > 0 for count in peers.values())
        ),
        "derivations": sorted(
            (repr(t), sorted(repr(i.key()) for i in
                             app.store.derivation_instances(t)))
            for t, _at in app.extant_tuples()
        ),
    }


def scratch_model(program, nodes, base_counts, app_cls=NaiveDatalogApp):
    """Reference retraction semantics: evaluate a net base multiset from
    scratch on a fresh mesh and return its per-node model projection.

    *base_counts* is ``{(node, tup): count}`` (see
    :func:`net_base_counts`); insertions are issued in canonical order,
    each followed by a full FIFO message pump, and no deletion is ever
    issued. Because the fixpoint is confluent — the final tuple, belief
    and derivation-instance sets are a function of the net base multiset
    alone, not of arrival order — the result is *the* model every
    incremental engine must have converged to after any schedule with
    this net effect. Returns ``{node: model_state(app)}``.
    """
    apps = {node: app_cls(node, program) for node in nodes}
    queue = deque()

    def pump(outputs):
        for out in outputs:
            if isinstance(out, Snd):
                queue.append(out.msg)
        while queue:
            msg = queue.popleft()
            for out in apps[msg.dst].handle_receive(msg, 0.0):
                if isinstance(out, Snd):
                    queue.append(out.msg)

    ordered = sorted(
        base_counts.items(),
        key=lambda item: (str(item[0][0]), item[0][1].canonical_key()),
    )
    for (node, tup), count in ordered:
        for _ in range(count):
            pump(apps[node].handle_insert(tup, 0.0))
    return {node: model_state(app) for node, app in apps.items()}
