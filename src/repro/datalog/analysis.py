"""ndlint: multi-pass static analysis for NDlog programs.

SNP's guarantees hold only for well-formed programs: an unsafe rule (a
head variable never bound by the body), unstratified aggregation, or a
wrong-arity literal makes the provenance graph ill-defined, so a
micro-query could return an unsound verdict without any node
misbehaving. This module moves those failures to load time. It runs five
passes over the rule AST (:mod:`repro.datalog.ast`) and produces
structured :class:`Diagnostic`\\ s:

1. **Safety / range restriction** — every head variable, declared guard
   variable, and declared head-expression input must be bound by a
   positive body literal (ND101/ND102/ND103; undeclared read sets are
   ND104 infos because they force full-binding scheduling).
2. **Arity & column types** — each predicate must be used with one arity
   everywhere (rules, declarations) and each column unifies to one value
   type across the program, via union-find over (relation, position)
   slots (ND201/ND202).
3. **Stratification** — the predicate dependency graph is condensed into
   strongly connected components; a cycle through a non-monotone
   aggregate (sum/count) is rejected (ND301), recursion through min/max
   is legal but flagged for a finiteness guard (ND302) and for its
   retraction cost — deleting a group's witness makes the differential
   engine re-derive the optimum from the remaining supports, cascading
   around the cycle (ND305) — and the
   topological order of the condensation is the stratum order. The
   dialect has no negation construct, so the classic negation check is
   vacuous by construction.
4. **Binding order (SIPS)** — the per-rule, per-trigger
   sideways-information-passing schedule (:func:`sip_join`) that
   :mod:`repro.datalog.plan` compiles into join plans. The pass
   re-validates every schedule: a guard placed before its declared
   variables bind is rejected (ND401; unreachable for schedules built
   here, but the validator also covers externally supplied annotations).
5. **Liveness** — dead rules whose bodies can never be populated from
   the declared inputs (ND501), relations that cannot reach any declared
   output (ND502), single-occurrence variables (ND503), body predicates
   unknown under the closed world of declared inputs (ND504), and
   declared inputs nothing consumes (ND505).

Only *error*-severity diagnostics gate execution:
``Program.ensure_checked`` (:mod:`repro.datalog.engine`) raises
:class:`ProgramAnalysisError` for them, and both evaluators refuse an
unchecked program unless constructed with ``unsafe_skip_analysis=True``.
"""

from repro.datalog.ast import (
    AggregateRule, CHOICE_PREFIX, Expr, Var, guard_vars,
)
from repro.util.errors import ConfigurationError

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Diagnostic codes with their one-line meanings (see DESIGN.md).
CODES = {
    "ND101": "head variable not bound by any positive body literal",
    "ND102": "guard variable not bound by any positive body literal",
    "ND103": "head-expression variable not bound by the body",
    "ND104": "undeclared read set (opaque guard or expression)",
    "ND201": "predicate used with inconsistent arity",
    "ND202": "column unifies to conflicting value types",
    "ND301": "cycle through a non-monotone aggregate (sum/count)",
    "ND302": "recursion through a min/max aggregate",
    "ND305": "recursive min/max retraction re-derives from supports",
    "ND401": "guard scheduled before its variables bind",
    "ND501": "dead rule: body can never be populated from the inputs",
    "ND502": "relation unreachable from any declared output",
    "ND503": "single-occurrence variable (wildcard?)",
    "ND504": "body predicate unknown under the declared inputs",
    "ND505": "declared input consumed by no rule",
}


class Diagnostic:
    """One analyzer finding, precise enough to render with a caret."""

    __slots__ = ("code", "severity", "message", "rule", "predicate",
                 "variable", "span", "hint")

    def __init__(self, code, severity, message, rule=None, predicate=None,
                 variable=None, span=None, hint=None):
        self.code = code
        self.severity = severity
        self.message = message
        self.rule = rule
        self.predicate = predicate
        self.variable = variable
        self.span = span
        self.hint = hint

    def format(self, filename=None):
        """One-line rendering: ``file:line:col: error ND101: message``."""
        prefix = ""
        if filename is not None:
            prefix = f"{filename}:"
        if self.span is not None:
            prefix += f"{self.span.line}:{self.span.col}:"
        if prefix:
            prefix += " "
        return f"{prefix}{self.severity} {self.code}: {self.message}"

    def __repr__(self):
        return f"Diagnostic({self.code}, {self.severity}, {self.message!r})"


class ProgramAnalysisError(ConfigurationError):
    """A program failed static analysis with error-severity diagnostics.

    Subclasses :class:`ConfigurationError` so existing "bad program"
    handlers keep working; ``diagnostics`` carries the structured errors.
    """

    def __init__(self, diagnostics):
        self.diagnostics = tuple(diagnostics)
        lines = "\n  ".join(d.format() for d in self.diagnostics)
        super().__init__(
            "program failed static analysis "
            "(pass unsafe_skip_analysis=True to run it anyway):\n  "
            + lines
        )


# ---------------------------------------------------------------- helpers


def atom_arity(atom):
    return 1 + len(atom.terms)


def term_at(atom, position):
    return atom.loc if position == 0 else atom.terms[position - 1]


def atom_var_names(atom):
    """The variable names an atom binds when matched."""
    return {
        term.name
        for term in (atom.loc,) + atom.terms
        if isinstance(term, Var)
    }


def bound_positions(atom, bound_names):
    """Positions of *atom* whose value is known given *bound_names*."""
    positions = []
    for position in range(atom_arity(atom)):
        term = term_at(atom, position)
        if isinstance(term, Var):
            if term.name in bound_names:
                positions.append(position)
        elif not isinstance(term, Expr):
            positions.append(position)  # a constant in the pattern
    return tuple(positions)


def _body_var_names(rule):
    names = set()
    for atom in rule.body:
        names |= atom_var_names(atom)
    return names


def _count_output_var(rule):
    """The aggregation-bound variable of a ``count`` rule, else None.

    ``count<N>`` is the one aggregate whose variable is an *output*: the
    engine binds it to the group size, so it need not (and usually does
    not) occur in the body.
    """
    if isinstance(rule, AggregateRule) and rule.func == "count":
        return rule.agg_var.name
    return None


def _term_span(term, rule):
    span = getattr(term, "span", None)
    return span if span is not None else getattr(rule, "span", None)


# ------------------------------------------------- pass 4: SIPS schedules


class SipStep:
    """One join step of a SIPS schedule: probe body atom *body_pos*.

    ``bound_before``/``bound_after`` are the variable-name sets known
    entering and leaving the step; ``guards`` are indexes into
    ``rule.guards`` fired on each match of this step.
    """

    __slots__ = ("body_pos", "bound_before", "bound_after", "guards")

    def __init__(self, body_pos, bound_before, bound_after, guards):
        self.body_pos = body_pos
        self.bound_before = bound_before
        self.bound_after = bound_after
        self.guards = guards

    def __repr__(self):
        return f"SipStep(pos={self.body_pos}, guards={self.guards})"


class SipJoin:
    """The SIPS annotation for one rule triggered at one body position:
    the join order plus the earliest-firing guard schedule. ``pre_guards``
    are guard indexes decidable on the trigger bindings alone."""

    __slots__ = ("trigger_pos", "pre_guards", "steps")

    def __init__(self, trigger_pos, pre_guards, steps):
        self.trigger_pos = trigger_pos
        self.pre_guards = pre_guards
        self.steps = steps

    def __repr__(self):
        return f"SipJoin(@{self.trigger_pos}: {list(self.steps)!r})"


def sip_join(rule, trigger_pos):
    """The SIPS schedule for *rule* when body atom *trigger_pos* appears.

    Greedy most-bound-first atom ordering (the atom with the most known
    positions gets the most selective index; ties keep body order), with
    each declared guard fired at the earliest point its variables are all
    bound. Opaque guards — and declared guards over variables the body
    never binds, which pass 1 rejects — run after the final step on full
    bindings. :mod:`repro.datalog.plan` compiles exactly this schedule
    into the executable :class:`~repro.datalog.plan.JoinPlan`.
    """
    bound = set()
    if isinstance(rule.body_loc, Var):
        bound.add(rule.body_loc.name)  # seeded with the node id at runtime
    bound |= atom_var_names(rule.body[trigger_pos])

    pending = [(index, guard_vars(guard))
               for index, guard in enumerate(rule.guards)]

    def ready_guards():
        fired = []
        remaining = []
        for index, names in pending:
            if names is not None and set(names) <= bound:
                fired.append(index)
            else:
                remaining.append((index, names))
        pending[:] = remaining
        return tuple(fired)

    pre_guards = ready_guards()
    steps = []
    remaining_atoms = [
        pos for pos in range(len(rule.body)) if pos != trigger_pos
    ]
    while remaining_atoms:
        best = max(
            remaining_atoms,
            key=lambda pos: (len(bound_positions(rule.body[pos], bound)),
                             -pos),
        )
        remaining_atoms.remove(best)
        atom = rule.body[best]
        before = frozenset(bound)
        bound |= atom_var_names(atom)
        steps.append(SipStep(best, before, frozenset(bound), ready_guards()))

    leftovers = tuple(index for index, _names in pending)
    if leftovers:
        if steps:
            last = steps[-1]
            steps[-1] = SipStep(last.body_pos, last.bound_before,
                                last.bound_after, last.guards + leftovers)
        else:
            pre_guards = pre_guards + leftovers
    return SipJoin(trigger_pos, pre_guards, tuple(steps))


def rule_sips(rule):
    """All SIPS schedules of a (non-aggregate) rule, one per trigger."""
    return tuple(sip_join(rule, pos) for pos in range(len(rule.body)))


def sip_violations(rule, join):
    """Guard indexes of *join* scheduled before their variables bind.

    Always empty for schedules built by :func:`sip_join` on a rule that
    passed the safety pass; this is the validator for annotations that
    arrive from anywhere else.
    """
    bound = set()
    if isinstance(rule.body_loc, Var):
        bound.add(rule.body_loc.name)
    bound |= atom_var_names(rule.body[join.trigger_pos])
    violations = []

    def check(guard_indexes):
        for index in guard_indexes:
            names = guard_vars(rule.guards[index])
            if names is not None and not set(names) <= bound:
                violations.append(index)

    check(join.pre_guards)
    for step in join.steps:
        bound |= atom_var_names(rule.body[step.body_pos])
        check(step.guards)
    return violations


# ----------------------------------------------------------------- passes


def _pass_safety(rules, diags):
    """Range restriction. Returns {(rule_index, guard_index)} of guards
    rejected by ND102 so the binding pass does not re-report them."""
    unsafe_guards = set()
    unsafe_head_vars = set()
    for rule_index, rule in enumerate(rules):
        body_vars = _body_var_names(rule)
        if _count_output_var(rule) is not None:
            # count<N> *defines* N as the group size; the engine binds it
            # during aggregation, so the head occurrence is safe even
            # though no body literal carries it.
            body_vars = body_vars | {rule.agg_var.name}
        head = rule.head
        for position in range(atom_arity(head)):
            term = term_at(head, position)
            if isinstance(term, Var):
                if term.name not in body_vars:
                    unsafe_head_vars.add((rule_index, term.name))
                    diags.append(Diagnostic(
                        "ND101", ERROR,
                        f"rule {rule.name}: head variable '{term.name}' is "
                        "not bound by any positive body literal",
                        rule=rule.name, predicate=head.relation,
                        variable=term.name, span=_term_span(term, rule),
                        hint=f"bind '{term.name}' in a body atom or replace "
                             "it with a constant",
                    ))
            elif isinstance(term, Expr):
                if term.vars is None:
                    diags.append(Diagnostic(
                        "ND104", INFO,
                        f"rule {rule.name}: head expression "
                        f"'{term.label}' does not declare the variables it "
                        "reads",
                        rule=rule.name, predicate=head.relation,
                        span=_term_span(term, rule),
                        hint="pass vars=(...) so the analyzer can check "
                             "its inputs are bound",
                    ))
                else:
                    for name in term.vars:
                        if name not in body_vars:
                            diags.append(Diagnostic(
                                "ND103", ERROR,
                                f"rule {rule.name}: head expression "
                                f"'{term.label}' reads '{name}', which the "
                                "body never binds",
                                rule=rule.name, predicate=head.relation,
                                variable=name, span=_term_span(term, rule),
                                hint=f"bind '{name}' in a body atom",
                            ))
        for guard_index, guard in enumerate(rule.guards):
            names = guard_vars(guard)
            if names is None:
                label = getattr(guard, "label", None) or "<callable>"
                diags.append(Diagnostic(
                    "ND104", INFO,
                    f"rule {rule.name}: guard '{label}' has an undeclared "
                    "read set, so it only runs once the body is fully bound",
                    rule=rule.name, span=_term_span(guard, rule),
                    hint="use Guard(fn, vars=(...)) to enable early "
                         "scheduling",
                ))
                continue
            for name in names:
                if name not in body_vars:
                    unsafe_guards.add((rule_index, guard_index))
                    diags.append(Diagnostic(
                        "ND102", ERROR,
                        f"rule {rule.name}: guard "
                        f"'{getattr(guard, 'label', '<guard>')}' reads "
                        f"'{name}', which the body never binds (the guard "
                        "could never be scheduled)",
                        rule=rule.name, variable=name,
                        span=_term_span(guard, rule),
                        hint=f"bind '{name}' in a body atom or drop it "
                             "from vars=",
                    ))
    return unsafe_guards, unsafe_head_vars


def _pass_arity(rules, inputs, diags):
    seen = {}  # relation -> (arity, description, span)

    def record(relation, arity, where, span):
        previous = seen.get(relation)
        if previous is None:
            seen[relation] = (arity, where, span)
            return
        prev_arity, prev_where, _prev_span = previous
        if prev_arity != arity:
            diags.append(Diagnostic(
                "ND201", ERROR,
                f"'{relation}' used with arity {arity} in {where} but "
                f"arity {prev_arity} in {prev_where} (arity counts the "
                "@location)",
                predicate=relation, span=span,
                hint="make every literal of a relation carry the same "
                     "number of arguments",
            ))

    for relation in sorted(inputs):
        arity = inputs[relation]
        if arity is not None:
            record(relation, arity, f"the input declaration '{relation}/"
                                    f"{arity}'", None)
    for rule in rules:
        for atom in rule.body:
            record(atom.relation, atom_arity(atom),
                   f"the body of rule {rule.name}", _term_span(atom, rule))
        record(rule.head.relation, atom_arity(rule.head),
               f"the head of rule {rule.name}",
               _term_span(rule.head, rule))


def _type_tag(value):
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, tuple):
        return "tuple"
    return None  # exotic constant: no constraint


def _pass_types(rules, diags):
    """Unify column value types across the program.

    Union-find over (relation, position) slots: a variable occurring in
    several slots of one rule links those slots program-wide; constants
    pin a slot to a type tag. Conflicting tags on one equivalence class
    are ND202. The aggregate head slot of a ``count`` never links to its
    body slot (counting strings is fine); ``sum`` additionally pins both
    to numbers.
    """
    parent = {}
    tags = {}      # root -> (tag, description)
    reported = set()

    def find(slot):
        parent.setdefault(slot, slot)
        root = slot
        while parent[root] != root:
            root = parent[root]
        while parent[slot] != root:
            parent[slot], slot = root, parent[slot]
        return root

    def describe(slot):
        relation, position = slot
        return f"'{relation}' column {position}"

    def conflict(slot, tag, where, prev_tag, prev_where, span):
        key = (slot, frozenset((tag, prev_tag)))
        if key in reported:
            return
        reported.add(key)
        diags.append(Diagnostic(
            "ND202", ERROR,
            f"{describe(slot)} is used as {tag} ({where}) but as "
            f"{prev_tag} ({prev_where})",
            predicate=slot[0], span=span,
            hint="a column must carry one value type in every rule and "
                 "fact",
        ))

    def set_tag(slot, tag, where, span):
        root = find(slot)
        previous = tags.get(root)
        if previous is None:
            tags[root] = (tag, where)
        elif previous[0] != tag:
            conflict(slot, tag, where, previous[0], previous[1], span)

    def union(a, b, span):
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        tag_a, tag_b = tags.get(ra), tags.get(rb)
        parent[rb] = ra
        if tag_a is None:
            if tag_b is not None:
                tags[ra] = tag_b
        elif tag_b is not None and tag_a[0] != tag_b[0]:
            conflict(a, tag_b[0], tag_b[1], tag_a[0], tag_a[1], span)

    for rule in rules:
        agg = rule if isinstance(rule, AggregateRule) else None
        var_slots = {}

        def collect(atom, is_head, rule=rule, agg=agg, var_slots=var_slots):
            where = f"rule {rule.name}"
            for position in range(atom_arity(atom)):
                term = term_at(atom, position)
                slot = (atom.relation, position)
                if isinstance(term, Var):
                    if (is_head and agg is not None
                            and term.name == agg.agg_var.name
                            and agg.func in ("sum", "count")):
                        # The aggregate output is a number regardless of
                        # (count) or in addition to (sum) the body column.
                        set_tag(slot, "number", where,
                                _term_span(term, rule))
                        continue
                    var_slots.setdefault(term.name, []).append(
                        (slot, _term_span(term, rule)))
                elif isinstance(term, Expr):
                    continue  # computed: no static constraint
                else:
                    tag = _type_tag(term)
                    if tag is not None:
                        set_tag(slot, tag, where, _term_span(atom, rule))

        for atom in rule.body:
            collect(atom, is_head=False)
        collect(rule.head, is_head=True)
        if agg is not None and agg.func == "sum":
            for slot, span in var_slots.get(agg.agg_var.name, ()):
                set_tag(slot, "number", f"rule {rule.name} (sum)", span)
        for _name, slots in sorted(var_slots.items()):
            first_slot, first_span = slots[0]
            for slot, span in slots[1:]:
                union(first_slot, slot, span or first_span)


def _pass_stratification(rules, diags):
    """SCC-condense the predicate dependency graph.

    Returns the stratum order: relations grouped by component, listed
    dependencies-first. Cycles through sum/count are ND301 errors; cycles
    through min/max are ND302 infos (monotone, but derivations must be
    kept finite by a guard — exactly what the example programs do), each
    paired with an ND305 info calling out the retraction cost: on these
    rules a disappearing witness forces the engine's support
    re-derivation path, and the recursion can cascade it.
    """
    relations = set()
    edges = {}     # src -> {dst}
    edge_kinds = {}  # (src, dst) -> {"plain", "mono", "nonmono"}
    edge_rules = {}  # (src, dst) -> first rule name
    for rule in rules:
        head_rel = rule.head.relation
        relations.add(head_rel)
        if isinstance(rule, AggregateRule):
            kind = "nonmono" if rule.func in ("sum", "count") else "mono"
        else:
            kind = "plain"
        for atom in rule.body:
            relations.add(atom.relation)
            edges.setdefault(atom.relation, set()).add(head_rel)
            edge_kinds.setdefault((atom.relation, head_rel), set()).add(kind)
            edge_rules.setdefault((atom.relation, head_rel), rule.name)

    # Iterative Tarjan: emits components dependents-first; reversing the
    # emission order lists dependencies (lower strata) first.
    index_of = {}
    lowlink = {}
    on_stack = {}
    stack = []
    components = []
    counter = [0]

    for start in sorted(relations):
        if start in index_of:
            continue
        work = [(start, iter(sorted(edges.get(start, ()))))]
        index_of[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack[start] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent_node = work[-1][0]
                lowlink[parent_node] = min(lowlink[parent_node],
                                           lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(sorted(component)))

    strata = tuple(reversed(components))
    for component in strata:
        members = set(component)
        internal = [
            (src, dst) for (src, dst) in edge_kinds
            if src in members and dst in members
        ]
        cyclic = len(component) > 1 or any(src == dst for src, dst
                                           in internal)
        if not cyclic:
            continue
        kinds = set()
        for edge in internal:
            kinds |= edge_kinds[edge]
        cycle = ", ".join(component)
        if "nonmono" in kinds:
            rule_name = next(
                edge_rules[edge] for edge in sorted(internal)
                if "nonmono" in edge_kinds[edge]
            )
            diags.append(Diagnostic(
                "ND301", ERROR,
                f"unstratifiable aggregation: {{{cycle}}} is a dependency "
                f"cycle through the sum/count aggregate of rule "
                f"{rule_name}, so the fixpoint is not well-defined",
                rule=rule_name, predicate=component[0],
                hint="break the cycle, or aggregate with min/max plus a "
                     "finiteness guard",
            ))
        elif "mono" in kinds:
            rule_name = next(
                edge_rules[edge] for edge in sorted(internal)
                if "mono" in edge_kinds[edge]
            )
            diags.append(Diagnostic(
                "ND302", INFO,
                f"{{{cycle}}} recurses through the min/max aggregate of "
                f"rule {rule_name}; legal, but a guard must keep "
                "derivations finite",
                rule=rule_name, predicate=component[0],
                hint="bound the recursion (e.g. a max-cost or "
                     "path-length guard)",
            ))
            diags.append(Diagnostic(
                "ND305", INFO,
                f"retractions reaching the min/max aggregate of rule "
                f"{rule_name} take the support re-derivation path: when "
                "the group's witness disappears, the engine re-derives "
                "the optimum from the group's remaining members, and the "
                f"{{{cycle}}} recursion can cascade that through "
                "dependent groups",
                rule=rule_name, predicate=component[0],
                hint="expected under churn-heavy inputs; the engine's "
                     "support_rederivations counter measures how often "
                     "it happens",
            ))
    return strata


def _pass_binding(rules, unsafe_guards, diags):
    """Compute the SIPS annotations and validate every guard placement.

    Returns a tuple aligned with *rules*: per ordinary rule the tuple of
    :class:`SipJoin` schedules (one per trigger position), ``None`` for
    aggregate rules (their single body atom needs no join order).
    """
    sips = []
    for rule_index, rule in enumerate(rules):
        if isinstance(rule, AggregateRule):
            sips.append(None)
            continue
        joins = rule_sips(rule)
        for join in joins:
            for guard_index in sip_violations(rule, join):
                if (rule_index, guard_index) in unsafe_guards:
                    continue  # already an ND102
                guard = rule.guards[guard_index]
                diags.append(Diagnostic(
                    "ND401", ERROR,
                    f"rule {rule.name}: guard "
                    f"'{getattr(guard, 'label', '<guard>')}' is scheduled "
                    f"at trigger {join.trigger_pos} before its variables "
                    "bind",
                    rule=rule.name, span=_term_span(guard, rule),
                    hint="this schedule is inconsistent; rebuild it with "
                         "sip_join",
                ))
        sips.append(joins)
    return tuple(sips)


def _pass_liveness(rules, inputs, outputs, unsafe_head_vars, diags):
    head_rels = {rule.head.relation for rule in rules}

    # Single-occurrence variables (pure wildcards) — always on.
    for rule_index, rule in enumerate(rules):
        counts = {}
        spans = {}

        def count(name, span, counts=counts, spans=spans):
            counts[name] = counts.get(name, 0) + 1
            if name not in spans and span is not None:
                spans[name] = span

        for atom in list(rule.body) + [rule.head]:
            for position in range(atom_arity(atom)):
                term = term_at(atom, position)
                if isinstance(term, Var):
                    count(term.name, term.span)
                elif isinstance(term, Expr) and term.vars is not None:
                    for name in term.vars:
                        count(name, term.span)
        for guard in rule.guards:
            for name in (guard_vars(guard) or ()):
                count(name, getattr(guard, "span", None))
        for name in sorted(counts):
            if counts[name] != 1 or name.startswith("_"):
                continue
            if (rule_index, name) in unsafe_head_vars:
                continue  # already an ND101
            if name == _count_output_var(rule):
                continue  # count<N> defines N; a lone head use is the norm
            diags.append(Diagnostic(
                "ND503", INFO,
                f"rule {rule.name}: variable '{name}' occurs only once "
                "(a wildcard?)",
                rule=rule.name, variable=name, span=spans.get(name),
                hint=f"prefix it as '_{name}' to mark the wildcard "
                     "intentional",
            ))

    # The remaining liveness checks need a closed world: without declared
    # inputs, any relation might be populated by base-tuple inserts, so
    # no rule is provably dead and no predicate provably unknown.
    if inputs is not None and rules:
        populated = set(inputs)
        populated |= {
            atom.relation
            for rule in rules for atom in rule.body
            if atom.relation.startswith(CHOICE_PREFIX)
        }
        for rule in rules:
            for atom in rule.body:
                if (atom.relation not in head_rels
                        and atom.relation not in populated):
                    diags.append(Diagnostic(
                        "ND504", ERROR,
                        f"rule {rule.name}: body predicate "
                        f"'{atom.relation}' is neither derived by any rule "
                        "nor a declared input",
                        rule=rule.name, predicate=atom.relation,
                        span=_term_span(atom, rule),
                        hint=f"declare 'input {atom.relation}/"
                             f"{atom_arity(atom)}.' or fix the name",
                    ))
        live = set()
        changed = True
        while changed:
            changed = False
            for rule_index, rule in enumerate(rules):
                if rule_index in live:
                    continue
                if all(atom.relation in populated for atom in rule.body):
                    live.add(rule_index)
                    changed = True
                    if rule.head.relation not in populated:
                        populated.add(rule.head.relation)
        for rule_index, rule in enumerate(rules):
            if rule_index not in live:
                diags.append(Diagnostic(
                    "ND501", WARNING,
                    f"rule {rule.name} is dead: its body can never be "
                    "fully populated from the declared inputs",
                    rule=rule.name, predicate=rule.head.relation,
                    span=getattr(rule, "span", None),
                    hint="it needs a base case, or an input declaration "
                         "for a body predicate",
                ))

    if outputs and rules:
        useful = set(outputs)
        changed = True
        while changed:
            changed = False
            for rule in rules:
                if rule.head.relation not in useful:
                    continue
                for atom in rule.body:
                    if atom.relation not in useful:
                        useful.add(atom.relation)
                        changed = True
        flagged = set()
        for rule in rules:
            relation = rule.head.relation
            if relation in useful or relation in flagged:
                continue
            flagged.add(relation)
            diags.append(Diagnostic(
                "ND502", WARNING,
                f"'{relation}' (rule {rule.name}) cannot reach any "
                "declared output",
                rule=rule.name, predicate=relation,
                span=getattr(rule, "span", None),
                hint=f"declare 'output {relation}.' or remove the rule",
            ))
        if inputs is not None:
            for relation in sorted(inputs):
                if relation not in useful:
                    diags.append(Diagnostic(
                        "ND505", WARNING,
                        f"declared input '{relation}' is consumed by no "
                        "rule on a path to an output",
                        predicate=relation,
                        hint="drop the declaration or use the input",
                    ))


# ------------------------------------------------------------ entry point


class ProgramAnalysis:
    """The analyzer's full result: diagnostics, strata, SIPS annotations.

    ``strata`` lists relation groups dependencies-first (the evaluation
    order a stratified engine would use); ``sips[i]`` is the tuple of
    per-trigger :class:`SipJoin` schedules for ``rules[i]`` (``None`` for
    aggregate rules).
    """

    def __init__(self, rules, diagnostics, strata, sips):
        self.rules = tuple(rules)
        self.diagnostics = tuple(diagnostics)
        self.strata = strata
        self.sips = sips

    @property
    def errors(self):
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self):
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def infos(self):
        return tuple(d for d in self.diagnostics if d.severity == INFO)

    @property
    def ok(self):
        """True when nothing gates execution (no error diagnostics)."""
        return not self.errors

    def by_code(self, code):
        return tuple(d for d in self.diagnostics if d.code == code)

    def raise_if_errors(self):
        if not self.ok:
            raise ProgramAnalysisError(self.errors)
        return self

    def render(self, source=None, filename=None):
        """Human-readable report; with *source*, adds caret excerpts."""
        lines = []
        source_lines = source.splitlines() if source is not None else None
        for diag in self.diagnostics:
            lines.append(diag.format(filename=filename))
            span = diag.span
            if (source_lines is not None and span is not None
                    and 1 <= span.line <= len(source_lines)):
                text = source_lines[span.line - 1]
                lines.append(f"    {text}")
                caret = " " * (span.col - 1) + "^" * max(1, span.length)
                lines.append(f"    {caret}")
            if diag.hint:
                lines.append(f"    hint: {diag.hint}")
        if not self.diagnostics:
            lines.append("clean: no diagnostics")
        return "\n".join(lines)


def _normalize_inputs(inputs):
    if inputs is None:
        return None
    if isinstance(inputs, dict):
        return dict(inputs)
    return {name: None for name in inputs}


def analyze(program_or_rules, inputs=None, outputs=None):
    """Run every pass over a :class:`~repro.datalog.engine.Program` or a
    plain rule list; returns a :class:`ProgramAnalysis`.

    *inputs* (``{relation: arity-or-None}`` or an iterable of names)
    declares the base relations the deployment inserts — enabling the
    closed-world liveness checks — and *outputs* the relations consumed
    outside the program. Both default to the program's own declarations
    (``input r/3.`` / ``output r.`` in parsed text) when present.
    """
    rules = getattr(program_or_rules, "rules", program_or_rules)
    rules = list(rules)
    if inputs is None:
        inputs = getattr(program_or_rules, "declared_inputs", None)
    if outputs is None:
        outputs = getattr(program_or_rules, "declared_outputs", None)
    inputs = _normalize_inputs(inputs)
    outputs = tuple(outputs) if outputs else ()

    diags = []
    unsafe_guards, unsafe_head_vars = _pass_safety(rules, diags)
    _pass_arity(rules, inputs or {}, diags)
    _pass_types(rules, diags)
    strata = _pass_stratification(rules, diags)
    sips = _pass_binding(rules, unsafe_guards, diags)
    _pass_liveness(rules, inputs, outputs, unsafe_head_vars, diags)
    return ProgramAnalysis(rules, diags, strata, sips)
