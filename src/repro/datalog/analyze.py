"""ndlint's command line: render analyzer diagnostics for NDlog programs.

Usage::

    python -m repro.datalog.analyze examples/mincost.ndl
    python -m repro.datalog.analyze --apps
    python -m repro.datalog.analyze --strata examples/mincost.ndl

File mode parses each program text (``check=False`` — the point is to
*show* the diagnostics, not to raise on them) and renders every
diagnostic with a caret excerpt pointing at the offending source span.
``--apps`` sweeps the built-in applications' DSL programs (including
MapReduce's rule-less schema) — the same set CI gates on. The exit
status is 1 when any program has error-severity diagnostics (or fails
to parse), 0 otherwise; warnings and infos never fail the run.
"""

import argparse
import sys

from repro.datalog.analysis import analyze
from repro.util.errors import ParseError


def _print_strata(analysis, out):
    for index, stratum in enumerate(analysis.strata):
        relations = ", ".join(sorted(stratum))
        print(f"  stratum {index}: {relations}", file=out)


def _run_file(path, show_strata, out):
    """Analyze one program file; True when it gates (has errors)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"{path}: cannot read: {exc}", file=out)
        return True
    try:
        from repro.datalog.parser import parse_program
        program = parse_program(source, check=False)
    except ParseError as exc:
        line = exc.line if exc.line is not None else 1
        col = exc.col if exc.col is not None else 1
        print(f"{path}:{line}:{col}: error: {exc}", file=out)
        return True
    analysis = program.analyze()
    print(analysis.render(source=source, filename=path), file=out)
    if show_strata:
        _print_strata(analysis, out)
    return not analysis.ok


def _run_apps(show_strata, out):
    """Analyze every built-in application; True when any gates."""
    from repro.apps import lint_targets

    failed = False
    for name, program in sorted(lint_targets().items()):
        analysis = program.analyze()
        status = "FAIL" if analysis.errors else "ok"
        print(
            f"{name}: {status} ({len(analysis.errors)} errors, "
            f"{len(analysis.warnings)} warnings, "
            f"{len(analysis.infos)} infos)",
            file=out,
        )
        for diag in analysis.diagnostics:
            print(f"  {diag.format()}", file=out)
            if diag.hint:
                print(f"    hint: {diag.hint}", file=out)
        if show_strata:
            _print_strata(analysis, out)
        failed = failed or bool(analysis.errors)
    return failed


def main(argv=None, out=None):
    out = sys.stdout if out is None else out
    parser = argparse.ArgumentParser(
        prog="python -m repro.datalog.analyze",
        description="ndlint: static analysis for NDlog programs",
    )
    parser.add_argument("files", nargs="*",
                        help="program text files to analyze")
    parser.add_argument("--apps", action="store_true",
                        help="analyze the built-in applications' programs")
    parser.add_argument("--strata", action="store_true",
                        help="also print the stratum evaluation order")
    args = parser.parse_args(argv)
    if not args.files and not args.apps:
        parser.error("give program files and/or --apps")

    failed = False
    for path in args.files:
        failed = _run_file(path, args.strata, out) or failed
    if args.apps:
        failed = _run_apps(args.strata, out) or failed
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
