"""Embedded DSL for derivation rules.

Rules are constructed programmatically (there is no text parser; programs
are small and a Python DSL keeps them type-checked):

    X, Y, K = Var("X"), Var("Y"), Var("K")
    r1 = Rule(
        "R1",
        head=Atom("cost", X, Y, Y, K),
        body=[Atom("link", X, Y, K)],
    )

The first term of every atom is its location (the ``@`` argument). All body
atoms of one rule must share the same location term; the head location may
differ (a remote-headed rule, which makes the engine send ``+τ/−τ``
notifications to the head's node).
"""

from repro.model import Tup
from repro.util.errors import ConfigurationError


class Span:
    """A source location: 1-based line/column plus the rule's index.

    The text parser attaches one to every AST node it builds so analyzer
    diagnostics (:mod:`repro.datalog.analysis`) and parse errors can point
    at real source locations; DSL-built nodes carry ``span=None``.
    """

    __slots__ = ("line", "col", "length", "rule_index")

    def __init__(self, line, col, length=1, rule_index=None):
        self.line = line
        self.col = col
        self.length = length
        self.rule_index = rule_index

    def __repr__(self):
        return f"Span({self.line}:{self.col})"

    def __eq__(self, other):
        return (isinstance(other, Span)
                and (self.line, self.col, self.length, self.rule_index)
                == (other.line, other.col, other.length, other.rule_index))

    def __hash__(self):
        return hash((self.line, self.col, self.length, self.rule_index))


class Var:
    """A rule variable, matched by unification.

    Equality and hashing are by name only; *span* (when the variable came
    from parsed text) records the occurrence's source location.
    """

    __slots__ = ("name", "span")

    def __init__(self, name, span=None):
        self.name = name
        self.span = span

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self):
        return hash(("var", self.name))


class Expr:
    """A computed head term: a pure function of the bound variables.

    ``Expr(lambda b: b["K1"] + b["K2"], "K1+K2")`` — the label is only used
    for display. Expressions must be deterministic and side-effect free
    (assumption 6 in the paper: node computation is deterministic).
    *vars* optionally declares the variables the function reads (the text
    parser fills it in so comparison guards over expressions can be
    scheduled early; None = unknown).
    """

    __slots__ = ("fn", "label", "vars", "span")

    def __init__(self, fn, label="<expr>", vars=None, span=None):
        self.fn = fn
        self.label = label
        self.vars = None if vars is None else tuple(
            v.name if isinstance(v, Var) else v for v in vars
        )
        self.span = span

    def __repr__(self):
        return self.label

    def evaluate(self, bindings):
        return self.fn(bindings)


class Guard:
    """A guard predicate with declared variable dependencies.

    ``Guard(lambda b: b["C"] != b["D"], vars=("C", "D"))`` — *vars* names
    every binding the predicate reads, which lets the plan compiler fire
    the guard at the earliest join step where those variables are bound
    (pruning partial matches instead of full cross products). The
    predicate must be pure and deterministic, and must not read bindings
    outside *vars*. ``vars=None`` (and any plain callable used as a guard)
    means the read set is unknown, so the guard only runs once the body is
    fully bound.
    """

    __slots__ = ("fn", "vars", "label", "span")

    def __init__(self, fn, vars=None, label="<guard>", span=None):
        self.fn = fn
        self.vars = None if vars is None else tuple(
            v.name if isinstance(v, Var) else v for v in vars
        )
        self.label = label
        self.span = span

    def __call__(self, bindings):
        return self.fn(bindings)

    def __repr__(self):
        shown = "?" if self.vars is None else ", ".join(self.vars)
        return f"Guard({self.label}: {shown})"


def guard_vars(guard):
    """Declared variable names of *guard*, or None when unknown.

    None means the guard is an opaque callable (or an undeclared Guard)
    that may read any binding, so it can only be scheduled after the body
    is fully bound.
    """
    return guard.vars if isinstance(guard, Guard) else None


class Atom:
    """A relation pattern: ``relation(@loc_term, *terms)``.

    Terms may be :class:`Var`, constants, or (in heads only) :class:`Expr`.
    """

    __slots__ = ("relation", "loc", "terms", "span")

    def __init__(self, relation, loc, *terms, span=None):
        self.relation = relation
        self.loc = loc
        self.terms = tuple(terms)
        self.span = span

    def __repr__(self):
        inner = ", ".join([f"@{self.loc!r}"] + [repr(t) for t in self.terms])
        return f"{self.relation}({inner})"

    def match(self, tup, bindings):
        """Unify this atom against *tup* given existing *bindings*.

        Returns the extended bindings dict, or None on mismatch. Does not
        mutate *bindings*.
        """
        if tup.relation != self.relation or len(tup.args) != len(self.terms):
            return None
        new = dict(bindings)
        for term, value in zip((self.loc,) + self.terms, (tup.loc,) + tup.args):
            if isinstance(term, Var):
                if term.name in new:
                    if new[term.name] != value:
                        return None
                else:
                    new[term.name] = value
            elif isinstance(term, Expr):
                return None  # expressions are head-only
            elif term != value:
                return None
        return new

    def instantiate(self, bindings):
        """Build a ground :class:`Tup` from *bindings* (head atoms)."""
        values = []
        for term in (self.loc,) + self.terms:
            if isinstance(term, Var):
                if term.name not in bindings:
                    raise ConfigurationError(
                        f"unbound head variable {term.name} in {self!r}"
                    )
                values.append(bindings[term.name])
            elif isinstance(term, Expr):
                values.append(term.evaluate(bindings))
            else:
                values.append(term)
        return Tup(self.relation, values[0], *values[1:])


def _check_colocated(name, body):
    if not body:
        raise ConfigurationError(f"rule {name}: empty body")
    loc = body[0].loc
    for atom in body[1:]:
        if atom.loc != loc:
            raise ConfigurationError(
                f"rule {name}: body atoms must share one location term "
                f"(localization convention); got {body[0]!r} vs {atom!r}"
            )
    return loc


class Rule:
    """An ordinary derivation rule ``head ← body [where guards]``.

    *guards* is a list of predicates over the bindings dict, evaluated after
    the body is fully bound; a binding only derives the head if every guard
    returns True. Guards must be pure and deterministic.
    """

    kind = "rule"

    def __init__(self, name, head, body, guards=(), span=None):
        self.name = name
        self.head = head
        self.body = list(body)
        self.guards = tuple(guards)
        self.body_loc = _check_colocated(name, self.body)
        self.span = span

    def __repr__(self):
        return f"Rule({self.name}: {self.head!r} :- {self.body!r})"


class AggregateRule:
    """An aggregate rule, e.g. ``bestCost(@X,Y,min<K>) ← cost(@X,Y,Z,K)``.

    The head contains exactly one :class:`Agg` marker term produced by the
    ``agg`` argument: ``AggregateRule("R3", head=Atom("bestCost", X, Y, K),
    body=[Atom("cost", X, Y, Z, K)], agg_var=K, func="min")``. Group keys are
    the head's non-aggregated variables. Supported functions: min, max, sum,
    count. For min/max the reported provenance support is the single witness
    tuple achieving the optimum (deterministic tie-break); for sum/count it
    is the full group.
    """

    kind = "aggregate"
    FUNCS = ("min", "max", "sum", "count")

    def __init__(self, name, head, body, agg_var, func, guards=(), key=None,
                 span=None):
        if func not in self.FUNCS:
            raise ConfigurationError(f"rule {name}: unknown aggregate {func}")
        self.span = span
        #: Optional comparison key for min/max (e.g. shortest-path-first for
        #: path vectors); must be pure and deterministic.
        self.key = key
        if len(body) != 1:
            raise ConfigurationError(
                f"rule {name}: aggregate rules take exactly one body atom"
            )
        self.name = name
        self.head = head
        self.body = list(body)
        self.agg_var = agg_var
        self.func = func
        self.guards = tuple(guards)
        self.body_loc = _check_colocated(name, self.body)
        head_vars = [t for t in (head.loc,) + head.terms if isinstance(t, Var)]
        if agg_var not in head_vars:
            raise ConfigurationError(
                f"rule {name}: aggregate variable {agg_var} must appear in head"
            )
        self.group_vars = tuple(v for v in head_vars if v != agg_var)

    def __repr__(self):
        return (
            f"AggregateRule({self.name}: {self.head!r} :- "
            f"{self.func}<{self.agg_var!r}> {self.body!r})"
        )


CHOICE_PREFIX = "__choice__"


def choice_tuple(rule_name, node, *args):
    """The choice token that activates a :class:`MaybeRule` binding.

    Per Appendix A.1 of the paper, a maybe rule is equivalent to an ordinary
    rule with an extra base tuple β that the node inserts or deletes when it
    decides to (stop) deriving the head. This constructs that β for the given
    head argument values.
    """
    return Tup(CHOICE_PREFIX + rule_name, node, *args)


class MaybeRule:
    """A 'maybe' rule (Section 3.4): derivation is at the node's discretion.

    The engine adds a hidden body atom — the choice token over the head's
    argument terms — so the head is derived exactly while both the body holds
    *and* the node has inserted the matching :func:`choice_tuple`. The token
    shows up in provenance as a base-tuple insert, which is the paper's
    intended meaning: the node's (possibly confidential or black-box)
    decision is itself a root cause.
    """

    kind = "maybe"

    def __init__(self, name, head, body, guards=(), span=None):
        self.name = name
        self.head = head
        self.guards = tuple(guards)
        self.span = span
        head_terms = (head.loc,) + head.terms
        for term in head_terms:
            if isinstance(term, Expr):
                raise ConfigurationError(
                    f"maybe rule {name}: head expressions unsupported "
                    "(the choice token must mirror head terms)"
                )
        token_atom = Atom(CHOICE_PREFIX + name, *head_terms)
        self.body = list(body) + [token_atom]
        self.body_loc = _check_colocated(name, self.body)

    def __repr__(self):
        return f"MaybeRule({self.name}: {self.head!r} maybe:- {self.body!r})"
