"""Weighted z-sets: the delta algebra under the differential engine.

A **z-set** maps tuples to integer weights (DBSP's Z-set / weighted
multiset; see SNIPPETS.md Snippet 2, ``theSherwood/pydbsp``). The engine
uses them in two roles:

* as the **multiplicity view** of a relation — a tuple's weight in the
  store is its base insertion count plus its derivation instances plus
  its believed notifications (:meth:`repro.datalog.store.TupleStore.
  weight`), and it is *present* exactly while that weight is positive;
* as the **delta journal** of a batch — while a sink is installed
  (:meth:`~repro.datalog.engine.DatalogApp.delta_batch`), every presence
  appear records ``+1`` and every disappear ``−1``, so the batch's net
  semantic change is the surviving non-zero entries. A retraction is a
  weight ``−1`` addition, and a retract-then-reinsert cancels to the
  empty z-set — the algebraic form of the engine's "deletion needs no
  snapshot-restore" contract.

Weights sum under :meth:`add`; entries reaching weight 0 are dropped
eagerly so emptiness and iteration reflect the *net* delta. Iteration is
canonical (tuples ordered by :meth:`~repro.model.Tup.canonical_key`), so
consumers of a delta are deterministic like every other observable.
"""

__all__ = ["ZSet"]


class ZSet:
    """An integer-weighted set of tuples with group (+/-) structure."""

    __slots__ = ("_weights",)

    def __init__(self, entries=()):
        self._weights = {}
        for item, weight in entries:
            self.add(item, weight)

    def add(self, item, weight=1):
        """Sum *weight* onto *item*'s entry, dropping it when it nets 0."""
        if weight == 0:
            return
        total = self._weights.get(item, 0) + weight
        if total == 0:
            self._weights.pop(item, None)
        else:
            self._weights[item] = total

    def weight(self, item):
        return self._weights.get(item, 0)

    def is_empty(self):
        return not self._weights

    def __bool__(self):
        return bool(self._weights)

    def __len__(self):
        """Support size: tuples with a non-zero weight."""
        return len(self._weights)

    def __contains__(self, item):
        return item in self._weights

    def items(self):
        """(tuple, weight) pairs in canonical tuple order."""
        return sorted(
            self._weights.items(), key=lambda pair: pair[0].canonical_key()
        )

    def __iter__(self):
        return iter(item for item, _weight in self.items())

    def inserts(self):
        """Tuples with positive weight, in canonical order."""
        return [item for item, weight in self.items() if weight > 0]

    def retractions(self):
        """Tuples with negative weight, in canonical order."""
        return [item for item, weight in self.items() if weight < 0]

    def negate(self):
        return ZSet((item, -weight) for item, weight in self._weights.items())

    def __add__(self, other):
        out = ZSet(self._weights.items())
        for item, weight in other._weights.items():
            out.add(item, weight)
        return out

    def __eq__(self, other):
        return isinstance(other, ZSet) and self._weights == other._weights

    def __hash__(self):  # pragma: no cover - z-sets are mutable
        raise TypeError("ZSet is unhashable (mutable)")

    def __repr__(self):
        inner = ", ".join(f"{item!r}: {weight:+d}"
                          for item, weight in self.items())
        return f"ZSet({{{inner}}})"
