"""Measurement accounting for the paper's evaluation figures.

The paper reports four cost dimensions; each has a collector here:

* **Traffic** (Figure 5): per-message payload bytes plus SNP overheads. The
  paper's fixed wire sizes are used (22 B timestamp+refcount per message,
  156 B per authenticator, 187 B per acknowledgment) so relative overheads
  are comparable. Categories mirror the figure: baseline, proxy,
  provenance, authenticators, acknowledgments.
* **Storage** (Figure 6): per-node log growth, broken down into message
  contents, signatures, authenticators, and index overhead.
* **Computation** (Figure 7): counts of RSA sign/verify and SHA-256
  operations per node (from :class:`repro.crypto.keys.CryptoCounter`),
  convertible to CPU load with measured per-operation costs.
* **Query** (Figure 8): bytes downloaded (logs, authenticators,
  checkpoints) and turnaround split into download / authentication check /
  replay.
"""

import time

from repro.snp.evidence import (
    TIMESTAMP_OVERHEAD_BYTES, AUTHENTICATOR_BYTES, ACK_BYTES,
)

TRAFFIC_CATEGORIES = (
    "baseline", "proxy", "provenance", "authenticators", "acknowledgments",
    "replication",
)


class TrafficMeter:
    """Byte counters per traffic category, per node."""

    def __init__(self):
        self._bytes = {}      # node -> {category: bytes}
        self.messages_sent = 0
        self.batches_sent = 0
        self.acks_sent = 0
        self.replication_pushes = 0

    def _bucket(self, node):
        return self._bytes.setdefault(
            node, {category: 0 for category in TRAFFIC_CATEGORIES}
        )

    def reset(self):
        """Zero all counters (used to measure steady state after a
        bootstrap/warm-up phase, as the paper's stabilized-ring numbers
        do)."""
        self._bytes.clear()
        self.messages_sent = 0
        self.batches_sent = 0
        self.acks_sent = 0
        self.replication_pushes = 0

    def record_batch(self, node, msgs, native_sizer=None):
        """Account one WireBatch worth of traffic sent by *node*.

        *native_sizer(msg) -> (native_bytes, overhead_category)* maps each
        message to the size the unmodified primary system would have sent
        and says whether the tuple-encoding overhead counts as 'proxy' (the
        Quagga case) or 'provenance' (instrumented applications).
        """
        bucket = self._bucket(node)
        for msg in msgs:
            payload = msg.payload_size()
            if native_sizer is not None:
                native, category = native_sizer(msg)
                native = min(native, payload)
            else:
                native, category = payload, "provenance"
            bucket["baseline"] += native
            bucket[category] += payload - native
            bucket["provenance"] += TIMESTAMP_OVERHEAD_BYTES
            self.messages_sent += 1
        bucket["authenticators"] += AUTHENTICATOR_BYTES
        self.batches_sent += 1

    def record_ack(self, node):
        self._bucket(node)["acknowledgments"] += ACK_BYTES
        self.acks_sent += 1

    def record_replication(self, node, nbytes):
        """Account one log-replication push originated by *node*: the
        shipped segment's committed bytes plus the head authenticator."""
        self._bucket(node)["replication"] += nbytes + AUTHENTICATOR_BYTES
        self.replication_pushes += 1

    def totals(self):
        """Aggregate byte counts across all nodes, per category."""
        out = {category: 0 for category in TRAFFIC_CATEGORIES}
        for bucket in self._bytes.values():
            for category, value in bucket.items():
                out[category] += value
        return out

    def node_totals(self, node):
        return dict(self._bucket(node))

    def total_bytes(self):
        return sum(self.totals().values())

    def baseline_bytes(self):
        return self.totals()["baseline"]

    def overhead_factor(self):
        """Total traffic normalized to the baseline (Figure 5's y-axis)."""
        baseline = self.baseline_bytes()
        if baseline == 0:
            return 0.0
        return self.total_bytes() / baseline


class RetentionMeter:
    """Checkpoint-GC accounting: what the retention handshake reclaims.

    ``log_bytes_reclaimed`` counts committed entry bytes truncated from
    node logs, ``mirror_bytes_reclaimed`` the same for replica-held
    mirror copies; ``gc_passes`` counts handshake passes and
    ``entries_discarded`` the log entries dropped — together they bound
    the steady-state storage story the GC arm of
    ``benchmarks/bench_storage.py`` measures.
    """

    def __init__(self):
        self.gc_passes = 0
        self.log_bytes_reclaimed = 0
        self.mirror_bytes_reclaimed = 0
        self.entries_discarded = 0

    def total_bytes_reclaimed(self):
        return self.log_bytes_reclaimed + self.mirror_bytes_reclaimed

    def as_dict(self):
        return dict(vars(self))


class StorageReport:
    """Per-node log growth breakdown (Figure 6)."""

    # Fixed per-entry byte estimates matching the wire-size constants.
    SIGNATURE_BYTES = 128
    INDEX_BYTES = 16

    def __init__(self, node_id, duration_seconds):
        self.node_id = node_id
        self.duration_seconds = duration_seconds
        self.message_bytes = 0
        self.signature_bytes = 0
        self.authenticator_bytes = 0
        self.index_bytes = 0
        self.checkpoint_bytes = 0
        self.entries = 0

    @classmethod
    def from_log(cls, log, duration_seconds):
        report = cls(log.node_id, duration_seconds)
        from repro.snp.log import SND, RCV, ACK, CHK
        from repro.util.serialization import canonical_size
        for entry in log.entries:
            report.entries += 1
            report.index_bytes += cls.INDEX_BYTES
            size = canonical_size(entry.content)
            if entry.entry_type in (SND, RCV):
                report.message_bytes += size
                if entry.entry_type == RCV:
                    # rcv entries embed the sender's authenticator.
                    report.authenticator_bytes += AUTHENTICATOR_BYTES
                    report.signature_bytes += cls.SIGNATURE_BYTES
            elif entry.entry_type == ACK:
                report.authenticator_bytes += AUTHENTICATOR_BYTES
                report.signature_bytes += cls.SIGNATURE_BYTES
            elif entry.entry_type == CHK:
                report.checkpoint_bytes += size
            else:
                report.message_bytes += size
        return report

    def total_bytes(self, include_checkpoints=False):
        total = (
            self.message_bytes + self.signature_bytes
            + self.authenticator_bytes + self.index_bytes
        )
        if include_checkpoints:
            total += self.checkpoint_bytes
        return total

    def growth_mb_per_minute(self):
        """Log growth excluding checkpoints, as Figure 6 reports it."""
        if self.duration_seconds <= 0:
            return 0.0
        per_second = self.total_bytes() / self.duration_seconds
        return per_second * 60 / 1e6


class CpuReport:
    """Crypto-operation CPU accounting (Figure 7)."""

    def __init__(self, counter, duration_seconds,
                 sign_cost=None, verify_cost=None, hash_cost_per_mb=None):
        self.counter = counter
        self.duration_seconds = duration_seconds
        self.sign_cost = sign_cost
        self.verify_cost = verify_cost
        self.hash_cost_per_mb = hash_cost_per_mb

    @staticmethod
    def measure_op_costs(identity, repeats=20):
        """Measure per-operation sign/verify/hash costs of the crypto
        substrate on this machine (the paper reports 1.3 ms / 66 µs for
        1024-bit RSA on its hardware)."""
        payload = ("cpu-probe", 1234)
        start = time.perf_counter()
        for _ in range(repeats):
            signature = identity.sign(payload)
        sign_cost = (time.perf_counter() - start) / repeats
        public = identity.keypair.public_only()
        start = time.perf_counter()
        for _ in range(repeats):
            identity.verify(public, payload, signature)
        verify_cost = (time.perf_counter() - start) / repeats
        import hashlib
        blob = b"x" * (1 << 20)
        start = time.perf_counter()
        hashlib.sha256(blob).digest()
        hash_cost_per_mb = time.perf_counter() - start
        return sign_cost, verify_cost, hash_cost_per_mb

    def cpu_seconds(self):
        """Estimated CPU time spent on crypto over the run."""
        total = 0.0
        if self.sign_cost is not None:
            total += self.counter.signatures * self.sign_cost
        if self.verify_cost is not None:
            total += self.counter.verifications * self.verify_cost
        if self.hash_cost_per_mb is not None:
            total += (self.counter.bytes_hashed / 1e6) * self.hash_cost_per_mb
        return total

    def load_percent(self):
        """Average additional CPU load as % of one core (Figure 7's axis)."""
        if self.duration_seconds <= 0:
            return 0.0
        return 100.0 * self.cpu_seconds() / self.duration_seconds


class QueryStats:
    """Per-query cost accounting (Figure 8).

    Parallel view builds give every worker its own QueryStats, merged into
    the querier's via the field-generic :meth:`merge` in canonical node
    order — integer counters are therefore *identical* across worker
    counts, while the wall-clock fields in :data:`TIMING_FIELDS` are
    nondeterministic (they time real execution) and are excluded from
    equivalence checks via :meth:`counters`.
    """

    DOWNLOAD_BANDWIDTH_BPS = 10e6 / 8  # paper assumes a 10 Mbps download

    #: Fields measuring elapsed wall-clock rather than deterministic work.
    TIMING_FIELDS = ("auth_check_seconds", "replay_seconds")

    #: Fields that depend on *which* executor ran the builds (worker-
    #: resident cache traffic, shared-memory transport accounting). They
    #: are deterministic for a fixed executor but legitimately differ
    #: between, say, a serial build (no cache, no shm) and a resident
    #: process pool — so, like the timing fields, they are excluded from
    #: the serial ≡ parallel equivalence projection in :meth:`counters`.
    EXECUTOR_FIELDS = (
        "view_cache_hits", "view_cache_misses", "view_cache_evictions",
        "shm_bytes", "pickle_bytes_avoided",
    )

    def __init__(self):
        self.log_bytes = 0
        self.authenticator_bytes = 0
        self.checkpoint_bytes = 0
        self.logs_fetched = 0
        self.delta_fetches = 0
        self.cache_hits = 0
        self.refreshes = 0
        self.auth_check_seconds = 0.0
        self.replay_seconds = 0.0
        self.events_replayed = 0
        self.signatures_verified = 0
        self.auth_checks_skipped = 0
        # Skipped authenticators retroactively checked by a later, wider
        # build (the pending-skip registry; see microquery.py).
        self.auth_checks_recovered = 0
        # Skipped authenticators that can never be checked: they fall
        # below a node's advertised retention floor, whose prefix
        # checkpoint GC has permanently discarded (the pending-skip
        # registry drains them instead of waiting forever).
        self.auth_checks_tombstoned = 0
        self.microqueries = 0
        # Anchoring-segment fetches: targeted retrievals issued solely to
        # check pending skipped authenticators against a wider chain
        # segment (instead of waiting for a later full build).
        self.anchor_fetches = 0
        # Querier-side memory bound: checked-authenticator memo entries
        # and evidence-store authenticators evicted because they fall
        # strictly below a head already verified against the node's chain.
        self.evidence_pruned = 0
        # --- executor-dependent fields (see EXECUTOR_FIELDS) ---
        # Worker-resident view cache traffic: a hit extends a replay that
        # never left its worker; a miss (evicted entry, died worker, or a
        # head the worker does not hold) falls back to a cold build.
        self.view_cache_hits = 0
        self.view_cache_misses = 0
        self.view_cache_evictions = 0
        # Bytes moved through shared-memory buffers instead of the pool's
        # pickle pipe, and replay-blob bytes never (re-)pickled at all
        # because the view stayed worker-resident.
        self.shm_bytes = 0
        self.pickle_bytes_avoided = 0
        # Differential-engine work done inside replays: presence toggles
        # the replayed machines consumed, Der/Und derivation changes they
        # emitted, derivation instances dropped because a support
        # disappeared, and min/max recomputes forced by a disappearing
        # support. Deterministic per replay, so they participate in the
        # serial ≡ parallel counters() projection.
        self.delta_tuples_in = 0
        self.delta_tuples_out = 0
        self.retractions_applied = 0
        self.support_rederivations = 0

    def downloaded_bytes(self):
        return self.log_bytes + self.authenticator_bytes + self.checkpoint_bytes

    def download_seconds(self):
        return self.downloaded_bytes() / self.DOWNLOAD_BANDWIDTH_BPS

    def turnaround_seconds(self):
        """Estimated query turnaround: download + verification + replay."""
        return (
            self.download_seconds() + self.auth_check_seconds
            + self.replay_seconds
        )

    def merge(self, other):
        # Field-generic so new counters can never be silently dropped
        # (every counter lives in the instance __dict__ and is additive).
        for field, value in vars(other).items():
            setattr(self, field, getattr(self, field, 0) + value)

    def copy(self):
        snap = QueryStats()
        snap.merge(self)
        return snap

    def delta_since(self, before):
        """The counters accumulated since *before* was snapshotted, as a
        fresh QueryStats (field-generic, like :meth:`merge`)."""
        delta = QueryStats()
        for field, value in vars(self).items():
            setattr(delta, field, value - getattr(before, field, 0))
        return delta

    @classmethod
    def merged(cls, parts):
        """Fold an ordered iterable of QueryStats into a fresh one.

        The caller fixes the order (canonical node order for per-worker
        stats), which pins down float summation so repeated merges of the
        same parts are bit-identical.
        """
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def counters(self):
        """The deterministic (non-timing, executor-independent) fields,
        as a dict — the projection over which parallel ≡ serial
        equivalence holds."""
        return {
            field: value for field, value in vars(self).items()
            if field not in self.TIMING_FIELDS
            and field not in self.EXECUTOR_FIELDS
        }

    def as_dict(self):
        return dict(vars(self))


class ServiceMeter:
    """Counters for the service plane (transport, daemon, pusher).

    One meter lives on the monitor daemon and one on each pusher; both
    sides expose it through ``/status`` and the push acks, so a load
    test can read the shedding ladder directly: ``pushes_shed`` and
    ``poll_fallbacks`` climbing while ``alerts_dropped`` stays zero is
    the intended degradation order (DESIGN.md, "Service plane").
    """

    FIELDS = (
        # framing / transport
        "frames_sent", "frames_received", "bytes_sent", "bytes_received",
        "garbage_bytes", "corrupt_frames", "oversized_frames",
        # node → daemon pushes
        "pushes_sent", "pushes_accepted", "pushes_shed", "push_retries",
        "push_failures", "poll_fallbacks",
        # daemon query plane
        "refresh_batches", "requests_batched", "queries_served",
        "refreshes_served", "subscriptions_opened", "watch_evaluations",
        "watch_evaluations_skipped", "alerts_emitted", "alerts_dropped",
    )

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def absorb_decoder(self, decoder):
        """Fold a :class:`~repro.service.framing.FrameDecoder`'s damage
        counters in (called when a connection closes)."""
        self.garbage_bytes += decoder.garbage_bytes
        self.corrupt_frames += decoder.corrupt_frames
        self.oversized_frames += decoder.oversized_frames
        decoder.garbage_bytes = 0
        decoder.corrupt_frames = 0
        decoder.oversized_frames = 0

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self):
        busy = {k: v for k, v in self.as_dict().items() if v}
        return f"ServiceMeter({busy!r})"
