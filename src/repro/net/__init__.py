"""Deterministic discrete-event network simulation.

The paper evaluates SNooPy on a testbed (EC2 instances, a local cluster);
this reproduction runs the same protocols over a seeded discrete-event
simulator so every experiment is exactly repeatable. The simulator provides
bounded message propagation (``Tprop``, assumption 4 of Section 5.2) and
per-node clock skew (``Δclock``, assumption 5).
"""

from repro.net.simulator import Simulator

__all__ = ["Simulator"]
