"""A seeded discrete-event simulator.

Events are (time, sequence, callback) triples in a binary heap; the sequence
number breaks ties deterministically, so two runs with the same seed and the
same schedule order are identical — which is what lets deterministic replay
(and therefore the whole provenance system) be tested end to end.
"""

import heapq
import random

from repro.util.clock import DriftingClock


class Simulator:
    """Global event loop plus per-node clocks and link delays."""

    def __init__(self, seed=0, t_prop=0.05, delta_clock=0.01,
                 min_delay=0.005):
        if min_delay > t_prop:
            raise ValueError("min_delay must not exceed t_prop")
        self.t_prop = t_prop
        self.delta_clock = delta_clock
        self.min_delay = min_delay
        self.now = 0.0
        self._rng = random.Random(seed)
        self._heap = []
        self._seq = 0
        self._clocks = {}
        self.events_processed = 0

    # ------------------------------------------------------------- clocks

    def register_clock(self, node_id):
        """Create (or return) the node's local clock with a random skew in
        ``[-Δclock/2, +Δclock/2]``."""
        if node_id not in self._clocks:
            skew = self._rng.uniform(-self.delta_clock / 2,
                                     self.delta_clock / 2)
            self._clocks[node_id] = DriftingClock(skew)
        return self._clocks[node_id]

    def local_time(self, node_id):
        clock = self._clocks[node_id]
        clock.advance_to(self.now)
        return clock.read()

    # ----------------------------------------------------------- schedule

    def schedule(self, delay, callback):
        """Run *callback()* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def schedule_at(self, t, callback):
        self.schedule(max(0.0, t - self.now), callback)

    def link_delay(self):
        """A random propagation delay in [min_delay, Tprop]."""
        return self._rng.uniform(self.min_delay, self.t_prop)

    def deliver(self, callback):
        """Schedule a message delivery one link-delay from now."""
        self.schedule(self.link_delay(), callback)

    # ---------------------------------------------------------------- run

    def step(self):
        """Process the earliest event; returns False when idle."""
        if not self._heap:
            return False
        t, _seq, callback = heapq.heappop(self._heap)
        self.now = t
        self.events_processed += 1
        callback()
        return True

    def run(self, max_events=None):
        """Drain the event queue (optionally bounded)."""
        steps = 0
        while self.step():
            steps += 1
            if max_events is not None and steps >= max_events:
                break
        return steps

    def run_until(self, t_stop):
        """Process events with time ≤ t_stop; advances ``now`` to t_stop."""
        while self._heap and self._heap[0][0] <= t_stop:
            self.step()
        self.now = max(self.now, t_stop)

    def pending(self):
        return len(self._heap)
