"""Canonical, deterministic serialization.

Everything that is hashed or signed in SNooPy (log entries, tuples, message
payloads, checkpoints) must serialize to the *same* byte string on every node
and on every replay. ``repr`` is not guaranteed stable across containers and
pickle is not canonical, so we define a small recursive encoding with an
explicit type tag per value.

The encoding is length-prefixed and unambiguous, which also makes it safe to
use for equality-by-hash comparisons.
"""

import struct

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TUPLE = b"t"
_TAG_LIST = b"l"
_TAG_DICT = b"d"
_TAG_FROZENSET = b"S"


def canonical_bytes(value):
    """Encode *value* into a canonical byte string.

    Supports None, bool, int, float, str, bytes, and (recursively) tuples,
    lists, dicts (sorted by encoded key) and frozensets (sorted by encoded
    element). Raises TypeError for anything else — objects that want to be
    hashable by the provenance layer expose a ``canonical()`` method
    returning one of the supported types.
    """
    out = []
    _encode(value, out)
    return b"".join(out)


def canonical_size(value):
    """Byte size of the canonical encoding (used for traffic accounting)."""
    return len(canonical_bytes(value))


def _encode(value, out):
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out.append(_TAG_INT + struct.pack(">I", len(body)) + body)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT + struct.pack(">d", value))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_TAG_STR + struct.pack(">I", len(body)) + body)
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES + struct.pack(">I", len(value)) + value)
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE + struct.pack(">I", len(value)))
        for item in value:
            _encode(item, out)
    elif isinstance(value, list):
        out.append(_TAG_LIST + struct.pack(">I", len(value)))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        encoded = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in value.items()
        )
        out.append(_TAG_DICT + struct.pack(">I", len(encoded)))
        for key_bytes, val_bytes in encoded:
            out.append(struct.pack(">I", len(key_bytes)) + key_bytes)
            out.append(struct.pack(">I", len(val_bytes)) + val_bytes)
    elif isinstance(value, frozenset):
        encoded = sorted(canonical_bytes(item) for item in value)
        out.append(_TAG_FROZENSET + struct.pack(">I", len(encoded)))
        for item_bytes in encoded:
            out.append(struct.pack(">I", len(item_bytes)) + item_bytes)
    elif hasattr(value, "canonical"):
        _encode(value.canonical(), out)
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")
