"""Simulated per-node clocks.

The paper (Section 5.2, assumption 5) assumes every node has a local clock
synchronized to within ``delta_clock`` of true time. We model each node's
clock as the simulator's global time plus a fixed skew drawn from
``[-delta_clock/2, +delta_clock/2]``. Skews are fixed per node (no drift over
a run) which is enough for the commitment protocol's plausibility window
checks; the protocol only needs a bound, not a model of drift dynamics.
"""


class DriftingClock:
    """A node-local clock derived from global simulation time plus skew."""

    def __init__(self, skew=0.0):
        self.skew = skew
        self._now = 0.0

    def advance_to(self, global_time):
        """Move the underlying global time forward (monotonically)."""
        if global_time < self._now:
            raise ValueError("simulation time moved backwards")
        self._now = global_time

    def read(self):
        """Current node-local time (global time + skew)."""
        return self._now + self.skew

    def global_time(self):
        return self._now
