"""Shared utilities: errors, deterministic ids, canonical serialization, clocks."""

from repro.util.errors import (
    ReproError,
    AuthenticationError,
    LogVerificationError,
    ReplayDivergence,
    QueryError,
)
from repro.util.serialization import canonical_bytes, canonical_size
from repro.util.clock import DriftingClock

__all__ = [
    "ReproError",
    "AuthenticationError",
    "LogVerificationError",
    "ReplayDivergence",
    "QueryError",
    "canonical_bytes",
    "canonical_size",
    "DriftingClock",
]
