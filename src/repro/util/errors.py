"""Exception hierarchy for the SNP reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Security-relevant failures (bad signatures, broken hash
chains, replay divergence) get their own subclasses because forensic code
paths need to distinguish "the node is provably lying" from "we could not
reach the node".
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system or application was mis-assembled (bad rule, bad topology)."""


class ParseError(ConfigurationError):
    """Program text failed to parse; carries the 1-based source location.

    Subclasses :class:`ConfigurationError` so callers that treat "bad
    program text" generically keep working.
    """

    def __init__(self, message, line=None, col=None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (
                f", column {col})" if col is not None else ")"
            )
        super().__init__(message + location)
        self.line = line
        self.col = col


class AuthenticationError(ReproError):
    """A signature or certificate failed verification."""


class LogVerificationError(ReproError):
    """A retrieved log segment does not match the evidence (authenticator).

    This is *proof* of misbehavior by the node that produced the log: the
    authenticator is signed, and the hash chain it commits to does not match
    the contents the node returned.
    """

    def __init__(self, node, reason):
        super().__init__(f"log of node {node!r} failed verification: {reason}")
        self.node = node
        self.reason = reason


class ReplayDivergence(ReproError):
    """Deterministic replay of a node's log diverged from its recorded sends.

    Raised internally by the replay engine; the microquery module converts it
    into a red vertex rather than letting it propagate to the caller.
    """

    def __init__(self, node, detail):
        super().__init__(f"replay of node {node!r} diverged: {detail}")
        self.node = node
        self.detail = detail


class QueryError(ReproError):
    """A macroquery could not be evaluated (e.g. unknown tuple or node)."""


class NodeUnreachableError(ReproError):
    """The queried node did not respond to a retrieve request."""

    def __init__(self, node):
        super().__init__(f"node {node!r} did not respond")
        self.node = node
