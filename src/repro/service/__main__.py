"""``python -m repro.service`` runs the monitor daemon.

A dedicated entry module (rather than ``-m repro.service.monitor``)
because the package ``__init__`` imports :mod:`repro.service.monitor`,
and runpy warns when asked to re-execute an already-imported module.
"""

import sys

from repro.service.monitor import main

if __name__ == "__main__":
    sys.exit(main())
