"""The REST front end: a minimal HTTP/1.1 layer over asyncio streams.

Routes (all JSON bodies/responses):

* ``GET  /status``    — daemon epoch, stored heads, meter counters;
* ``POST /query``     — evaluate one provenance query spec (``fresh``
  joins the next batched refresh pass first);
* ``POST /refresh``   — join the next refresh pass, returns its epoch;
* ``GET  /marks``     — the daemon's per-node verified heads (its
  low-water marks for the GC handshake);
* ``POST /subscribe`` — open a standing subscription: the response is an
  unbounded ``application/x-ndjson`` stream of state/alert events, one
  JSON object per line, until the client disconnects.

Deliberately stdlib-only and small: request bodies are bounded, parsing
is strict, and anything malformed gets a 4xx and a closed connection —
the service contract lives in :mod:`repro.service.monitor`, not here.
"""

import asyncio
import json

MAX_REQUEST_BYTES = 1 << 20
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class _BadRequest(Exception):
    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


async def _read_request(reader):
    """Parse one request; returns (method, path, body-dict-or-None)."""
    line = await reader.readline()
    if not line:
        raise ConnectionError("closed")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(400, "malformed request line")
    method, path, _version = parts
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) > 64:
            raise _BadRequest(400, "too many headers")
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_REQUEST_BYTES:
        raise _BadRequest(413, "request body too large")
    body = None
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _BadRequest(400, f"request body is not JSON: {exc}")
    return method, path, body


def _response_bytes(status, payload, extra_headers=()):
    body = json.dumps(payload).encode()
    head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    head.extend(extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


async def handle_http(daemon, reader, writer):
    """Serve one connection (one request — ``Connection: close``)."""
    try:
        try:
            method, path, body = await _read_request(reader)
        except _BadRequest as exc:
            writer.write(_response_bytes(
                exc.status, {"ok": False, "error": str(exc)}))
            await writer.drain()
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            return

        if method == "GET" and path == "/status":
            writer.write(_response_bytes(200, daemon.status()))
        elif method == "GET" and path == "/marks":
            writer.write(_response_bytes(200, await daemon.marks()))
        elif method == "POST" and path == "/refresh":
            writer.write(_response_bytes(200, await daemon.refresh()))
        elif method == "POST" and path == "/query":
            if not isinstance(body, dict) or "relation" not in body:
                writer.write(_response_bytes(
                    400, {"ok": False,
                          "error": "query body must carry relation/loc/args"}))
            else:
                writer.write(_response_bytes(200, await daemon.query(body)))
        elif method == "POST" and path == "/subscribe":
            await _serve_subscription(daemon, body, reader, writer)
            return
        elif path in ("/status", "/marks", "/refresh", "/query",
                      "/subscribe"):
            writer.write(_response_bytes(
                405, {"ok": False, "error": f"wrong method for {path}"}))
        else:
            writer.write(_response_bytes(
                404, {"ok": False, "error": f"no route {path!r}"}))
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    except Exception as exc:  # pragma: no cover - defensive
        try:
            writer.write(_response_bytes(
                500, {"ok": False, "error": str(exc)}))
            await writer.drain()
        except ConnectionError:
            pass
    finally:
        try:
            writer.close()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass


async def _serve_subscription(daemon, body, reader, writer):
    """Stream NDJSON events until the subscriber disconnects.

    Each ``writer.drain()`` is the per-connection backpressure point; a
    subscriber that stops reading stalls only its own queue, whose
    overflow policy (drop-oldest + ``lagged``) lives in the daemon.
    """
    watches = (body or {}).get("watches")
    if not isinstance(watches, list) or not watches or not all(
            isinstance(w, dict) and "relation" in w for w in watches):
        writer.write(_response_bytes(
            400, {"ok": False,
                  "error": "subscribe body must carry a list of watch "
                           "specs under 'watches'"}))
        await writer.drain()
        return
    sub = daemon.add_subscription(watches)
    head = ("HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n")
    writer.write(head.encode())
    writer.write((json.dumps(
        {"type": "subscribed", "id": sub.sid,
         "watches": len(watches)}) + "\n").encode())
    await writer.drain()
    # Race each queue wait against client EOF, or a silent disconnect
    # would leave the stream parked on an empty queue forever.
    eof = asyncio.ensure_future(reader.read())
    nxt = None
    try:
        while not sub.closed:
            nxt = asyncio.ensure_future(sub.queue.get())
            done, _pending = await asyncio.wait(
                {nxt, eof}, return_when=asyncio.FIRST_COMPLETED)
            if nxt not in done:
                break
            writer.write((json.dumps(nxt.result()) + "\n").encode())
            await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        eof.cancel()
        if nxt is not None and not nxt.done():
            nxt.cancel()
        daemon.remove_subscription(sub)
