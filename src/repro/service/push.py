"""The node side of the service plane: pushing deltas to the monitor.

One :class:`ServicePusher` serves a whole deployment (the paper's nodes
each push their own log; here the simulation host plays every node, so
one connection multiplexes them). Each cadence tick ships, per node, the
log suffix past the head the daemon last acked — the same
``retrieve(since_index=...)`` delta a polling querier would have
fetched, so fork/tamper fallbacks behave identically — plus cursored
evidence streams (received authenticators, maintainer alarms, retention
faults) and the current floor advertisements.

Failure ladder:

* transport errors → retry with exponential backoff, reconnecting each
  attempt; after ``retries`` the tick is abandoned (``push_failures``)
  and state is untouched, so the next tick re-sends everything — pushes
  are idempotent because acks carry the daemon's *actual* stored heads;
* daemon shed → the ack says so, nothing advances
  (``poll_fallbacks``), the next cadence tick is the poll;
* daemon restart → its hello/push acks report heads the pusher doesn't
  expect; since acked heads only ever come from the daemon, the pusher
  simply rebuilds from what the daemon claims (a full push when heads
  regress to 0).

GC integration: the daemon's acks also carry its query plane's
low-water marks; :class:`ServiceQuerier` republishes them to
``Deployment.register_querier``, so a standing *remote* audit service
bounds node retention exactly like a local standing querier (PR 5
handshake).
"""

import socket
import time

from repro.service.framing import (
    FrameDecoder, MAX_FRAME_BYTES, encode_frame, recv_frame,
)
from repro.metrics import ServiceMeter
from repro.snp.wire import sanitize_response


class ServicePusher:
    """Pushes one deployment's log/evidence deltas to a monitor daemon."""

    def __init__(self, deployment, host, port, timeout=10.0, retries=4,
                 backoff=0.05, backoff_factor=2.0, meter=None, sleep=None,
                 max_frame_bytes=MAX_FRAME_BYTES):
        self.deployment = deployment
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.meter = meter if meter is not None else ServiceMeter()
        self._sleep = sleep if sleep is not None else time.sleep
        self.max_frame_bytes = max_frame_bytes
        self._sock = None
        self._decoder = None
        self.seq = 0
        self.acked_heads = {}     # node -> head index the daemon stored
        self.daemon_marks = {}    # the daemon's low-water marks (GC)
        self._auth_cursors = {}   # node -> {peer: count already pushed}
        self._alarm_cursor = 0
        self._fault_cursor = 0
        self._querier = None

    # ------------------------------------------------------- connection

    def connect(self):
        """Open the transport and run the hello handshake (idempotent)."""
        if self._sock is not None:
            return self
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout)
        self._decoder = FrameDecoder(self.max_frame_bytes)
        ack = self._exchange(self.hello_message())
        if ack is None or ack.get("type") != "hello-ack":
            self.close()
            raise ConnectionError(f"monitor rejected hello: {ack!r}")
        self._adopt_cursors(ack)
        self.acked_heads.update(ack.get("heads") or {})
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._decoder = None

    def _send(self, msg):
        data = encode_frame(msg, self.max_frame_bytes)
        self._sock.sendall(data)
        self.meter.frames_sent += 1
        self.meter.bytes_sent += len(data)

    def _recv(self):
        reply = recv_frame(self._sock, self._decoder)
        if reply is None:
            raise ConnectionError("monitor closed the push stream")
        self.meter.frames_received += 1
        return reply

    def _exchange(self, msg):
        """Send one frame, return the next reply (transport errors
        propagate to the retry loop)."""
        self._send(msg)
        return self._recv()

    # ---------------------------------------------------- message builds

    def hello_message(self):
        dep = self.deployment
        nodes = {}
        for node_id in sorted(dep.nodes, key=str):
            key = dep.public_key_of(node_id)
            factory = dep.app_factories.get(node_id)
            nodes[node_id] = {
                "key": (key.n, key.e),
                "app": factory.wire_spec() if factory is not None else None,
            }
        return {"type": "hello", "deployment": id(dep),
                "t_prop": dep.effective_t_prop(), "nodes": nodes}

    def build_push(self):
        """The delta message for this tick, plus the auth cursors to
        commit if (and only if) the daemon accepts it."""
        dep = self.deployment
        parts = {}
        pending_cursors = {}
        for node_id in sorted(dep.nodes, key=str):
            node = dep.nodes[node_id]
            since = self.acked_heads.get(node_id, 0)
            if since > 0:
                response = node.retrieve(since_index=since)
            else:
                response = node.retrieve()
            auths = {}
            cursors = dict(self._auth_cursors.get(node_id, ()))
            for peer in sorted(node.received_auths, key=str):
                held = node.received_auths[peer]
                done = cursors.get(peer, 0)
                fresh = list(held[done:])
                if fresh:
                    auths[peer] = fresh
                    cursors[peer] = done + len(fresh)
            pending_cursors[node_id] = cursors
            parts[node_id] = {
                "response": sanitize_response(response)
                if response is not None else None,
                "auths": auths,
            }
        maintainer = dep.maintainer
        msg = {
            "type": "push", "seq": self.seq, "now": dep.sim.now,
            "nodes": parts,
            "alarms": list(
                maintainer.missing_ack_alarms[self._alarm_cursor:]),
            "faults": list(
                maintainer.retention_faults[self._fault_cursor:]),
            "floors": dict(dep.retention_floors),
        }
        return msg, pending_cursors

    def _adopt_cursors(self, ack):
        cursors = ack.get("cursors") or {}
        self._alarm_cursor = cursors.get("alarms", self._alarm_cursor)
        self._fault_cursor = cursors.get("faults", self._fault_cursor)

    # ------------------------------------------------------------- push

    def push_once(self):
        """One cadence tick: build, send with retry-with-backoff, adopt
        the ack. Returns the ack dict, or ``None`` when every attempt
        failed (state untouched — the next tick retries the same delta).
        """
        self.seq += 1
        self.meter.pushes_sent += 1
        ack, pending_cursors = self._push_with_retry()
        if ack is None:
            self.meter.push_failures += 1
            return None
        if ack.get("shed"):
            # The daemon is lagging; keep our delta and let the next
            # cadence tick re-offer it — push degrades to poll.
            self.meter.poll_fallbacks += 1
            return ack
        self.meter.pushes_accepted += 1
        self.acked_heads.update(ack.get("heads") or {})
        if ack.get("marks") is not None:
            self.daemon_marks = dict(ack["marks"])
        self._adopt_cursors(ack)
        self._auth_cursors.update(pending_cursors)
        return ack

    def _push_with_retry(self):
        """Send this tick's delta, rebuilding it whenever an attempt had
        to re-handshake: the hello ack may have moved ``acked_heads``
        (most drastically after a daemon restart, which zeroes them), and
        a delta anchored at the *old* heads would hand the fresh daemon a
        mid-chain stub it can never rebuild from."""
        delay = self.backoff
        msg = pending = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.meter.push_retries += 1
                self._sleep(delay)
                delay *= self.backoff_factor
            try:
                fresh = self._sock is None
                self.connect()
                if msg is None or fresh:
                    msg, pending = self.build_push()
                self._send(msg)
                while True:
                    reply = self._recv()
                    if reply.get("type") == "push-ack" \
                            and reply.get("seq") == msg["seq"]:
                        return reply, pending
                    # A stale ack from a timed-out earlier attempt;
                    # absorb its heads (they are authoritative) and keep
                    # reading for ours.
                    if reply.get("type") == "push-ack" \
                            and not reply.get("shed"):
                        self.acked_heads.update(reply.get("heads") or {})
            except (OSError, ConnectionError):
                self.close()
        return None, None

    # ----------------------------------------------------- deployment glue

    def install(self, interval_seconds):
        """Register the push cadence on the deployment's shared scheduler
        (at quiescence, like replication: an idle tick pushes empty
        deltas) and register the daemon's marks in the GC handshake.
        Returns the :class:`ServiceQuerier`."""
        self.deployment.add_cadence(
            "service-push", interval_seconds, self.push_once,
            at_quiescence=True,
        )
        if self._querier is None:
            self._querier = ServiceQuerier(self)
            self.deployment.register_querier(self._querier)
        return self._querier

    def uninstall(self):
        self.deployment.remove_cadence("service-push")
        if self._querier is not None:
            self.deployment.unregister_querier(self._querier)
            self._querier = None


class ServiceQuerier:
    """The daemon's seat at the retention-handshake table: republishes
    the low-water marks from the last push ack, so GC never truncates
    above what the *remote* audit service has verified."""

    def __init__(self, pusher):
        self.pusher = pusher

    def low_water_marks(self):
        return dict(self.pusher.daemon_marks)

    def __repr__(self):
        return (f"ServiceQuerier(monitor={self.pusher.host}:"
                f"{self.pusher.port})")
