"""The monitor daemon: audit-as-a-service.

Nodes *push* framed log/evidence deltas (see :mod:`repro.service.push`)
instead of being polled; the daemon accumulates them in a
deployment-shaped evidence store (:class:`MonitorState`) and serves one
shared :class:`~repro.snp.query.QueryProcessor` to many concurrent REST
clients (:mod:`repro.service.server`). Because the store satisfies the
same retrieve/evidence API a live :class:`~repro.snp.deployment.Deployment`
does, the unmodified verification pipeline — chain hashes, replay,
consistency checks, retention faults — runs against pushed data and
reaches verdicts *bit-identical* to a direct in-process audit of the
same run (the service e2e gate).

Service-under-load behavior, in degradation order:

1. **backpressure** — every frame write drains the asyncio transport, so
   a slow peer stalls its own connection, not the daemon's memory;
2. **batching** — refresh requests arriving while a pass is running are
   coalesced into the *next* single pass (one ``qp.refresh()`` serves
   every waiter);
3. **shedding** — pushes beyond ``ingest_limit`` in-flight applications
   are acked ``shed`` without being stored; the pusher keeps its delta
   and re-sends on its next cadence tick (the poll fallback) — bounded
   queues, never OOM;
4. **subscription lag** — per-subscriber event queues are bounded;
   overflow drops the *oldest* alert and marks the stream lagged.

All `QueryProcessor` access — including ingest, which mutates the store
the processor reads — is serialized through a single worker thread, so
the event loop never blocks on crypto/replay and the store needs no
locking.
"""

import argparse
import asyncio
import json
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.metrics import ServiceMeter
from repro.model import Tup
from repro.service.framing import (
    FrameDecoder, MAX_FRAME_BYTES, encode_frame, read_frames,
)
from repro.snp.deployment import Maintainer
from repro.snp.query import QueryError, QueryProcessor
from repro.snp.snoopy import (
    RetrieveResponse, merge_mirror_responses, response_can_seed_rebuild,
    suffix_of_response,
)


def _head_index(response):
    """Index of the last entry a response covers (its anchor index when
    empty)."""
    return response.start_index + len(response.entries) - 1


def _entry_hash_at(response, index):
    """The chain hash of entry *index* as this response attests it, or
    ``None`` when *index* is outside the response's attested range. The
    anchor (``start_index - 1``) is attested by ``start_hash``."""
    if index == response.start_index - 1:
        return response.start_hash
    if response.start_index <= index <= _head_index(response):
        return response.entries[index - response.start_index].entry_hash
    return None


def _responses_conflict(a, b):
    """Whether two stored responses attest *different* chains: some index
    both cover carries different hashes. Overlapping copies of one honest
    log always agree (the chain hash is cumulative); a fork or a
    recomputed tampered chain disagrees at every shared index from the
    divergence point on."""
    lo = max(a.start_index - 1, b.start_index - 1)
    hi = min(_head_index(a), _head_index(b))
    if lo > hi:
        return False
    return _entry_hash_at(a, hi) != _entry_hash_at(b, hi)


class MonitorNodeProxy:
    """The daemon's stand-in for one pushed node.

    It stores **two** responses: ``merged``, the contiguous
    rebuild-seeding copy grown by :func:`merge_mirror_responses` (what
    cold builds replay), and ``latest``, the node's most recent push
    *verbatim* — kept even when the merge rejected it. The distinction is
    what makes daemon-side audits convict exactly like direct ones: a
    forked node's push fails to splice (its ``start_hash`` contradicts
    the stored chain), and serving that rejected response to the querier
    hands it precisely the evidence a direct ``retrieve`` would have —
    the merge must never launder a fork into silence.
    """

    def __init__(self, node_id):
        self.node_id = node_id
        self.merged = None
        self.latest = None
        # peer -> [Authenticator]: evidence this node holds about others,
        # append-only (the pusher ships cursored deltas).
        self.received_auths = {}

    # ------------------------------------------------------------ ingest

    def ingest(self, response):
        """Absorb one pushed response; returns the stored head index the
        ack reports (what the next delta should anchor on)."""
        if response is not None:
            self.latest = response
            merged = merge_mirror_responses(self.merged, response)
            if merged is not None:
                self.merged = merged
        return self.stored_head()

    def ingest_auths(self, peer, auths):
        self.received_auths.setdefault(peer, []).extend(auths)

    def stored_head(self):
        return 0 if self.merged is None else _head_index(self.merged)

    # ----------------------------------------------------- querier-facing

    def authenticators_about(self, peer, since=0):
        held = self.received_auths.get(peer, ())
        return list(held[since:]) if since else list(held)

    def retrieve(self, upto_index=None, from_checkpoint=False,
                 since_index=None):
        """Serve a querier from pushed data, mimicking
        :meth:`~repro.snp.snoopy.SNooPyNode.retrieve` on the node's
        *claimed* log. The daemon never adjudicates: when the fresh push
        contradicts the stored chain it relays the push and lets the
        querier's verification (or its harvested old authenticators)
        convict — exactly the evidence path of a direct audit.
        """
        merged, latest = self.merged, self.latest
        if merged is None and latest is None:
            return None
        if since_index is not None:
            response = self._retrieve_delta(since_index)
            if response is not None:
                return response
        return self._retrieve_full()

    def _retrieve_delta(self, h):
        """The continuation after entry *h*, or ``None`` to fall back to
        a full response (mirroring the origin's own fallback when it
        cannot anchor there)."""
        merged, latest = self.merged, self.latest
        # Freshest first: a push that extends past h and can anchor there
        # serves the delta even before it is mergeable (e.g. a re-push
        # overlapping a lost ack).
        for source in (latest, merged):
            if source is None:
                continue
            if _entry_hash_at(source, h) is not None and _head_index(source) > h:
                return suffix_of_response(source, h)
        if merged is None or _head_index(merged) != h:
            return None
        # The auditor is at the stored head. If the node's last push
        # contradicts the stored chain (a fork or recomputed tampering),
        # relay it raw: anchored at h+1 it feeds delta verification, any
        # other shape triggers the querier's full-verify fallback — both
        # convict. A push that merely *agrees* with what is stored (a
        # redundant re-push) is old news, not a contradiction.
        if latest is not None and _responses_conflict(latest, merged):
            return latest
        # Nothing new: confirm the head with the stored authenticator,
        # as the origin's empty delta response would.
        anchor = _entry_hash_at(merged, h)
        return RetrieveResponse(
            node=self.node_id, entries=[], start_index=h + 1,
            start_hash=anchor, head_auth=merged.head_auth, checkpoint=None,
        )

    def _retrieve_full(self):
        """A response that can seed a full verify+replay."""
        merged, latest = self.merged, self.latest
        if latest is None:
            return merged
        if merged is None:
            return latest
        if _responses_conflict(latest, merged):
            # The node's current claim contradicts stored history; serve
            # the claim when it could seed a build (the querier's
            # consistency check then convicts the equivocation against
            # harvested old authenticators), else the stored copy.
            return latest if response_can_seed_rebuild(latest) else merged
        if response_can_seed_rebuild(latest) \
                and _head_index(latest) > _head_index(merged):
            return latest
        return merged


class MonitorState:
    """A deployment-shaped evidence store fed by pushes.

    Implements the full deployment API the query pipeline consumes —
    ``nodes`` (of :class:`MonitorNodeProxy`), ``public_key_of``,
    ``app_factories``, ``effective_t_prop``, ``maintainer``,
    ``collect_authenticators_about_since``, retention floors/faults,
    ``find_mirror`` — so :class:`~repro.snp.query.QueryProcessor` runs
    against it unchanged.
    """

    def __init__(self):
        self.nodes = {}
        self.app_factories = {}
        self.maintainer = Maintainer()
        self.query_transport = None
        self.retention_floors = {}
        self.hello = None
        self._public_keys = {}
        self._t_prop = 0.0
        self._alarm_count = 0
        self._fault_count = 0
        self.last_push_seq = None
        self.pushed_now = 0.0

    # ------------------------------------------------------------ ingest

    def ingest_hello(self, msg):
        """Adopt a deployment's identity material: node ids, public keys
        (as ``(n, e)`` pairs, rebuilt locally like
        :meth:`~repro.snp.wire.BuildContext.from_wire` does), app wire
        specs, and the replay Tprop bound."""
        from repro.crypto.rsa import RsaKeyPair
        from repro.apps import factory_from_spec
        self.hello = {"deployment": msg.get("deployment")}
        self._t_prop = float(msg["t_prop"])
        for node_id, info in msg["nodes"].items():
            if node_id not in self.nodes:
                self.nodes[node_id] = MonitorNodeProxy(node_id)
            n, e = info["key"]
            self._public_keys[node_id] = RsaKeyPair(n, e)
            spec = info.get("app")
            if spec is not None:
                self.app_factories[node_id] = factory_from_spec(spec)

    def ingest_push(self, msg):
        """Absorb one push; returns per-node stored heads for the ack."""
        heads = {}
        for node_id, part in msg["nodes"].items():
            proxy = self.nodes.get(node_id)
            if proxy is None:
                proxy = self.nodes[node_id] = MonitorNodeProxy(node_id)
            heads[node_id] = proxy.ingest(part.get("response"))
            for peer, auths in part.get("auths", {}).items():
                proxy.ingest_auths(peer, auths)
        # Maintainer streams are append-only on the deployment; the push
        # carries the suffix past what this daemon acked.
        for alarm in msg.get("alarms", ()):
            self.maintainer.notify_missing_ack(alarm)
            self._alarm_count += 1
        for fault in msg.get("faults", ()):
            self.maintainer.retention_faults.append(fault)
            self._fault_count += 1
        self.retention_floors.update(msg.get("floors", {}))
        self.last_push_seq = msg.get("seq")
        self.pushed_now = msg.get("now", self.pushed_now)
        return heads

    def ingest_cursors(self):
        """Append-only stream positions acked back to the pusher."""
        return {"alarms": self._alarm_count, "faults": self._fault_count}

    def stored_heads(self):
        return {n: p.stored_head() for n, p in self.nodes.items()}

    # ----------------------------------------------- deployment interface

    def public_key_of(self, node_id):
        return self._public_keys[node_id]

    def effective_t_prop(self):
        return self._t_prop

    def find_mirror(self, origin, since_index=None):
        # The proxies themselves are the mirror plane; there is no
        # second-tier replica to fall back to.
        return None

    def collect_authenticators_about(self, target):
        return self.collect_authenticators_about_since(target, None)[0]

    def collect_authenticators_about_since(self, target, cursor):
        cursor = dict(cursor) if cursor else {}
        out = []
        for node in self.nodes.values():
            if node.node_id == target:
                continue
            since = cursor.get(node.node_id, 0)
            fresh = node.authenticators_about(target, since=since)
            out.extend(fresh)
            cursor[node.node_id] = since + len(fresh)
        return out, cursor

    def advertised_floor_of(self, node):
        advert = self.retention_floors.get(node)
        return advert.floor_index if advert is not None else 0

    def retention_fault_of(self, node):
        return self.maintainer.retention_fault_of(node)


_VERDICT_RANK = {"pending": 0, "green": 0, "yellow": 1, "red": 2}


class Subscription:
    """One subscriber's standing watches plus its bounded event queue."""

    def __init__(self, sid, watches, queue_limit):
        self.sid = sid
        self.watches = watches          # list of watch-spec dicts
        self.keys = [watch_key(w) for w in watches]
        self.queue = asyncio.Queue(maxsize=queue_limit)
        self.last = {}                  # watch key -> last verdict
        self.lagged = False
        self.closed = False


def watch_key(spec):
    """Canonical identity of a watch/query spec (used to batch identical
    watches across subscribers into one evaluation per epoch)."""
    return (
        spec["relation"], spec["loc"], tuple(spec.get("args", ())),
        spec.get("node"), spec.get("at"), spec.get("scope"),
        spec.get("direction", "why"),
    )


def _spec_tup(spec):
    def revive(arg):
        return tuple(revive(a) for a in arg) if isinstance(arg, list) else arg
    return Tup(spec["relation"], spec["loc"],
               *[revive(a) for a in spec.get("args", ())])


class MonitorDaemon:
    """The asyncio monitor daemon: push ingest + REST front end around
    one shared :class:`QueryProcessor`."""

    def __init__(self, host="127.0.0.1", push_port=0, http_port=0,
                 executor=None, ingest_limit=64, subscriber_queue_limit=256,
                 max_frame_bytes=MAX_FRAME_BYTES, verify_embedded=None):
        self.host = host
        self.push_port = push_port
        self.http_port = http_port
        self.state = MonitorState()
        self.meter = ServiceMeter()
        self.max_frame_bytes = max_frame_bytes
        self.ingest_limit = ingest_limit
        self.subscriber_queue_limit = subscriber_queue_limit
        mq_kwargs = {}
        if verify_embedded is not None:
            mq_kwargs["verify_embedded_signatures"] = verify_embedded
        self.qp = QueryProcessor(self.state, executor=executor, **mq_kwargs)
        # One worker serializes every touch of state+qp: ingest mutates
        # what queries read, and MicroQuerier itself is not thread-safe.
        self._qp_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="snp-monitor-qp")
        self._inflight_pushes = 0
        self._subs = {}
        self._next_sid = 1
        self._refresh_needed = None     # asyncio.Event, bound to the loop
        self._refresh_waiters = []
        self._watch_state = {}          # watch key -> last outcome
        self._servers = []
        self._conn_tasks = set()        # live connection handler tasks
        self._loop = None
        self._stopped = None

    # -------------------------------------------------------- lifecycle

    async def start(self):
        """Bind both listeners and start the refresh worker. Sets
        ``push_port`` / ``http_port`` to the bound ports."""
        from repro.service.server import handle_http
        self._loop = asyncio.get_running_loop()
        self._refresh_needed = asyncio.Event()
        self._stopped = asyncio.Event()
        push_srv = await asyncio.start_server(
            self._track(self._handle_push_conn), self.host, self.push_port)
        http_srv = await asyncio.start_server(
            self._track(lambda r, w: handle_http(self, r, w)),
            self.host, self.http_port)
        self._servers = [push_srv, http_srv]
        self.push_port = push_srv.sockets[0].getsockname()[1]
        self.http_port = http_srv.sockets[0].getsockname()[1]
        self._refresh_task = asyncio.ensure_future(self._refresh_worker())
        return self

    def _track(self, handler):
        """Wrap a connection handler so stop() can cancel live
        connections (standing subscriptions would otherwise outlive the
        servers)."""
        async def tracked(reader, writer):
            task = asyncio.current_task()
            self._conn_tasks.add(task)
            try:
                await handler(reader, writer)
            except asyncio.CancelledError:
                # stop() cancelled us; finish normally so the stream
                # machinery's done-callback doesn't log the cancel.
                # (uncancel() is 3.11+; earlier loops accept a plain
                # return after catching the cancel.)
                uncancel = getattr(task, "uncancel", None)
                if uncancel is not None:
                    uncancel()
            finally:
                self._conn_tasks.discard(task)
        return tracked

    async def stop(self):
        for server in self._servers:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._refresh_task.cancel()
        try:
            await self._refresh_task
        except asyncio.CancelledError:
            pass
        for sub in list(self._subs.values()):
            sub.closed = True
        self._qp_pool.shutdown(wait=True)
        self.qp.close()
        if self._stopped is not None:
            self._stopped.set()

    async def serve_forever(self):
        await self._stopped.wait()

    # ------------------------------------------------------- push ingest

    async def _handle_push_conn(self, reader, writer):
        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            async for msg in read_frames(reader, decoder):
                self.meter.frames_received += 1
                if not isinstance(msg, dict) or "type" not in msg:
                    self.meter.corrupt_frames += 1
                    continue
                reply = await self._dispatch_push(msg)
                if reply is not None:
                    data = encode_frame(reply, self.max_frame_bytes)
                    self.meter.frames_sent += 1
                    self.meter.bytes_sent += len(data)
                    writer.write(data)
                    # Backpressure: a pusher that stops reading acks
                    # stalls here, not in daemon memory.
                    await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self.meter.absorb_decoder(decoder)
            try:
                writer.close()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass

    async def _dispatch_push(self, msg):
        mtype = msg["type"]
        if mtype == "hello":
            await self._loop.run_in_executor(
                self._qp_pool, self.state.ingest_hello, msg)
            return {"type": "hello-ack",
                    "heads": await self._in_pool(self.state.stored_heads),
                    "cursors": self.state.ingest_cursors()}
        if mtype == "push":
            if self._inflight_pushes >= self.ingest_limit:
                # Shed: nothing stored, nothing acked forward — the
                # pusher keeps its delta and retries next cadence tick.
                self.meter.pushes_shed += 1
                return {"type": "push-ack", "seq": msg.get("seq"),
                        "shed": True, "heads": None, "cursors": None,
                        "marks": None}
            self._inflight_pushes += 1
            try:
                heads = await self._loop.run_in_executor(
                    self._qp_pool, self.state.ingest_push, msg)
                marks = await self._in_pool(self.qp.low_water_marks)
            finally:
                self._inflight_pushes -= 1
            self.meter.pushes_accepted += 1
            self._refresh_needed.set()
            return {"type": "push-ack", "seq": msg.get("seq"),
                    "shed": False, "heads": heads,
                    "cursors": self.state.ingest_cursors(), "marks": marks}
        if mtype == "bye":
            return None
        return {"type": "error", "error": f"unknown message type {mtype!r}"}

    def _in_pool(self, fn, *args):
        return self._loop.run_in_executor(
            self._qp_pool, lambda: fn(*args))

    # ------------------------------------------------ refresh + queries

    def request_refresh(self):
        """A future resolving with the epoch of the next refresh pass.
        Requests arriving while a pass runs share the following pass —
        the batching rung of the degradation ladder."""
        fut = self._loop.create_future()
        self._refresh_waiters.append(fut)
        self._refresh_needed.set()
        return fut

    async def _refresh_worker(self):
        while True:
            await self._refresh_needed.wait()
            self._refresh_needed.clear()
            waiters, self._refresh_waiters = self._refresh_waiters, []
            self.meter.refresh_batches += 1
            self.meter.requests_batched += len(waiters)
            try:
                epoch, outcomes = await self._in_pool(self._refresh_and_eval)
            except Exception as exc:  # pragma: no cover - defensive
                for fut in waiters:
                    if not fut.done():
                        fut.set_exception(exc)
                continue
            for fut in waiters:
                if not fut.done():
                    fut.set_result(epoch)
            self._dispatch_alerts(epoch, outcomes)

    def _refresh_and_eval(self):
        """(qp pool) One refresh pass plus one evaluation of every unique
        watch — N subscribers of one vertex cost one query per epoch.

        The refresh's per-epoch change set gates the evaluations: when no
        node's view changed (every delta fetch came back empty, no
        verdict flipped), a watch already evaluated in an earlier epoch
        cannot answer differently, so its stored outcome is reused and
        ``watch_evaluations_skipped`` ticks instead. A watch with no
        stored outcome (new subscription, or its last evaluation errored
        out before storing) is always evaluated.
        """
        epoch = self.qp.refresh()
        changed = self.qp.last_refresh_changed
        quiet = changed is not None and not changed
        outcomes = {}
        wanted = {}
        for sub in self._subs.values():
            if sub.closed:
                continue
            for key, spec in zip(sub.keys, sub.watches):
                wanted.setdefault(key, spec)
        for key, spec in wanted.items():
            if quiet and key in self._watch_state:
                outcomes[key] = self._watch_state[key]
                self.meter.watch_evaluations_skipped += 1
                continue
            outcomes[key] = self._eval_watch(spec)
            self.meter.watch_evaluations += 1
        self._watch_state.update(outcomes)
        return epoch, outcomes

    def _eval_watch(self, spec):
        try:
            result = self._run_query(spec)
        except QueryError as exc:
            return {"verdict": "pending", "error": str(exc)}
        return {
            "verdict": result.verdict(),
            "faulty_nodes": result.summary()["faulty_nodes"],
            "red": len(result.red_vertices()),
            "yellow": len(result.yellow_vertices()),
        }

    def _run_query(self, spec):
        """(qp pool) Evaluate one query/watch spec against the shared
        processor."""
        tup = _spec_tup(spec)
        kwargs = {"node": spec.get("node"), "at": spec.get("at"),
                  "scope": spec.get("scope")}
        direction = spec.get("direction", "why")
        if direction == "effects":
            return self.qp.effects(tup, **kwargs)
        if direction == "why_appear":
            kwargs.pop("at")
            return self.qp.why_appear(tup, before=spec.get("before"),
                                      node=spec.get("node"),
                                      scope=spec.get("scope"))
        return self.qp.why(tup, **kwargs)

    async def query(self, spec):
        """Serve one REST query; with ``fresh``, join the next batched
        refresh pass first."""
        if spec.get("fresh"):
            await self.request_refresh()
        try:
            result = await self._in_pool(self._run_query, spec)
        except QueryError as exc:
            return {"ok": False, "error": str(exc), "epoch": self.qp.epoch}
        self.meter.queries_served += 1
        return {"ok": True, "epoch": self.qp.epoch,
                "result": result.summary()}

    async def refresh(self):
        epoch = await self.request_refresh()
        self.meter.refreshes_served += 1
        return {"ok": True, "epoch": epoch}

    async def marks(self):
        marks = await self._in_pool(self.qp.low_water_marks)
        return {"ok": True, "marks": {str(k): v for k, v in marks.items()}}

    def status(self):
        return {
            "ok": True,
            "epoch": self.qp.epoch,
            "hello": self.state.hello is not None,
            "nodes": {str(n): p.stored_head()
                      for n, p in self.state.nodes.items()},
            "last_push_seq": self.state.last_push_seq,
            "subscriptions": sum(
                1 for s in self._subs.values() if not s.closed),
            "meter": self.meter.as_dict(),
        }

    # ----------------------------------------------------- subscriptions

    def add_subscription(self, watches):
        sid = self._next_sid
        self._next_sid += 1
        sub = Subscription(sid, watches, self.subscriber_queue_limit)
        self._subs[sid] = sub
        self.meter.subscriptions_opened += 1
        # Seed baselines from already-evaluated watches — telling the
        # subscriber its starting state right away — so one joining late
        # still alerts on the *next* downgrade; then make sure a pass
        # runs to evaluate anything new.
        for key, spec in zip(sub.keys, sub.watches):
            known = self._watch_state.get(key)
            if known is not None:
                sub.last[key] = known["verdict"]
                self._offer(sub, {"type": "state", "epoch": self.qp.epoch,
                                  "watch": spec,
                                  "verdict": known["verdict"]})
        self._refresh_needed.set()
        return sub

    def remove_subscription(self, sub):
        sub.closed = True
        self._subs.pop(sub.sid, None)

    def _dispatch_alerts(self, epoch, outcomes):
        for sub in list(self._subs.values()):
            if sub.closed:
                continue
            for key, spec in zip(sub.keys, sub.watches):
                outcome = outcomes.get(key)
                if outcome is None:
                    continue
                verdict = outcome["verdict"]
                last = sub.last.get(key)
                sub.last[key] = verdict
                if last is None:
                    event = {"type": "state", "epoch": epoch,
                             "watch": spec, "verdict": verdict}
                    self._offer(sub, event)
                elif _VERDICT_RANK[verdict] > _VERDICT_RANK[last]:
                    event = {"type": "alert", "epoch": epoch,
                             "watch": spec, "from": last, "to": verdict,
                             "faulty_nodes": outcome.get("faulty_nodes", []),
                             "red": outcome.get("red", 0),
                             "yellow": outcome.get("yellow", 0)}
                    self.meter.alerts_emitted += 1
                    self._offer(sub, event)

    def _offer(self, sub, event):
        """Enqueue an event, shedding the oldest on overflow (the
        subscriber keeps the most recent state, marked lagged)."""
        if sub.lagged:
            event = dict(event, lagged=True)
            sub.lagged = False
        while True:
            try:
                sub.queue.put_nowait(event)
                return
            except asyncio.QueueFull:
                try:
                    sub.queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass
                self.meter.alerts_dropped += 1
                sub.lagged = True
                event = dict(event, lagged=True)


# ---------------------------------------------------------- entry points

class MonitorHandle:
    """A daemon running on its own thread + event loop (tests, benches,
    and in-process embedding)."""

    def __init__(self, daemon):
        self.daemon = daemon
        self._thread = None
        self._loop = None

    def start(self, timeout=10.0):
        started = threading.Event()
        failure = []

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.daemon.start())
            except Exception as exc:  # pragma: no cover - startup failure
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="snp-monitor", daemon=True)
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("monitor daemon did not start in time")
        if failure:
            raise failure[0]
        return self

    def stop(self, timeout=10.0):
        if self._loop is None:
            return
        fut = asyncio.run_coroutine_threadsafe(self.daemon.stop(), self._loop)
        fut.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


def start_monitor_thread(**kwargs):
    """Start a :class:`MonitorDaemon` on a background thread; returns a
    :class:`MonitorHandle` with bound ports on ``handle.daemon``."""
    return MonitorHandle(MonitorDaemon(**kwargs)).start()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="SNP monitor daemon: push ingest + REST audit service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--push-port", type=int, default=0)
    parser.add_argument("--http-port", type=int, default=0)
    parser.add_argument("--executor", default=None,
                        help="executor spec for view builds "
                             "(serial | thread:N | process:N)")
    parser.add_argument("--ingest-limit", type=int, default=64)
    args = parser.parse_args(argv)

    async def run():
        daemon = MonitorDaemon(
            host=args.host, push_port=args.push_port,
            http_port=args.http_port, executor=args.executor,
            ingest_limit=args.ingest_limit)
        await daemon.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signame in ("SIGINT", "SIGTERM"):
            try:
                loop.add_signal_handler(
                    getattr(signal, signame), stop.set)
            except (NotImplementedError, AttributeError):
                pass  # platform without signal-handler support
        # The parent (CI script, operator) reads one JSON line to learn
        # the bound ports.
        print(json.dumps({"push_port": daemon.push_port,
                          "http_port": daemon.http_port}), flush=True)
        try:
            await stop.wait()
        finally:
            await daemon.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
