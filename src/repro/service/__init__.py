"""The service plane: audit-as-a-service over real sockets.

The deployment simulation stays the system under audit; this package
adds the transport that turns it into a *service* (DESIGN.md, "Service
plane"):

* :mod:`repro.service.framing` — length-prefixed, CRC-checked frames
  carrying pickled payloads under the PR 4 wire contract, tolerant of
  partial reads and mid-stream garbage;
* :mod:`repro.service.push` — the node side: a :class:`ServicePusher`
  that ships log/evidence deltas to the monitor on the deployment's
  shared cadence scheduler, with retry-with-backoff and a poll fallback
  when the daemon sheds;
* :mod:`repro.service.monitor` — the daemon: ingests pushes into a
  deployment-shaped evidence store, feeds one shared
  :class:`~repro.snp.query.QueryProcessor`, batches refreshes, and
  evaluates standing subscriptions (alert on any verdict downgrade);
* :mod:`repro.service.server` / :mod:`repro.service.client` — a thin
  HTTP/REST front end (``query`` / ``refresh`` / ``subscribe`` /
  ``status`` / ``marks``) and its blocking client.
"""

from repro.service.framing import (  # noqa: F401
    FrameDecoder, FramingError, MAX_FRAME_BYTES, encode_frame,
)
from repro.service.monitor import (  # noqa: F401
    MonitorDaemon, MonitorHandle, MonitorState, start_monitor_thread,
)
from repro.service.push import ServicePusher, ServiceQuerier  # noqa: F401
from repro.service.client import MonitorClient, tup_spec  # noqa: F401
