"""Blocking REST client for the monitor daemon.

Thin by design: each :class:`MonitorClient` method is one HTTP request
(``http.client`` under the hood), so N concurrent clients are just N
threads each holding its own instance. ``subscribe`` keeps a raw socket
open and reads the NDJSON event stream line by line.
"""

import http.client
import json
import socket


class ServiceClientError(Exception):
    """The daemon answered with a non-JSON or error response."""


def tup_spec(tup, node=None, at=None, scope=None, direction="why",
             fresh=False):
    """Build a query/watch spec dict from a :class:`~repro.model.Tup`."""
    spec = {"relation": tup.relation, "loc": tup.loc,
            "args": list(tup.args)}
    if node is not None:
        spec["node"] = node
    if at is not None:
        spec["at"] = at
    if scope is not None:
        spec["scope"] = scope
    if direction != "why":
        spec["direction"] = direction
    if fresh:
        spec["fresh"] = True
    return spec


class MonitorClient:
    """One caller's handle on the daemon's REST front end."""

    def __init__(self, host, port, timeout=30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method, path, body=None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            out = json.loads(raw)
        except ValueError as exc:
            raise ServiceClientError(
                f"{method} {path}: non-JSON response {raw[:200]!r}"
            ) from exc
        out["_status"] = response.status
        return out

    def status(self):
        return self._request("GET", "/status")

    def marks(self):
        return self._request("GET", "/marks")

    def refresh(self):
        return self._request("POST", "/refresh")

    def query(self, spec_or_tup, **kwargs):
        """Evaluate a query. Accepts a prepared spec dict or a ``Tup``
        plus :func:`tup_spec` keyword arguments."""
        if isinstance(spec_or_tup, dict):
            spec = spec_or_tup
        else:
            spec = tup_spec(spec_or_tup, **kwargs)
        return self._request("POST", "/query", spec)

    def subscribe(self, watches):
        """Open a standing subscription; returns a
        :class:`SubscriptionStream` whose first event is the
        ``subscribed`` banner."""
        specs = [w if isinstance(w, dict) else tup_spec(w) for w in watches]
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout)
        body = json.dumps({"watches": specs}).encode()
        request = (
            f"POST /subscribe HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode() + body
        sock.sendall(request)
        stream = SubscriptionStream(sock)
        stream._read_headers()
        return stream


class SubscriptionStream:
    """Reader side of an open ``/subscribe`` response."""

    def __init__(self, sock):
        self._sock = sock
        self._file = sock.makefile("rb")
        self.status = None

    def _read_headers(self):
        status_line = self._file.readline()
        parts = status_line.decode("latin-1").split()
        self.status = int(parts[1]) if len(parts) >= 2 else 0
        while True:
            line = self._file.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        if self.status != 200:
            body = self._file.readline()
            self.close()
            raise ServiceClientError(
                f"subscribe failed: {self.status} {body[:200]!r}")

    def next_event(self, timeout=None):
        """The next event dict, or ``None`` on EOF. ``socket.timeout``
        propagates when *timeout* elapses first."""
        if timeout is not None:
            self._sock.settimeout(timeout)
        line = self._file.readline()
        if not line:
            return None
        return json.loads(line)

    def events_until(self, predicate, timeout=10.0, clock=None):
        """Collect events until one satisfies *predicate* (returned
        last). Raises ``TimeoutError`` when *timeout* wall seconds pass
        first."""
        import time
        clock = clock or time.monotonic
        deadline = clock() + timeout
        seen = []
        while True:
            remaining = deadline - clock()
            if remaining <= 0:
                raise TimeoutError(
                    f"no matching event within {timeout}s; saw {seen!r}")
            try:
                event = self.next_event(timeout=remaining)
            except (socket.timeout, TimeoutError):
                raise TimeoutError(
                    f"no matching event within {timeout}s; saw {seen!r}")
            if event is None:
                raise TimeoutError(f"stream closed; saw {seen!r}")
            seen.append(event)
            if predicate(event):
                return seen

    def close(self):
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
