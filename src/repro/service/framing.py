"""Framed message transport for the service plane.

A frame is ``MAGIC | length | header-crc | payload-crc | payload`` where
*payload* is a pickle of objects governed by the PR 4 wire contract
(value objects rebuild through their constructors, so an unpickled
``Tup``/``Msg`` is native to the receiving process — see
:mod:`repro.snp.wire`).

The header carries its *own* CRC (over magic + length) so a damaged
length field is detected the moment the header arrives — the decoder
never waits for, or skips, bytes a lying length claims. The payload CRC
then guards the body.

The decoder is an incremental state machine fed arbitrary byte chunks:
frames may arrive split across any number of reads, glued together, or
surrounded by garbage. Resynchronization scans for the magic marker, so
a corrupted or truncated frame can cost at most itself — a later
well-formed frame is always recovered intact. Defenses, in order:

* **header CRC mismatch**: the magic is dropped and scanning resumes at
  the next byte;
* **oversized length** (header intact, > ``max_frame_bytes``): counted
  and resynchronized past the magic — a hostile length cannot make the
  decoder buffer unbounded data;
* **payload CRC mismatch / unpicklable payload**: the frame is consumed
  whole and counted, the stream continues;
* **module allow-list**: payload unpickling only resolves classes from
  ``repro.*`` and the stdlib value modules — a frame cannot name an
  arbitrary importable as a gadget.
"""

import io
import pickle
import struct
import zlib
from collections import deque

from repro.util.errors import ReproError

MAGIC = b"SNPF"
# magic, payload length, crc32(magic+length), crc32(payload)
_HEADER = struct.Struct(">4sIII")
_HEADER_PREFIX = struct.Struct(">4sI")
HEADER_BYTES = _HEADER.size

#: Upper bound on a single frame's payload. Full chord@50 log pushes are
#: a few hundred KB; 32 MiB leaves two orders of magnitude of headroom
#: while keeping a hostile length field from reserving real memory.
MAX_FRAME_BYTES = 32 * 1024 * 1024


class FramingError(ReproError):
    """A frame could not be encoded (payload too large / unpicklable)."""


_ALLOWED_MODULES = ("builtins", "collections", "copyreg", "datetime")


class _RestrictedUnpickler(pickle.Unpickler):
    """Resolve only classes the wire contract sanctions."""

    def find_class(self, module, name):
        root = module.split(".", 1)[0]
        if root == "repro" or module in _ALLOWED_MODULES:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"frame payload names {module}.{name}, outside the wire "
            "contract's allow-list"
        )


def _loads(data):
    return _RestrictedUnpickler(io.BytesIO(data)).load()


def encode_frame(obj, max_frame_bytes=MAX_FRAME_BYTES):
    """Serialize *obj* as one frame (header + pickled payload)."""
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise FramingError(f"frame payload is not picklable: {exc}") from exc
    if len(payload) > max_frame_bytes:
        raise FramingError(
            f"frame payload is {len(payload)} bytes, above the "
            f"{max_frame_bytes}-byte frame bound"
        )
    prefix = _HEADER_PREFIX.pack(MAGIC, len(payload))
    return (prefix + struct.pack(">II", zlib.crc32(prefix),
                                 zlib.crc32(payload)) + payload)


class FrameDecoder:
    """Incremental frame decoder with garbage resynchronization.

    Feed it byte chunks as they arrive; it returns each fully decoded
    payload exactly once. Counters (``garbage_bytes``, ``corrupt_frames``,
    ``oversized_frames``, ``frames_decoded``) let the connection owner
    meter hostile or damaged input without tearing the stream down.
    """

    def __init__(self, max_frame_bytes=MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        # Frames decoded but not yet consumed by recv_frame (one read
        # may complete several frames).
        self._pending = deque()
        self.frames_decoded = 0
        self.garbage_bytes = 0
        self.corrupt_frames = 0
        self.oversized_frames = 0

    def pending_bytes(self):
        """Bytes buffered awaiting a complete frame (bounded by
        ``HEADER_BYTES + max_frame_bytes`` plus one read chunk)."""
        return len(self._buf)

    def feed(self, data):
        """Consume *data*, returning the list of payloads completed by it."""
        self._buf.extend(data)
        out = []
        while True:
            status, payload = self._step()
            if status == "wait":
                return out
            if status == "frame":
                out.append(payload)

    def _resync(self, skip):
        """Drop *skip* bytes as garbage, then align on the next magic."""
        if skip:
            del self._buf[:skip]
            self.garbage_bytes += skip
        idx = self._buf.find(MAGIC)
        if idx == -1:
            # Keep a potential magic prefix at the tail (a frame split
            # inside its own marker), discard the rest.
            keep = 0
            for size in range(min(len(MAGIC) - 1, len(self._buf)), 0, -1):
                if self._buf[-size:] == MAGIC[:size]:
                    keep = size
                    break
            dropped = len(self._buf) - keep
            if dropped:
                self.garbage_bytes += dropped
                del self._buf[:dropped]
        elif idx:
            self.garbage_bytes += idx
            del self._buf[:idx]

    def _step(self):
        self._resync(0)
        if len(self._buf) < HEADER_BYTES:
            return "wait", None
        _magic, length, header_crc, payload_crc = _HEADER.unpack_from(
            self._buf)
        if zlib.crc32(self._buf[:_HEADER_PREFIX.size]) != header_crc:
            # Damaged length field (or garbage that aliased the magic):
            # detected before a single payload byte is trusted.
            self.corrupt_frames += 1
            self._resync(len(MAGIC))
            return "skip", None
        if length > self.max_frame_bytes:
            self.oversized_frames += 1
            self._resync(len(MAGIC))
            return "skip", None
        end = HEADER_BYTES + length
        if len(self._buf) < end:
            return "wait", None
        payload = bytes(self._buf[HEADER_BYTES:end])
        if zlib.crc32(payload) != payload_crc:
            self.corrupt_frames += 1
            self._resync(len(MAGIC))
            return "skip", None
        del self._buf[:end]
        try:
            obj = _loads(payload)
        except Exception:
            self.corrupt_frames += 1
            return "skip", None
        self.frames_decoded += 1
        return "frame", obj


# ----------------------------------------------------- blocking sockets

def send_frame(sock, obj, max_frame_bytes=MAX_FRAME_BYTES):
    """Encode *obj* and send it whole over a blocking socket."""
    sock.sendall(encode_frame(obj, max_frame_bytes))


def recv_frame(sock, decoder, chunk_bytes=65536):
    """Block until *decoder* yields one frame from *sock*.

    Returns the payload, or ``None`` on orderly EOF. Socket timeouts
    propagate to the caller (the pusher's retry loop owns them). Extra
    frames completed by the same read are queued on the decoder for the
    next call.
    """
    while True:
        if decoder._pending:
            return decoder._pending.popleft()
        data = sock.recv(chunk_bytes)
        if not data:
            return None
        decoder._pending.extend(decoder.feed(data))


# ------------------------------------------------------- asyncio streams

async def write_frame(writer, obj, max_frame_bytes=MAX_FRAME_BYTES):
    """Write one frame and drain — the per-connection backpressure point:
    a slow reader stalls this coroutine, not the daemon's memory."""
    writer.write(encode_frame(obj, max_frame_bytes))
    await writer.drain()


async def read_frames(reader, decoder, chunk_bytes=65536):
    """Async-iterate decoded payloads until EOF."""
    while True:
        data = await reader.read(chunk_bytes)
        if not data:
            return
        for frame in decoder.feed(data):
            yield frame
