"""Self-contained RSA: key generation, signing, verification.

The execution environment has no external crypto package, so we implement
textbook RSA with deterministic-padding hash-and-sign (a simplified
full-domain-hash construction): ``sig = H(m)^d mod n`` where ``H`` expands
SHA-256 output to the modulus size with fixed padding. This is structurally
the scheme the paper assumes ("signature of a correct node cannot be forged",
assumption 3) and is adequate for a research reproduction; it is *not*
intended for production use.

Key generation uses Miller–Rabin with a seeded deterministic RNG so that test
runs are reproducible. Default key size is 512 bits to keep pure-Python
simulations fast; the paper's 1024-bit configuration is a parameter
(benchmarks report both the operation counts and measured per-op latency).
"""

import hashlib
import random

from repro.util.errors import AuthenticationError

_E = 65537

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def _is_probable_prime(n, rng, rounds=32):
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits, rng):
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _expand_digest(message, modulus_bytes):
    """Expand SHA-256(message) to modulus size (simplified FDH padding)."""
    digest = hashlib.sha256(message).digest()
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < modulus_bytes:
        blocks.append(hashlib.sha256(digest + counter.to_bytes(4, "big")).digest())
        counter += 1
    expanded = b"".join(blocks)[:modulus_bytes]
    # Clear the top byte so the integer is always < n.
    return b"\x00" + expanded[1:]


class RsaKeyPair:
    """An RSA key pair with hash-and-sign signatures.

    The private exponent may be absent (public-only key, as distributed in a
    certificate); signing with a public-only key raises AuthenticationError.
    """

    def __init__(self, n, e, d=None):
        self.n = n
        self.e = e
        self._d = d
        self._modulus_bytes = (n.bit_length() + 7) // 8

    @property
    def bits(self):
        return self.n.bit_length()

    def public_only(self):
        """A copy of this key without the private exponent."""
        return RsaKeyPair(self.n, self.e)

    def sign(self, message):
        """Sign *message* (bytes); returns the signature as bytes."""
        if self._d is None:
            raise AuthenticationError("cannot sign with a public-only key")
        padded = _expand_digest(message, self._modulus_bytes)
        m_int = int.from_bytes(padded, "big")
        sig_int = pow(m_int, self._d, self.n)
        return sig_int.to_bytes(self._modulus_bytes, "big")

    def verify(self, message, signature):
        """True iff *signature* is a valid signature of *message*."""
        if len(signature) != self._modulus_bytes:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        expected = int.from_bytes(
            _expand_digest(message, self._modulus_bytes), "big"
        )
        return recovered == expected

    def fingerprint(self):
        """Short stable identifier for this public key."""
        material = f"{self.n}:{self.e}".encode("ascii")
        return hashlib.sha256(material).hexdigest()[:16]


def generate_keypair(bits=512, seed=None):
    """Generate an RSA key pair of *bits* modulus size.

    A *seed* makes generation deterministic (used pervasively in tests and
    simulations so that runs are reproducible).
    """
    if bits < 128:
        raise ValueError("modulus too small to be meaningful")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _E == 0:
            continue
        d = pow(_E, -1, phi)
        return RsaKeyPair(n, _E, d)
