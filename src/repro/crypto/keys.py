"""Node identities, certificates and the offline CA.

Paper assumption 2 (Section 5.2): "Each node i has a certificate that
securely binds a keypair to the node's identity ... it could be satisfied by
installing each node with a certificate that is signed by an offline CA."

We model exactly that: a :class:`CertificateAuthority` created once per
deployment signs ``(node_id, public_key)`` bindings; every node can verify
any other node's certificate with the CA's public key. This is what prevents
a Byzantine node from inventing fictitious identities (Sybil protection in
the paper's threat model).

The :class:`CryptoCounter` records how many sign/verify/hash operations each
node performs, which drives the Figure 7 (CPU overhead) reproduction.
"""

from repro.crypto.rsa import generate_keypair
from repro.util.errors import AuthenticationError
from repro.util.serialization import canonical_bytes


class CryptoCounter:
    """Counts crypto operations and bytes hashed for CPU-cost accounting."""

    def __init__(self):
        self.signatures = 0
        self.verifications = 0
        self.hash_operations = 0
        self.bytes_hashed = 0

    def note_sign(self):
        self.signatures += 1

    def note_verify(self):
        self.verifications += 1

    def note_hash(self, nbytes):
        self.hash_operations += 1
        self.bytes_hashed += nbytes

    def merged_with(self, other):
        total = CryptoCounter()
        total.signatures = self.signatures + other.signatures
        total.verifications = self.verifications + other.verifications
        total.hash_operations = self.hash_operations + other.hash_operations
        total.bytes_hashed = self.bytes_hashed + other.bytes_hashed
        return total


class Certificate:
    """A CA-signed binding of a node id to a public key."""

    def __init__(self, node_id, public_key, ca_signature):
        self.node_id = node_id
        self.public_key = public_key
        self.ca_signature = ca_signature

    def signed_payload(self):
        return canonical_bytes(
            ("certificate", self.node_id, self.public_key.n, self.public_key.e)
        )


class CertificateAuthority:
    """Offline CA: issues and verifies node certificates."""

    def __init__(self, key_bits=512, seed=0xCA):
        self._key = generate_keypair(bits=key_bits, seed=seed)
        self.key_bits = key_bits

    def public_key(self):
        return self._key.public_only()

    def issue(self, node_id, public_key):
        payload = canonical_bytes(
            ("certificate", node_id, public_key.n, public_key.e)
        )
        return Certificate(node_id, public_key, self._key.sign(payload))

    def verify(self, certificate):
        ok = self._key.verify(
            certificate.signed_payload(), certificate.ca_signature
        )
        if not ok:
            raise AuthenticationError(
                f"certificate for {certificate.node_id!r} is invalid"
            )
        return True


class NodeIdentity:
    """A node's keypair plus its CA-issued certificate.

    Wraps sign/verify so every operation is tallied in the node's
    :class:`CryptoCounter`.
    """

    def __init__(self, node_id, ca, key_bits=512, seed=None):
        if seed is None:
            seed = hash(("identity", node_id)) & 0xFFFFFFFF
        self.node_id = node_id
        self.keypair = generate_keypair(bits=key_bits, seed=seed)
        self.certificate = ca.issue(node_id, self.keypair.public_only())
        self.counter = CryptoCounter()

    def sign(self, payload):
        """Sign a canonically-encodable payload; returns signature bytes."""
        self.counter.note_sign()
        return self.keypair.sign(canonical_bytes(payload))

    def verify(self, public_key, payload, signature):
        """Verify a signature made by *public_key* over *payload*."""
        self.counter.note_verify()
        return public_key.verify(canonical_bytes(payload), signature)
