"""Hashing primitives: SHA-256 and the log hash chain.

The tamper-evident log (paper Section 5.4) associates each entry
``e_k = (t_k, y_k, c_k)`` with ``h_k = H(h_{k-1} || t_k || y_k || c_k)``,
``h_0 = 0``. We fold the entry content in as its digest ``H(c_k)`` rather
than the raw bytes: this is equivalent for tamper evidence (SHA-256 is
second-preimage resistant) and lets a node prove chain continuity across a
range of entries by revealing only ``(t, y, H(c))`` for entries whose
content is not being disclosed — which the batched commitment protocol
(Section 5.6) relies on.
"""

import hashlib

from repro.util.serialization import canonical_bytes

GENESIS_HASH = "0" * 64


def sha256_hex(data):
    """SHA-256 of *data* (bytes or canonically-encodable value), hex digest."""
    if not isinstance(data, (bytes, bytearray)):
        data = canonical_bytes(data)
    return hashlib.sha256(data).hexdigest()


def content_digest(content):
    """Digest of an entry's content field."""
    return sha256_hex(content)


def chain_hash(prev_hash, timestamp, entry_type, content_hash):
    """Compute ``h_k`` from ``h_{k-1}`` and the entry fields."""
    return sha256_hex((prev_hash, timestamp, entry_type, content_hash))


class HashChain:
    """An append-only hash chain over log entries.

    Keeps the sequence of per-entry hashes so that any prefix can be
    authenticated: an authenticator signing ``h_k`` commits the signer to the
    exact contents of entries ``e_1 .. e_k``. A chain may be *truncated*
    (checkpoint GC): hashes below a floor are discarded, but the hash
    immediately preceding the floor is kept as the tombstone anchor so
    suffix authentication at or above the floor still verifies.
    """

    def __init__(self):
        self._hashes = [GENESIS_HASH]
        # Index of the first retained hash: _hashes[i] is h_{_offset + i}.
        self._offset = 0

    def __len__(self):
        """Number of entries appended so far (including truncated ones)."""
        return self._offset + len(self._hashes) - 1

    def append(self, timestamp, entry_type, content_hash):
        """Fold one entry into the chain; returns its hash ``h_k``."""
        new_hash = chain_hash(
            self._hashes[-1], timestamp, entry_type, content_hash
        )
        self._hashes.append(new_hash)
        return new_hash

    def head(self):
        """Hash of the latest entry (``h_0`` if empty)."""
        return self._hashes[-1]

    def hash_at(self, index):
        """``h_index`` where index counts entries from 1 (0 = genesis)."""
        if index < self._offset:
            raise IndexError(
                f"chain hash h_{index} was discarded by truncation "
                f"(tombstone anchor is h_{self._offset})"
            )
        return self._hashes[index - self._offset]

    def truncate_below(self, floor):
        """Discard hashes below ``h_{floor-1}``.

        ``h_{floor-1}`` itself is retained — it is the tombstone anchor a
        segment starting at entry *floor* is verified against.
        """
        keep_from = floor - 1 - self._offset
        if keep_from <= 0:
            return
        self._hashes = self._hashes[keep_from:]
        self._offset += keep_from

    @staticmethod
    def verify_segment(start_hash, entries):
        """Recompute the chain over ``entries`` starting from *start_hash*.

        Each entry must expose ``timestamp``, ``entry_type`` and
        ``content_hash`` attributes. Returns the successive hashes (one per
        entry).
        """
        hashes = []
        current = start_hash
        for entry in entries:
            current = chain_hash(
                current, entry.timestamp, entry.entry_type, entry.content_hash
            )
            hashes.append(current)
        return hashes
