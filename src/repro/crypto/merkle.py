"""Merkle hash trees for checkpoint verification.

Section 7.7 of the paper notes that the Quagga-Disappear query spent most of
its time "verifying partial checkpoints using a Merkle Hash Tree". A
checkpoint commits to the node's full tuple set at some instant; at query
time only the tuples relevant to the query need to be transferred, together
with a Merkle inclusion proof against the root hash recorded in the log.
"""

import hashlib

from repro.util.serialization import canonical_bytes


def _leaf_hash(value):
    return hashlib.sha256(b"leaf:" + canonical_bytes(value)).hexdigest()


def _node_hash(left, right):
    return hashlib.sha256(
        b"node:" + left.encode("ascii") + right.encode("ascii")
    ).hexdigest()


EMPTY_ROOT = hashlib.sha256(b"empty-merkle-tree").hexdigest()


class MerkleTree:
    """A Merkle tree over an ordered list of canonically-encodable leaves."""

    def __init__(self, leaves):
        self.leaves = list(leaves)
        self._levels = [[_leaf_hash(leaf) for leaf in self.leaves]]
        if not self._levels[0]:
            self._levels = [[]]
            return
        while len(self._levels[-1]) > 1:
            level = self._levels[-1]
            parents = []
            for i in range(0, len(level), 2):
                left = level[i]
                right = level[i + 1] if i + 1 < len(level) else left
                parents.append(_node_hash(left, right))
            self._levels.append(parents)

    def root(self):
        """Root hash (a fixed constant for an empty tree)."""
        if not self.leaves:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def proof(self, index):
        """Inclusion proof for the leaf at *index*.

        Returns a list of (sibling_hash, sibling_is_left) pairs from leaf
        level to root.
        """
        if not 0 <= index < len(self.leaves):
            raise IndexError("leaf index out of range")
        path = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_left = False
            else:
                sibling_index = position - 1
                sibling_is_left = True
            if sibling_index >= len(level):
                sibling_index = position  # odd level: node paired with itself
            path.append((level[sibling_index], sibling_is_left))
            position //= 2
        return path

    @staticmethod
    def verify_proof(leaf, proof, root):
        """Check an inclusion proof produced by :meth:`proof`."""
        current = _leaf_hash(leaf)
        for sibling, sibling_is_left in proof:
            if sibling_is_left:
                current = _node_hash(sibling, current)
            else:
                current = _node_hash(current, sibling)
        return current == root
