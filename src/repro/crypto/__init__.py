"""Cryptographic substrate for SNooPy.

The paper assumes (Section 5.2) a collision-resistant hash function and
unforgeable signatures, deployed with 1024-bit RSA keys and SHA-1. This
package provides:

* :mod:`repro.crypto.hashing` — SHA-256 wrappers and the hash-chain helper
  used by the tamper-evident log;
* :mod:`repro.crypto.rsa` — a self-contained RSA implementation (Miller–Rabin
  key generation, hash-then-sign signatures) so the library has no external
  crypto dependency;
* :mod:`repro.crypto.keys` — key pairs, an offline certificate authority and
  per-node certificates (assumption 2 in the paper);
* :mod:`repro.crypto.merkle` — Merkle hash trees used for partial-checkpoint
  verification (Section 7.7 mentions checkpoints verified via a Merkle hash
  tree).

Every signing/verification/hash operation is counted in a per-instance
:class:`CryptoCounter` so that the Figure 7 benchmark (CPU load from crypto)
can be reproduced by accounting rather than noisy wall-clock profiling.
"""

from repro.crypto.hashing import sha256_hex, chain_hash, HashChain
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.crypto.keys import CertificateAuthority, NodeIdentity, CryptoCounter
from repro.crypto.merkle import MerkleTree

__all__ = [
    "sha256_hex",
    "chain_hash",
    "HashChain",
    "RsaKeyPair",
    "generate_keypair",
    "CertificateAuthority",
    "NodeIdentity",
    "CryptoCounter",
    "MerkleTree",
]
