"""Core model types shared by the whole library.

The paper's system model (Section 3.1) represents primary-system state as
*tuples* and computation as *derivation rules*; each node runs a deterministic
state machine ``A_i`` whose inputs are base-tuple insertions/deletions and
incoming messages, and whose outputs are derivations, underivations and
message transmissions. This module defines those vocabulary types:

* :class:`Tup` — an immutable relational tuple with an explicit location
  (``@n`` in the paper's notation);
* :class:`Msg` / :class:`Ack` — update notifications (``+τ`` / ``-τ``) and
  their acknowledgments, with unique per-(src,dst) sequence numbers;
* :class:`Der` / :class:`Und` / :class:`Snd` — the three output kinds of a
  node state machine;
* :class:`StateMachine` — the deterministic per-node state machine interface
  consumed by the graph construction algorithm and by deterministic replay.
"""

from repro.util.serialization import canonical_bytes, canonical_size

PLUS = "+"
MINUS = "-"


class Tup:
    """An immutable tuple ``relation(@loc, *args)``.

    ``loc`` is the node responsible for the tuple (the ``@n`` location
    specifier); ``args`` are the remaining constants. Tuples are value
    objects: equality and hashing are structural, so they can be used as
    dictionary keys throughout the engine and the provenance graph.
    """

    __slots__ = ("relation", "loc", "args", "_hash", "_canon")

    def __init__(self, relation, loc, *args):
        self.relation = relation
        self.loc = loc
        self.args = tuple(args)
        self._hash = hash((relation, loc, self.args))
        self._canon = None

    def __eq__(self, other):
        return (
            isinstance(other, Tup)
            and self.relation == other.relation
            and self.loc == other.loc
            and self.args == other.args
        )

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        # Pickle through the constructor: the memoized hash is
        # process-local (per-process hash randomization), so an unpickled
        # tuple must recompute it in the importing process rather than
        # carry the sender's — otherwise equal tuples constructed on the
        # two sides of a process boundary would land in different dict
        # buckets. See repro/snp/wire.py.
        return (Tup, (self.relation, self.loc) + self.args)

    def __repr__(self):
        inner = ", ".join([f"@{self.loc}"] + [repr(a) for a in self.args])
        return f"{self.relation}({inner})"

    def canonical(self):
        return ("tup", self.relation, self.loc, self.args)

    def canonical_key(self):
        """Memoized canonical encoding, the engine's deterministic sort key.

        The encoding is prefix-free (every value is tag- and
        length-delimited), so comparing per-tuple keys component-wise
        orders sequences of tuples exactly as encoding the whole sequence
        would — which is what lets the engine sort supports without
        re-encoding them on every event.
        """
        if self._canon is None:
            self._canon = canonical_bytes(self.canonical())
        return self._canon

    def wire_size(self):
        """Approximate serialized size in bytes (traffic accounting)."""
        return canonical_size(self.canonical())


class Msg:
    """A tuple-update notification: ``+τ`` or ``-τ`` sent from src to dst.

    Identity is ``(src, dst, seq)``: the paper requires that "each message
    can be sent at most once (recall the sequence numbers)"; state machines
    assign monotonically increasing per-destination sequence numbers.
    ``t_sent`` is the sender-local timestamp (``txmit`` in the paper).
    """

    __slots__ = ("polarity", "tup", "src", "dst", "seq", "t_sent", "_hash")

    def __init__(self, polarity, tup, src, dst, seq, t_sent):
        if polarity not in (PLUS, MINUS):
            raise ValueError(f"bad polarity {polarity!r}")
        self.polarity = polarity
        self.tup = tup
        self.src = src
        self.dst = dst
        self.seq = seq
        self.t_sent = t_sent
        self._hash = hash((polarity, tup, src, dst, seq))

    def msg_id(self):
        """Channel-level identity (sequence number), used for ack matching."""
        return (self.src, self.dst, self.seq)

    def full_key(self):
        """Full message identity including content. Send/receive vertices
        are keyed by this: a faulty node that reuses a sequence number for
        *different* content must not alias the honest message's vertex."""
        return (self.src, self.dst, self.seq, self.polarity, self.tup)

    def __eq__(self, other):
        return (
            isinstance(other, Msg)
            and self.polarity == other.polarity
            and self.tup == other.tup
            and self.msg_id() == other.msg_id()
        )

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        # Constructor-rebuilding pickle for the same reason as Tup's: the
        # memoized hash must be recomputed process-locally.
        return (Msg, (self.polarity, self.tup, self.src, self.dst,
                      self.seq, self.t_sent))

    def __repr__(self):
        return (
            f"Msg({self.polarity}{self.tup!r}, {self.src}->{self.dst}, "
            f"seq={self.seq})"
        )

    def canonical(self):
        return (
            "msg", self.polarity, self.tup.canonical(),
            self.src, self.dst, self.seq, self.t_sent,
        )

    def payload_size(self):
        """Size of the primary-system payload (before SNP overheads)."""
        return canonical_size(self.canonical())


class Ack:
    """Acknowledgment of one or more messages from the same sender.

    The per-message protocol of Section 5.4 acknowledges a single message;
    with the Tbatch optimization (Section 5.6) one wire acknowledgment covers
    a whole batch. ``msgs`` lists the covered messages in the order they
    were received (the GCA needs the full messages to reconstruct remote
    receive vertices when it processes ``rcv(ack)`` events).
    """

    __slots__ = ("src", "dst", "msgs", "t_sent")

    def __init__(self, src, dst, msgs, t_sent):
        self.src = src       # node sending the ack (the original receiver)
        self.dst = dst       # node that sent the original message(s)
        self.msgs = tuple(msgs)
        self.t_sent = t_sent

    def msg_ids(self):
        return tuple(m.msg_id() for m in self.msgs)

    def __repr__(self):
        return f"Ack({self.src}->{self.dst}, {len(self.msgs)} msgs)"

    def canonical(self):
        return ("ack", self.src, self.dst, self.msg_ids(), self.t_sent)


class Der:
    """Output: tuple *tup* was derived via *rule* from *support* tuples.

    ``support`` lists the body tuples of the triggering rule instance (in
    body order). ``replaces``, when set, names a tuple whose disappearance
    causally produced this derivation (the constraint extension of Section
    3.4); the GCA adds a direct disappear→appear edge for it.
    """

    __slots__ = ("tup", "rule", "support", "replaces")

    def __init__(self, tup, rule, support=(), replaces=None):
        self.tup = tup
        self.rule = rule
        self.support = tuple(support)
        self.replaces = replaces

    def __repr__(self):
        return f"Der({self.tup!r} via {self.rule})"


class Und:
    """Output: tuple *tup* was underived (rule instance no longer holds)."""

    __slots__ = ("tup", "rule", "support")

    def __init__(self, tup, rule, support=()):
        self.tup = tup
        self.rule = rule
        self.support = tuple(support)

    def __repr__(self):
        return f"Und({self.tup!r} via {self.rule})"


class Snd:
    """Output: message *msg* must be transmitted."""

    __slots__ = ("msg",)

    def __init__(self, msg):
        self.msg = msg

    def __repr__(self):
        return f"Snd({self.msg!r})"


class StateMachine:
    """Deterministic per-node state machine ``A_i`` (paper Section 3.1).

    Subclasses implement the three input handlers; each returns the ordered
    list of outputs (:class:`Der`/:class:`Und` first, then :class:`Snd`) the
    input produced. Determinism is mandatory (assumption 6): replaying the
    same inputs in the same order on a fresh instance must reproduce the
    same outputs. The base class provides per-destination sequence numbers
    for message construction and snapshot/restore hooks for checkpoints.
    """

    def __init__(self, node_id):
        self.node_id = node_id
        self._seq = {}

    # -- input handlers (override) ---------------------------------------

    def handle_insert(self, tup, t):
        """Base tuple *tup* inserted at local time *t*; returns outputs."""
        raise NotImplementedError

    def handle_delete(self, tup, t):
        """Base tuple *tup* deleted at local time *t*; returns outputs."""
        raise NotImplementedError

    def handle_receive(self, msg, t):
        """Message *msg* received at local time *t*; returns outputs."""
        raise NotImplementedError

    # -- helpers for subclasses -------------------------------------------

    def make_msg(self, polarity, tup, dst, t):
        """Build a uniquely-numbered message to *dst*."""
        seq = self._seq.get(dst, 0)
        self._seq[dst] = seq + 1
        return Msg(polarity, tup, self.node_id, dst, seq, t)

    # -- checkpoint support ------------------------------------------------

    def snapshot(self):
        """Serializable snapshot of the full machine state.

        Must capture everything replay needs, including sequence counters.
        Subclasses extend the returned dict.
        """
        return {"seq": dict(self._seq)}

    def restore(self, snap):
        """Restore state captured by :meth:`snapshot`."""
        self._seq = dict(snap["seq"])

    def extant_tuples(self):
        """Iterable of (tup, appeared_at) for all extant local tuples.

        Used by checkpointing (Section 5.6: a checkpoint must include all
        currently extant or believed tuples and when they appeared).
        """
        raise NotImplementedError

    def believed_tuples(self):
        """Iterable of (tup, peer, appeared_at) for believed remote tuples."""
        raise NotImplementedError
