"""The public SNP API — the paper's primary contribution in one namespace.

Typical usage::

    from repro.core import Deployment, QueryProcessor, Tup

    dep = Deployment(seed=1)
    dep.add_node("r1", my_app_factory)
    ...
    dep.run()
    qp = QueryProcessor(dep)
    result = qp.why(Tup("route", "r1", "10.0.0.0/8"), scope=5)
    print(result.pretty())
    if result.faulty_nodes():
        print("compromised:", result.faulty_nodes())

Layer map (see DESIGN.md):

* model vocabulary: :class:`Tup`, :class:`Msg`, :class:`Ack`,
  :class:`StateMachine` and its outputs :class:`Der`/:class:`Und`/
  :class:`Snd`;
* the provenance graph and GCA: :class:`ProvenanceGraph`,
  :class:`GraphConstructor`, :class:`Vertex`, :class:`Color`;
* the secure layer: :class:`Deployment`, :class:`SNooPyNode`,
  :class:`MicroQuerier`, :class:`QueryProcessor`;
* the Datalog substrate for building primary systems:
  :class:`Program`, :class:`DatalogApp`, :class:`Rule`,
  :class:`AggregateRule`, :class:`MaybeRule`, :class:`Atom`,
  :class:`Var`, :class:`Expr`.
"""

from repro.model import (
    Tup, Msg, Ack, Der, Und, Snd, StateMachine, PLUS, MINUS,
)
from repro.datalog import (
    Var, Expr, Atom, Rule, AggregateRule, MaybeRule, choice_tuple,
    Program, DatalogApp,
)
from repro.provgraph import (
    ProvenanceGraph, GraphConstructor, Event, Vertex, Color,
)
from repro.snp import Deployment, SNooPyNode, MicroQuerier, QueryProcessor
from repro.snp.query import QueryResult

__all__ = [
    "Tup", "Msg", "Ack", "Der", "Und", "Snd", "StateMachine",
    "PLUS", "MINUS",
    "Var", "Expr", "Atom", "Rule", "AggregateRule", "MaybeRule",
    "choice_tuple", "Program", "DatalogApp",
    "ProvenanceGraph", "GraphConstructor", "Event", "Vertex", "Color",
    "Deployment", "SNooPyNode", "MicroQuerier", "QueryProcessor",
    "QueryResult",
]
