"""The Graph Construction Algorithm (paper Appendix B, Figures 10/11).

The GCA consumes a *history* — a sequence of events ``(t, node, kind,
payload)`` with kinds ``ins``/``del``/``snd``/``rcv`` — and produces the
provenance graph ``G(h)``. For every non-``snd`` event it also feeds the
corresponding input to the node's deterministic state machine ``A_i`` and
processes the resulting ``der``/``und``/``snd`` outputs.

The code below is a line-by-line transcription of the pseudocode; each
method names the figure function it implements. The four pieces of
bookkeeping state match the pseudocode's variables:

* ``pending``  — outputs ``A_i`` produced whose ``snd`` event has not been
  seen yet (a correct node sends them before its next input);
* ``ackpend``  — receive vertices whose acknowledgment has not been sent
  yet (a correct node acks immediately);
* ``unacked``  — sent messages with no acknowledgment yet (red after
  ``2·Tprop``, per the maintainer-notification rule of Section 5.4);
* ``nopreds``  — send vertices created from the receiver's perspective that
  have no incoming edge yet.

Documented deviations from the pseudocode (see DESIGN.md):

* acknowledgments may cover several messages (the Tbatch optimization of
  Section 5.6); the ack branches iterate over the covered messages;
* a logged ``del`` (or ``−τ`` notification) for a tuple that does not exist
  colors the disappear vertex red instead of crashing — a correct node
  never produces such an event, so this only fires while replaying a lying
  node's log;
* checkpoint support: :meth:`seed_node` pre-creates open exist/believe
  vertices from a checkpoint so replay can start mid-log (Section 5.6).
"""

from repro.model import Ack, Der, Snd, Und, PLUS
from repro.provgraph.graph import ProvenanceGraph
from repro.provgraph.vertices import (
    Vertex, Color,
    INSERT, DELETE, APPEAR, DISAPPEAR, EXIST, DERIVE, UNDERIVE,
    SEND, RECEIVE, BELIEVE_APPEAR, BELIEVE_DISAPPEAR, BELIEVE,
)


class Event:
    """One history event ``e_k = (t_k, i_k, x_k)`` (Appendix A.3)."""

    __slots__ = ("t", "node", "kind", "payload")

    KINDS = ("ins", "del", "snd", "rcv")

    def __init__(self, t, node, kind, payload):
        if kind not in self.KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        self.t = t
        self.node = node
        self.kind = kind
        self.payload = payload

    def __repr__(self):
        return f"Event(t={self.t:g}, {self.node}, {self.kind}, {self.payload!r})"


class GraphConstructor:
    """Runs the GCA over a history, maintaining ``G`` incrementally."""

    def __init__(self, machine_factory, t_prop=1.0):
        """*machine_factory(node_id)* returns a fresh deterministic state
        machine for that node; *t_prop* is the network's Tprop bound used
        for the missing-ack rule."""
        self.graph = ProvenanceGraph()
        self.machine_factory = machine_factory
        self.t_prop = t_prop
        self.machines = {}
        self._pending = {}      # (node, msg_id) -> send Vertex
        self._ackpend = {}      # node -> {msg_id: receive Vertex}
        self._unacked = {}      # node -> {msg_id: send Vertex}
        self._nopreds = set()   # keys of send vertices with no predecessor
        # Messages the maintainer already knows went unacknowledged
        # (Section 5.4's notification rule): not red, just unresolved.
        self.known_alarm_msg_ids = frozenset()
        # Pending per-node machine snapshots to restore lazily on first
        # use — how a GCA reconstructed from its wire form (see
        # repro/snp/wire.py) defers the restore cost until an extend
        # actually needs the machine.
        self.machine_snapshots = {}

    # ------------------------------------------------------------ driving

    def machine(self, node):
        if node not in self.machines:
            machine = self.machine_factory(node)
            snapshot = self.machine_snapshots.pop(node, None)
            if snapshot is not None:
                machine.restore(snapshot)
            self.machines[node] = machine
        return self.machines[node]

    def process(self, event):
        """Steps 2–5 of the algorithm for one event."""
        t, node, kind, payload = event.t, event.node, event.kind, event.payload
        if kind == "ins":
            self.handle_event_ins(node, payload, t)
            outputs = self.machine(node).handle_insert(payload, t)
        elif kind == "del":
            self.handle_event_del(node, payload, t)
            outputs = self.machine(node).handle_delete(payload, t)
        elif kind == "rcv":
            self.handle_event_rcv(node, payload, t)
            outputs = self.machine(node).handle_receive(payload, t)
        else:  # snd events are not fed to the state machine (step 3)
            self.handle_event_snd(node, payload, t)
            return
        for output in outputs:
            if isinstance(output, Der):
                self.handle_output_der(node, output, t)
            elif isinstance(output, Und):
                self.handle_output_und(node, output, t)
            elif isinstance(output, Snd):
                self.handle_output_snd(node, output, t)
            else:
                raise TypeError(f"unknown state machine output {output!r}")

    def run(self, history):
        """Run the GCA over an iterable of events; returns the graph."""
        for event in history:
            self.process(event)
        return self.graph

    # ------------------------------------------- library functions (Fig 10)

    def appear_local_tuple(self, i, tup, vwhy, t):
        """Figure 10, lines 8–13."""
        v1 = self.graph.add_vertex(Vertex(APPEAR, i, tup=tup, t=t))
        open_exist = self.graph.open_interval(EXIST, i, tup)
        if open_exist is None:
            v2 = self.graph.add_vertex(
                Vertex(EXIST, i, tup=tup, t=t, t_end=None)
            )
        else:
            # Deviation: a re-insert while the tuple still exists links the
            # new appear to the already-open exist instead of opening a
            # second interval (refcounted base tuples).
            v2 = open_exist
        if vwhy is not None:
            self.graph.add_edge(vwhy, v1)
        self.graph.add_edge(v1, v2)
        return v1

    def disappear_local_tuple(self, i, tup, vwhy, t):
        """Figure 10, lines 15–21."""
        v1 = self.graph.add_vertex(Vertex(DISAPPEAR, i, tup=tup, t=t))
        if vwhy is not None:
            self.graph.add_edge(vwhy, v1)
        open_exist = self.graph.open_interval(EXIST, i, tup)
        if open_exist is None:
            # Deviation: disappearance of a tuple that never existed is
            # itself proof of a bogus log.
            v1.set_color(Color.RED)
            return v1
        self.graph.close_interval(open_exist, t)
        self.graph.add_edge(v1, open_exist)
        return v1

    def appear_remote_tuple(self, i, tup, j, vwhy, t):
        """Figure 10, lines 23–28."""
        v1 = self.graph.add_vertex(
            Vertex(BELIEVE_APPEAR, i, tup=tup, t=t, peer=j)
        )
        open_believe = self.graph.open_interval(BELIEVE, i, tup)
        if open_believe is None:
            v2 = self.graph.add_vertex(
                Vertex(BELIEVE, i, tup=tup, t=t, t_end=None, peer=j)
            )
        else:
            v2 = open_believe
        if vwhy is not None:
            self.graph.add_edge(vwhy, v1)
        self.graph.add_edge(v1, v2)
        return v1

    def disappear_remote_tuple(self, i, tup, j, vwhy, t):
        """Figure 10, lines 30–36."""
        v1 = self.graph.add_vertex(
            Vertex(BELIEVE_DISAPPEAR, i, tup=tup, t=t, peer=j)
        )
        if vwhy is not None:
            self.graph.add_edge(vwhy, v1)
        open_believe = self.graph.open_interval(BELIEVE, i, tup)
        if open_believe is None:
            v1.set_color(Color.RED)
            return v1
        self.graph.close_interval(open_believe, t)
        self.graph.add_edge(v1, open_believe)
        return v1

    def flag_all_pending(self, i, t):
        """Figure 10, lines 38–49."""
        self.flag_ackpend(i)
        for (node, msg_id), vertex in list(self._pending.items()):
            if node != i:
                continue
            vertex.set_color(Color.RED)
            del self._pending[(node, msg_id)]
            self._unacked.get(i, {}).pop(msg_id, None)
        stale = []
        for msg_id, vertex in self._unacked.get(i, {}).items():
            if vertex.t < t - 2 * self.t_prop:
                if msg_id in self.known_alarm_msg_ids:
                    continue  # maintainer was notified; not the sender's fault
                vertex.set_color(Color.RED)
                stale.append(msg_id)
        for msg_id in stale:
            del self._unacked[i][msg_id]

    def add_send_vertex(self, m, vwhy, t):
        """Figure 10, lines 50–67."""
        key = (SEND, m.full_key())
        v1 = self.graph.get(key)
        if v1 is None:
            v1 = self.graph.add_vertex(
                Vertex(SEND, m.src, t=t, peer=m.dst, msg=m,
                       color=Color.YELLOW)
            )
            self._nopreds.add(v1.key())
            self._unacked.setdefault(m.src, {})[m.msg_id()] = v1
        if v1.key() in self._nopreds and vwhy is not None:
            self.graph.add_edge(vwhy, v1)
            self._nopreds.discard(v1.key())
        return v1

    def add_receive_vertex(self, m, t):
        """Figure 10, lines 69–84."""
        send_vertex = self.add_send_vertex(m, None, m.t_sent)
        key = (RECEIVE, m.full_key())
        v1 = self.graph.get(key)
        if v1 is None:
            v1 = self.graph.add_vertex(
                Vertex(RECEIVE, m.dst, t=t, peer=m.src, msg=m,
                       color=Color.YELLOW)
            )
        self.graph.add_edge(send_vertex, v1)
        return v1

    def add_red_unless_present(self, vertex):
        """Figure 10, lines 86–91."""
        if vertex.key() not in self.graph:
            vertex.set_color(Color.RED)
            self.graph.add_vertex(vertex)

    def flag_ackpend(self, i):
        """Figure 10, lines 93–98."""
        table = self._ackpend.get(i)
        if not table:
            return
        for vertex in table.values():
            vertex.set_color(Color.RED)
        table.clear()

    # --------------------------------------------- event handlers (Fig 11)

    def handle_event_ins(self, i, tup, t):
        """Figure 11, lines 99–104."""
        self.flag_all_pending(i, t)
        v1 = self.graph.add_vertex(Vertex(INSERT, i, tup=tup, t=t))
        self.appear_local_tuple(i, tup, v1, t)

    def handle_event_del(self, i, tup, t):
        """Figure 11, lines 106–111."""
        self.flag_all_pending(i, t)
        v1 = self.graph.add_vertex(Vertex(DELETE, i, tup=tup, t=t))
        self.disappear_local_tuple(i, tup, v1, t)

    def handle_event_snd(self, i, m, t):
        """Figure 11, lines 113–127."""
        if isinstance(m, Ack):
            for covered in m.msgs:
                v1 = self.graph.get((RECEIVE, covered.full_key()))
                if v1 is not None:
                    table = self._ackpend.get(i, {})
                    if covered.msg_id() in table:
                        del table[covered.msg_id()]
                        v1.set_color(Color.BLACK)
        elif (i, m.full_key()) in self._pending:
            del self._pending[(i, m.full_key())]
        else:
            v2 = self.add_send_vertex(m, None, t)
            self._unacked.get(i, {}).pop(m.msg_id(), None)
            v2.set_color(Color.RED)
        self.flag_ackpend(i)

    def handle_event_rcv(self, i, m, t):
        """Figure 11, lines 129–147."""
        self.flag_all_pending(i, t)
        if isinstance(m, Ack):
            for covered in m.msgs:
                self.add_receive_vertex(covered, m.t_sent)
                v1 = self.graph.get((SEND, covered.full_key()))
                if v1 is not None:
                    table = self._unacked.get(i, {})
                    if covered.msg_id() in table:
                        del table[covered.msg_id()]
                        v1.set_color(Color.BLACK)
        else:
            v1 = self.add_receive_vertex(m, t)
            self._ackpend.setdefault(i, {})[m.msg_id()] = v1
            if m.polarity == PLUS:
                self.appear_remote_tuple(i, m.tup, m.src, v1, t)
            else:
                self.disappear_remote_tuple(i, m.tup, m.src, v1, t)

    # -------------------------------------------- output handlers (Fig 11)

    def _support_vertex(self, i, tup, t, disappearing):
        """Figure 11, lines 151–160 / 168–177: locate the vertex that
        justifies using support tuple *tup* in a (un)derivation at time t.

        For a derivation the same-instant candidates are believe-appear and
        appear; for an underivation, believe-disappear and disappear.
        """
        if disappearing:
            same_instant = (BELIEVE_DISAPPEAR, DISAPPEAR)
        else:
            same_instant = (BELIEVE_APPEAR, APPEAR)
        for vtype in same_instant:
            vertex = self.graph.get((vtype, i, tup, t))
            if vertex is not None:
                return vertex
        vertex = self.graph.open_interval(BELIEVE, i, tup)
        if vertex is not None:
            return vertex
        vertex = self.graph.open_interval(EXIST, i, tup)
        if vertex is not None:
            return vertex
        # Defensive: a deterministic machine only derives from tuples it
        # holds, so this is unreachable for faithful replays; create a
        # yellow placeholder rather than crash on a hostile log.
        return self.graph.add_vertex(
            Vertex(EXIST, i, tup=tup, t=t, t_end=None, color=Color.YELLOW)
        )

    def handle_output_der(self, i, der, t):
        """Figure 11, lines 148–163 (+ Section 3.4 constraint extension)."""
        v1 = self.graph.add_vertex(
            Vertex(DERIVE, i, tup=der.tup, rule=der.rule, t=t)
        )
        for support in der.support:
            self.graph.add_edge(
                self._support_vertex(i, support, t, disappearing=False), v1
            )
        appear_vertex = self.appear_local_tuple(i, der.tup, v1, t)
        if der.replaces is not None:
            # Constraint extension: the replaced tuple's disappearance is a
            # direct cause of this appearance. Find its most recent
            # disappearance at or before this instant.
            candidates = [
                v for vtype in (DISAPPEAR, BELIEVE_DISAPPEAR)
                for v in self.graph.find_all(vtype=vtype, node=i,
                                             tup=der.replaces)
                if v.t <= t
            ]
            if candidates:
                gone = max(candidates, key=lambda v: v.t)
                self.graph.add_edge(gone, appear_vertex)

    def handle_output_und(self, i, und, t):
        """Figure 11, lines 165–180."""
        v1 = self.graph.add_vertex(
            Vertex(UNDERIVE, i, tup=und.tup, rule=und.rule, t=t)
        )
        for support in und.support:
            self.graph.add_edge(
                self._support_vertex(i, support, t, disappearing=True), v1
            )
        self.disappear_local_tuple(i, und.tup, v1, t)

    def handle_output_snd(self, i, snd, t):
        """Figure 11, lines 182–190."""
        m = snd.msg
        if m.polarity == PLUS:
            vwhy = self.graph.get((APPEAR, i, m.tup, t))
        else:
            vwhy = self.graph.get((DISAPPEAR, i, m.tup, t))
        v1 = self.add_send_vertex(m, vwhy, t)
        self._pending[(i, m.full_key())] = v1

    def handle_extra_msg(self, m):
        """Figure 11, lines 192–196: evidence of an unlogged message."""
        self.add_red_unless_present(
            Vertex(SEND, m.src, t=m.t_sent, peer=m.dst, msg=m)
        )
        self.add_red_unless_present(
            Vertex(RECEIVE, m.dst, t=m.t_sent, peer=m.src, msg=m)
        )

    # ------------------------------------------------- checkpoint seeding

    def seed_node(self, node, extant, believed):
        """Pre-create open exist/believe vertices from a checkpoint.

        *extant* is an iterable of (tup, appeared_at); *believed* of
        (tup, peer, appeared_at). Seeded vertices are flagged so the query
        processor knows their provenance lies in an older log segment.
        """
        for tup, appeared_at in extant:
            self.graph.add_vertex(
                Vertex(EXIST, node, tup=tup, t=appeared_at, t_end=None,
                       seeded=True)
            )
        for tup, peer, appeared_at in believed:
            self.graph.add_vertex(
                Vertex(BELIEVE, node, tup=tup, t=appeared_at, t_end=None,
                       peer=peer, seeded=True)
            )
