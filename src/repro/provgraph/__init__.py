"""The SNP provenance graph (paper Section 3 and Appendix B).

* :mod:`repro.provgraph.vertices` — the twelve vertex types and the three
  colors (black/red/yellow) with their dominance order;
* :mod:`repro.provgraph.graph` — the graph container plus the algebra used
  by the paper's proofs: union (∪*), projection (G|i) and the subgraph
  relation (⊆*);
* :mod:`repro.provgraph.gca` — a faithful transcription of the graph
  construction algorithm from Appendix B (Figures 10 and 11), including
  ``handle-extra-msg`` for equivocation evidence.
"""

from repro.provgraph.vertices import (
    Vertex, Color,
    INSERT, DELETE, APPEAR, DISAPPEAR, EXIST, DERIVE, UNDERIVE,
    SEND, RECEIVE, BELIEVE_APPEAR, BELIEVE_DISAPPEAR, BELIEVE,
)
from repro.provgraph.graph import ProvenanceGraph
from repro.provgraph.gca import GraphConstructor, Event

__all__ = [
    "Vertex",
    "Color",
    "ProvenanceGraph",
    "GraphConstructor",
    "Event",
    "INSERT", "DELETE", "APPEAR", "DISAPPEAR", "EXIST", "DERIVE", "UNDERIVE",
    "SEND", "RECEIVE", "BELIEVE_APPEAR", "BELIEVE_DISAPPEAR", "BELIEVE",
]
