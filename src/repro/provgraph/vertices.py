"""Vertex types and colors of the provenance graph (paper Section 3.2).

Twelve vertex types. Seven represent local state and state changes::

    insert(n, τ, t)      delete(n, τ, t)
    appear(n, τ, t)      disappear(n, τ, t)
    exist(n, τ, [t1,t2])
    derive(n, τ, R, t)   underive(n, τ, R, t)

and five represent cross-node interaction::

    send(n, n', ±τ, t)   receive(n, n', ±τ, t)
    believe-appear(n, n', τ, t)   believe-disappear(n, n', τ, t)
    believe(n, n', τ, [t1,t2])

Every vertex is attributed to exactly one node, ``host(v)`` (Theorem 2's
compositionality depends on this). Colors indicate legitimacy: black =
correct, red = provably faulty, yellow = not yet known; dominance order is
red > black > yellow (Appendix B.1).
"""

from repro.util.serialization import canonical_bytes

INSERT = "insert"
DELETE = "delete"
APPEAR = "appear"
DISAPPEAR = "disappear"
EXIST = "exist"
DERIVE = "derive"
UNDERIVE = "underive"
SEND = "send"
RECEIVE = "receive"
BELIEVE_APPEAR = "believe-appear"
BELIEVE_DISAPPEAR = "believe-disappear"
BELIEVE = "believe"

ALL_TYPES = (
    INSERT, DELETE, APPEAR, DISAPPEAR, EXIST, DERIVE, UNDERIVE,
    SEND, RECEIVE, BELIEVE_APPEAR, BELIEVE_DISAPPEAR, BELIEVE,
)

INTERVAL_TYPES = (EXIST, BELIEVE)


class Color:
    YELLOW = "yellow"
    BLACK = "black"
    RED = "red"

    _DOMINANCE = {YELLOW: 0, BLACK: 1, RED: 2}

    @classmethod
    def dominant(cls, a, b):
        """The more dominant of two colors (red > black > yellow)."""
        return a if cls._DOMINANCE[a] >= cls._DOMINANCE[b] else b


class Vertex:
    """One provenance-graph vertex.

    Identity (equality/hash) is by :meth:`key`, which excludes mutable
    attributes: the color, and the closing timestamp ``t_end`` of interval
    vertices (an ``exist``/``believe`` vertex is created with an open
    interval ``[t,∞)`` and closed at most once, per Appendix B.3).

    Attributes:
        vtype: one of the twelve type constants.
        node: host(v), the node responsible for this vertex.
        tup: the subject tuple (None for send/receive).
        t: creation/event timestamp; for interval vertices the interval
           start.
        t_end: interval end for exist/believe (None = ∞); unused otherwise.
        peer: the remote node for interaction vertices.
        rule: rule name for derive/underive.
        msg: the message for send/receive vertices.
        color: black/red/yellow.
        seeded: True when the vertex was reconstructed from a checkpoint
            rather than observed events (its predecessors live in an older
            log segment).
    """

    __slots__ = (
        "vtype", "node", "tup", "t", "t_end", "peer", "rule", "msg",
        "color", "seeded", "_key",
    )

    def __init__(self, vtype, node, tup=None, t=None, t_end=None, peer=None,
                 rule=None, msg=None, color=Color.BLACK, seeded=False):
        self.vtype = vtype
        self.node = node
        self.tup = tup
        self.t = t
        self.t_end = t_end
        self.peer = peer
        self.rule = rule
        self.msg = msg
        self.color = color
        self.seeded = seeded
        self._key = self._compute_key()

    def _compute_key(self):
        if self.vtype in (SEND, RECEIVE):
            return (self.vtype, self.msg.full_key())
        if self.vtype in (DERIVE, UNDERIVE):
            return (self.vtype, self.node, self.tup, self.rule, self.t)
        # Interval vertices are keyed by their start time only, so that
        # closing the interval does not change identity.
        return (self.vtype, self.node, self.tup, self.t)

    def key(self):
        return self._key

    def __eq__(self, other):
        return isinstance(other, Vertex) and self._key == other._key

    def __hash__(self):
        return hash(self._key)

    @property
    def host(self):
        return self.node

    def is_interval(self):
        return self.vtype in INTERVAL_TYPES

    def interval_open(self):
        return self.is_interval() and self.t_end is None

    def close_interval(self, t_end):
        if not self.is_interval():
            raise ValueError(f"{self.vtype} vertex has no interval")
        if self.t_end is not None:
            raise ValueError("interval already closed")
        self.t_end = t_end

    def set_color(self, color):
        self.color = color

    def sort_key(self):
        return canonical_bytes(
            (self.vtype, str(self.node),
             self.tup.canonical() if self.tup is not None else None,
             self.rule, -1.0 if self.t is None else float(self.t))
        )

    def describe(self):
        """Human-readable rendering, matching the paper's notation."""
        name = self.vtype.upper()
        if self.vtype in (SEND, RECEIVE):
            pol = self.msg.polarity
            return (
                f"{name}({self.node}, {self.peer}, {pol}{self.msg.tup!r}, "
                f"t={self.t:g})"
            )
        if self.vtype in (BELIEVE_APPEAR, BELIEVE_DISAPPEAR):
            return f"{name}({self.node}, {self.peer}, {self.tup!r}, t={self.t:g})"
        if self.vtype == BELIEVE:
            end = "now" if self.t_end is None else f"{self.t_end:g}"
            return (
                f"{name}({self.node}, {self.peer}, {self.tup!r}, "
                f"[{self.t:g}, {end}])"
            )
        if self.vtype == EXIST:
            end = "now" if self.t_end is None else f"{self.t_end:g}"
            return f"{name}({self.node}, {self.tup!r}, [{self.t:g}, {end}])"
        if self.vtype in (DERIVE, UNDERIVE):
            return f"{name}({self.node}, {self.tup!r}, {self.rule}, t={self.t:g})"
        return f"{name}({self.node}, {self.tup!r}, t={self.t:g})"

    def __repr__(self):
        return f"<{self.describe()} {self.color}>"
