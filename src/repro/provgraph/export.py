"""Provenance graph exporters.

The paper notes SNooPy's output could feed a provenance visualizer such as
VisTrails (Section 5.9). This module renders query results / graphs to:

* **Graphviz dot** — colors map to the paper's semantics (black boxes, red
  for proven misbehavior, yellow/amber for unknown);
* **JSON** — a stable machine-readable structure for external tooling.
"""

import json

from repro.provgraph.vertices import Color


_DOT_COLORS = {
    Color.BLACK: ("black", "white"),
    Color.RED: ("red3", "mistyrose"),
    Color.YELLOW: ("goldenrod", "lightyellow"),
}


def _vertex_id(vertex, ids):
    key = vertex.key()
    if key not in ids:
        ids[key] = f"v{len(ids)}"
    return ids[key]


def to_dot(graph, title="provenance"):
    """Render a ProvenanceGraph (or QueryResult.graph) as Graphviz dot."""
    ids = {}
    lines = [
        "digraph provenance {",
        "  rankdir=BT;",
        f"  label=\"{title}\";",
        "  node [shape=box, fontsize=10, fontname=\"Helvetica\"];",
    ]
    for vertex in sorted(graph.vertices(), key=lambda v: v.sort_key()):
        node_id = _vertex_id(vertex, ids)
        border, fill = _DOT_COLORS[vertex.color]
        label = vertex.describe().replace("\"", "'")
        lines.append(
            f"  {node_id} [label=\"{label}\", color={border}, "
            f"style=filled, fillcolor={fill}];"
        )
    for key_from, key_to in sorted(graph.edges(), key=str):
        a = graph.get(key_from)
        b = graph.get(key_to)
        if a is None or b is None:
            continue
        lines.append(f"  {_vertex_id(a, ids)} -> {_vertex_id(b, ids)};")
    lines.append("}")
    return "\n".join(lines)


def to_json(graph):
    """Serialize a graph to a JSON string (stable key order)."""
    ids = {}
    vertices = []
    for vertex in sorted(graph.vertices(), key=lambda v: v.sort_key()):
        vertices.append({
            "id": _vertex_id(vertex, ids),
            "type": vertex.vtype,
            "host": str(vertex.node),
            "color": vertex.color,
            "tuple": repr(vertex.tup) if vertex.tup is not None else None,
            "rule": vertex.rule,
            "t": vertex.t,
            "t_end": vertex.t_end,
            "peer": str(vertex.peer) if vertex.peer is not None else None,
            "seeded": vertex.seeded,
        })
    edges = []
    for key_from, key_to in sorted(graph.edges(), key=str):
        a = graph.get(key_from)
        b = graph.get(key_to)
        if a is None or b is None:
            continue
        edges.append([_vertex_id(a, ids), _vertex_id(b, ids)])
    return json.dumps({"vertices": vertices, "edges": edges}, indent=2,
                      sort_keys=True)
