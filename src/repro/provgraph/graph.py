"""The provenance graph container and its algebra.

Implements the operations Appendix B.2 defines for the proofs:

* ``union`` (∪*) — vertex-set union where duplicate exist/believe vertices
  keep the *intersection* of their intervals and duplicate vertices take the
  dominant color;
* ``project`` (G|i) — the subgraph of vertices hosted on node i, plus any
  send/receive vertices on other nodes connected to them by an edge (those
  are colored yellow in the projection);
* ``is_subgraph_of`` (⊆*) — G1 ⊆* G iff some G2 satisfies G1 ∪* G2 = G.

The container also maintains the lookup indexes the GCA pseudocode relies on
(``v.get(...)`` with wildcards): exact key lookup, and open-interval lookup
by (node, tuple).
"""

from repro.provgraph.vertices import (
    Vertex, Color, EXIST, BELIEVE, SEND, RECEIVE,
)


class ProvenanceGraph:
    def __init__(self):
        self._vertices = {}          # key -> Vertex
        self._edges = set()          # (key_from, key_to)
        self._succ = {}              # key -> list of keys (insertion order)
        self._pred = {}
        self._open_intervals = {}    # (vtype, node, tup) -> Vertex

    # ------------------------------------------------------------- basics

    def __len__(self):
        return len(self._vertices)

    def __contains__(self, vertex):
        key = vertex.key() if isinstance(vertex, Vertex) else vertex
        return key in self._vertices

    def vertices(self):
        return list(self._vertices.values())

    def edges(self):
        return list(self._edges)

    def edge_count(self):
        return len(self._edges)

    def get(self, key):
        """Vertex by exact key, or None."""
        return self._vertices.get(key)

    def add_vertex(self, vertex):
        """Insert *vertex* if absent; returns the canonical instance."""
        existing = self._vertices.get(vertex.key())
        if existing is not None:
            return existing
        self._vertices[vertex.key()] = vertex
        if vertex.interval_open():
            self._open_intervals[
                (vertex.vtype, vertex.node, vertex.tup)
            ] = vertex
        return vertex

    def add_edge(self, v_from, v_to):
        pair = (v_from.key(), v_to.key())
        if pair in self._edges:
            return
        self._edges.add(pair)
        self._succ.setdefault(pair[0], []).append(pair[1])
        self._pred.setdefault(pair[1], []).append(pair[0])

    def has_edge(self, v_from, v_to):
        return (v_from.key(), v_to.key()) in self._edges

    def predecessors(self, vertex):
        return [self._vertices[k] for k in self._pred.get(vertex.key(), ())]

    def successors(self, vertex):
        return [self._vertices[k] for k in self._succ.get(vertex.key(), ())]

    # --------------------------------------------------- wildcard lookups

    def open_interval(self, vtype, node, tup):
        """The open exist/believe vertex for (node, tup), or None."""
        return self._open_intervals.get((vtype, node, tup))

    def close_interval(self, vertex, t_end):
        """Close an open exist/believe vertex's interval."""
        vertex.close_interval(t_end)
        self._open_intervals.pop(
            (vertex.vtype, vertex.node, vertex.tup), None
        )

    def find_exist_at(self, node, tup, t):
        """The exist vertex for *tup* on *node* whose interval contains t."""
        for vertex in self._vertices.values():
            if (
                vertex.vtype == EXIST
                and vertex.node == node
                and vertex.tup == tup
                and vertex.t <= t
                and (vertex.t_end is None or t <= vertex.t_end)
            ):
                return vertex
        return None

    def find_all(self, vtype=None, node=None, tup=None):
        """Linear-scan query used by tests and the macroquery processor."""
        out = []
        for vertex in self._vertices.values():
            if vtype is not None and vertex.vtype != vtype:
                continue
            if node is not None and vertex.node != node:
                continue
            if tup is not None and vertex.tup != tup:
                continue
            out.append(vertex)
        out.sort(key=Vertex.sort_key)
        return out

    # ------------------------------------------------------------ algebra

    def union(self, other):
        """G ∪* other (Appendix B.2); returns a new graph."""
        result = ProvenanceGraph()
        for source in (self, other):
            for vertex in source._vertices.values():
                result._merge_vertex(vertex)
        for source in (self, other):
            for key_from, key_to in source._edges:
                a = result._vertices.get(key_from)
                b = result._vertices.get(key_to)
                if a is not None and b is not None:
                    result.add_edge(a, b)
        return result

    def _merge_vertex(self, vertex):
        existing = self._vertices.get(vertex.key())
        if existing is None:
            clone = _clone_vertex(vertex)
            self._vertices[clone.key()] = clone
            if clone.interval_open():
                self._open_intervals[
                    (clone.vtype, clone.node, clone.tup)
                ] = clone
            return
        existing.color = Color.dominant(existing.color, vertex.color)
        if existing.is_interval():
            # Intersection of intervals: same start (key), smaller end wins.
            merged_end = _min_end(existing.t_end, vertex.t_end)
            if merged_end != existing.t_end:
                existing.t_end = merged_end
                self._open_intervals.pop(
                    (existing.vtype, existing.node, existing.tup), None
                )

    def project(self, node):
        """G | node (Appendix B.2)."""
        result = ProvenanceGraph()
        kept = set()
        for vertex in self._vertices.values():
            if vertex.node == node:
                result._merge_vertex(vertex)
                kept.add(vertex.key())
        # Cross-node send/receive vertices connected by an edge, in yellow.
        for key_from, key_to in self._edges:
            for mine, theirs in ((key_from, key_to), (key_to, key_from)):
                if mine in kept and theirs not in kept:
                    other = self._vertices[theirs]
                    if other.vtype in (SEND, RECEIVE):
                        clone = _clone_vertex(other)
                        clone.color = Color.YELLOW
                        result._merge_vertex(clone)
        for key_from, key_to in self._edges:
            a = result._vertices.get(key_from)
            b = result._vertices.get(key_to)
            if a is not None and b is not None:
                result.add_edge(a, b)
        return result

    def is_subgraph_of(self, other):
        """G ⊆* other: every vertex/edge of G appears in *other* with a
        color at least as dominant and an interval no larger."""
        for key, vertex in self._vertices.items():
            theirs = other._vertices.get(key)
            if theirs is None:
                return False
            if Color.dominant(vertex.color, theirs.color) != theirs.color:
                return False
            if vertex.is_interval():
                if _min_end(vertex.t_end, theirs.t_end) != theirs.t_end:
                    return False
        return all(edge in other._edges for edge in self._edges)

    # ----------------------------------------------------------- coloring

    def red_vertices(self):
        return [v for v in self._vertices.values() if v.color == Color.RED]

    def yellow_vertices(self):
        return [v for v in self._vertices.values() if v.color == Color.YELLOW]

    def vertices_on(self, node):
        return [v for v in self._vertices.values() if v.node == node]


def _clone_vertex(vertex):
    return Vertex(
        vertex.vtype, vertex.node, tup=vertex.tup, t=vertex.t,
        t_end=vertex.t_end, peer=vertex.peer, rule=vertex.rule,
        msg=vertex.msg, color=vertex.color, seeded=vertex.seeded,
    )


def _min_end(a, b):
    """Minimum of two interval ends where None means +∞."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)
