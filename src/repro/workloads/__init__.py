"""Synthetic workload generators.

The paper's evaluation drives its applications with external datasets we do
not have (a RouteViews BGP trace, a Wikipedia crawl from WebBase). These
generators produce seeded synthetic equivalents with the same structure —
announce/withdraw update streams with skewed prefix popularity, and
Zipf-distributed text — so the benchmarks exercise identical code paths at
configurable scale. See DESIGN.md's substitution table.
"""

from repro.workloads.routeviews import RouteViewsTrace, UpdateEvent
from repro.workloads.text import ZipfCorpus
from repro.workloads.topology import (
    tiered_as_topology, ring_edges, random_graph_edges,
)

__all__ = [
    "RouteViewsTrace",
    "UpdateEvent",
    "ZipfCorpus",
    "tiered_as_topology",
    "ring_edges",
    "random_graph_edges",
]
