"""Synthetic text corpora for the WordCount experiments.

The paper's Hadoop runs count words in 1.2–10.3 GB of Wikipedia/WebBase
data. We generate Zipf-distributed text (natural language is approximately
Zipfian) at a configurable size, with the ability to *plant* an exact
number of occurrences of a marker word — the Hadoop-Squirrel scenario needs
a corpus where the ground-truth count of 'squirrel' is known.
"""

import random

_SYLLABLES = [
    "ba", "co", "di", "fu", "ga", "he", "ki", "lo", "mu", "na",
    "pe", "qui", "ro", "sa", "tu", "ve", "wo", "xi", "yu", "za",
]


def _make_vocabulary(size, rng):
    vocab = []
    seen = set()
    while len(vocab) < size:
        word = "".join(rng.choices(_SYLLABLES, k=rng.randint(2, 4)))
        if word not in seen:
            seen.add(word)
            vocab.append(word)
    return vocab


class ZipfCorpus:
    """A seeded Zipf-distributed corpus split into mapper inputs."""

    def __init__(self, n_words=2000, vocabulary=300, skew=1.1, seed=0,
                 planted=None):
        """*planted* maps marker words to exact total occurrence counts;
        planted words never collide with the generated vocabulary."""
        self.n_words = n_words
        self.vocabulary_size = vocabulary
        self.skew = skew
        self.seed = seed
        self.planted = dict(planted or {})

    def words(self):
        rng = random.Random(self.seed)
        vocab = _make_vocabulary(self.vocabulary_size, rng)
        weights = [1.0 / ((rank + 1) ** self.skew)
                   for rank in range(len(vocab))]
        body_count = max(0, self.n_words - sum(self.planted.values()))
        body = rng.choices(vocab, weights=weights, k=body_count)
        for word, count in sorted(self.planted.items()):
            positions = sorted(
                rng.sample(range(len(body) + count),
                           min(count, len(body) + count))
            )
            for offset, position in enumerate(positions):
                body.insert(min(position, len(body)), word)
        return body

    def splits(self, n_splits):
        """Partition the corpus into *n_splits* texts (one per mapper)."""
        words = self.words()
        per = max(1, len(words) // n_splits)
        texts = []
        for index in range(n_splits):
            start = index * per
            end = (index + 1) * per if index < n_splits - 1 else len(words)
            texts.append(" ".join(words[start:end]))
        return texts

    def true_count(self, word):
        return sum(1 for w in self.words() if w == word)
