"""Topology generators: tiered AS graphs, rings, random graphs.

The paper's Quagga experiment uses 35 daemons in 10 ASes "with a mix of
tier-1 and small stub ASes, and both customer/provider and peering
relationships" (Section 7.1). :func:`tiered_as_topology` builds such a mix
deterministically.
"""

import random

from repro.apps.bgp import BgpDaemon, CUSTOMER, PEER, PROVIDER


def tiered_as_topology(n_tier1=3, n_mid=4, n_stub=8, seed=0,
                       originated_by_stubs=True):
    """Build daemons for a three-tier AS hierarchy.

    Tier-1 ASes form a full peering mesh; each mid-tier AS buys transit
    from two tier-1s; each stub buys transit from one or two mid-tier ASes.
    Stubs originate one prefix each (the update workload re-announces
    them). Returns (daemons, prefixes).
    """
    rng = random.Random(seed)
    tier1 = [f"t1-{i}" for i in range(n_tier1)]
    mid = [f"m-{i}" for i in range(n_mid)]
    stub = [f"s-{i}" for i in range(n_stub)]
    neighbors = {asn: {} for asn in tier1 + mid + stub}
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            neighbors[a][b] = PEER
            neighbors[b][a] = PEER
    for i, m in enumerate(mid):
        providers = rng.sample(tier1, min(2, len(tier1)))
        for p in providers:
            neighbors[m][p] = PROVIDER
            neighbors[p][m] = CUSTOMER
    for i, s in enumerate(stub):
        providers = rng.sample(mid, min(2, len(mid)))
        for p in providers:
            neighbors[s][p] = PROVIDER
            neighbors[p][s] = CUSTOMER
    prefixes = {}
    daemons = []
    for asn in tier1 + mid + stub:
        originated = []
        if originated_by_stubs and asn.startswith("s-"):
            prefix = f"10.{len(prefixes)}.0.0/16"
            prefixes[asn] = prefix
            originated = [prefix]
        daemons.append(BgpDaemon(asn, neighbors[asn], originated=originated))
    return daemons, prefixes


def ring_edges(names):
    """Edges of a simple ring over *names*."""
    return [(names[i], names[(i + 1) % len(names)])
            for i in range(len(names))]


def random_graph_edges(names, degree=3, seed=0):
    """A connected random graph: a ring plus random chords."""
    rng = random.Random(seed)
    edges = set(ring_edges(names))
    target = max(0, degree - 2) * len(names) // 2
    attempts = 0
    while len(edges) < len(names) + target and attempts < 50 * len(names):
        attempts += 1
        a, b = rng.sample(names, 2)
        if (a, b) not in edges and (b, a) not in edges:
            edges.add((a, b))
    return sorted(edges)
