"""Synthetic RouteViews-style BGP update traces.

The paper injects ~15,000 updates from a RouteViews trace over 15 minutes
(Section 7.1) — roughly 1,350 route changes per minute. We generate a
seeded stream of announce/withdraw events with Zipf-skewed prefix
popularity (a small number of unstable prefixes produce most updates, as in
real BGP), alternating announce/withdraw per prefix so the stream is always
consistent (never withdrawing a route that is not currently announced).
"""

import random


class UpdateEvent:
    """One trace event: announce or withdraw of *prefix* at the origin."""

    __slots__ = ("kind", "prefix")

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"

    def __init__(self, kind, prefix):
        self.kind = kind
        self.prefix = prefix

    def __repr__(self):
        return f"UpdateEvent({self.kind}, {self.prefix})"


class RouteViewsTrace:
    """A deterministic synthetic update stream."""

    def __init__(self, n_updates=200, n_prefixes=40, skew=1.2, seed=0):
        self.n_updates = n_updates
        self.n_prefixes = n_prefixes
        self.skew = skew
        self.seed = seed

    def prefixes(self):
        return [f"{10 + i // 256}.{i % 256}.0.0/16"
                for i in range(self.n_prefixes)]

    def events(self):
        """Yield UpdateEvents; every withdraw follows an announce of the
        same prefix, and the stream starts by announcing each prefix."""
        rng = random.Random(self.seed)
        prefixes = self.prefixes()
        weights = [1.0 / ((rank + 1) ** self.skew)
                   for rank in range(len(prefixes))]
        announced = set()
        produced = 0
        # Initial table: announce everything once (like a BGP session
        # coming up and transferring the full RIB).
        for prefix in prefixes:
            if produced >= self.n_updates:
                return
            announced.add(prefix)
            produced += 1
            yield UpdateEvent(UpdateEvent.ANNOUNCE, prefix)
        while produced < self.n_updates:
            prefix = rng.choices(prefixes, weights=weights, k=1)[0]
            if prefix in announced:
                announced.discard(prefix)
                kind = UpdateEvent.WITHDRAW
            else:
                announced.add(prefix)
                kind = UpdateEvent.ANNOUNCE
            produced += 1
            yield UpdateEvent(kind, prefix)
