"""repro — a reproduction of "Secure Network Provenance" (SOSP 2011).

SNP lets the operator of a distributed system ask *why* the system is in a
given state — and get answers that remain trustworthy even when an
adversary controls an arbitrary subset of the nodes. This package
implements the SNooPy system from the paper: a tamper-evident graph
recorder, deterministic-replay microqueries, and a macroquery processor
over a provenance graph with black/red/yellow trust colors, plus the three
applications the paper evaluates (BGP behind a proxy, a declarative Chord,
and MapReduce with reported provenance).

Start with :mod:`repro.core` for the public API, or run
``examples/quickstart.py``.
"""

from repro.core import (
    Tup, Msg, Ack, Der, Und, Snd, StateMachine, PLUS, MINUS,
    Var, Expr, Atom, Rule, AggregateRule, MaybeRule, choice_tuple,
    Program, DatalogApp,
    ProvenanceGraph, GraphConstructor, Event, Vertex, Color,
    Deployment, SNooPyNode, MicroQuerier, QueryProcessor, QueryResult,
)

__version__ = "1.0.0"

__all__ = [
    "Tup", "Msg", "Ack", "Der", "Und", "Snd", "StateMachine",
    "PLUS", "MINUS",
    "Var", "Expr", "Atom", "Rule", "AggregateRule", "MaybeRule",
    "choice_tuple", "Program", "DatalogApp",
    "ProvenanceGraph", "GraphConstructor", "Event", "Vertex", "Color",
    "Deployment", "SNooPyNode", "MicroQuerier", "QueryProcessor",
    "QueryResult",
    "__version__",
]
