"""Shared fixtures.

Key sizes are tiny (256-bit RSA) and networks small so the full suite runs
in minutes; the crypto/scale parameters are exercised at realistic values
in the benchmarks instead.
"""

import pytest

from repro.snp import Deployment, QueryProcessor
from repro.apps.mincost import build_paper_network


@pytest.fixture
def deployment():
    return Deployment(seed=1234, key_bits=256)


@pytest.fixture
def mincost_net():
    dep = Deployment(seed=42, key_bits=256)
    nodes = build_paper_network(dep)
    dep.run()
    return dep, nodes


@pytest.fixture
def mincost_query(mincost_net):
    dep, nodes = mincost_net
    return dep, nodes, QueryProcessor(dep)
