"""The shared view plane survives interleaved refresh/GC (hypothesis).

A standing auditor refreshes its views while the deployment keeps
running, checkpointing, and garbage-collecting under it. Whatever the
interleaving, every executor must tell the same story: serial ≡ wire ≡
thread builds are bit-identical in view statuses, query colors,
verdicts and merged counters after the whole schedule — the refresh
delta shipping, evidence compaction (``compact_evidence`` runs at every
batch end) and GC-floor invalidation must not leak executor-specific
state into any of them. A fixed-schedule run pays for a real resident
process pool (slow marker) to pin the same equivalence for the PR 6
worker-resident cache, whose entries GC floors and refreshes invalidate
mid-schedule.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor

#: Fresh links the random phases may insert (absent from the paper
#: topology, so inserts are always new tuples).
EXTRA_LINKS = (("a", "x"), ("b", "y"), ("c", "w"), ("d", "v"), ("e", "u"))


@st.composite
def schedules(draw):
    seed = draw(st.integers(0, 10_000))
    phases = []
    for _ in range(draw(st.integers(1, 3))):
        phases.append({
            "ops": draw(st.lists(
                st.tuples(st.sampled_from(range(len(EXTRA_LINKS))),
                          st.integers(1, 9)),
                min_size=0, max_size=2, unique_by=lambda op: op[0],
            )),
            "checkpoint": draw(st.booleans()),
            "gc": draw(st.booleans()),
            "refresh": draw(st.booleans()),
        })
    # Make the schedule bite: something must checkpoint, something must
    # refresh — otherwise GC has no floor and views have no deltas.
    phases[0]["checkpoint"] = True
    phases[-1]["refresh"] = True
    return {"seed": seed, "phases": phases}


def _fingerprint(result):
    return sorted((str(v.key()), v.color) for v in result.graph.vertices())


def _run_schedule(schedule, executor):
    dep = Deployment(seed=schedule["seed"], key_bits=256)
    nodes = build_paper_network(dep)
    dep.run()
    with QueryProcessor(dep, executor=executor) as qp:
        dep.register_querier(qp)
        try:
            qp.prefetch()
            for phase in schedule["phases"]:
                for which, k in phase["ops"]:
                    x, y = EXTRA_LINKS[which]
                    nodes[x].insert(link(x, y, k))
                    dep.run()
                if phase["checkpoint"]:
                    dep.checkpoint_all()
                if phase["gc"]:
                    dep.run_gc(checkpoint=False)
                if phase["refresh"]:
                    qp.refresh()
            result = qp.why(best_cost("c", "d", 5))
            return {
                "colors": _fingerprint(result),
                "faulty": result.faulty_nodes(),
                "suspect": result.suspect_nodes(),
                "views": {str(n): (v.status, v.head_index, v.base_index)
                          for n, v in qp.mq._views.items()},
                "counters": qp.mq.stats.counters(),
                "evidence": len(qp.mq.evidence),
            }
        finally:
            dep.unregister_querier(qp)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(schedules())
def test_serial_wire_thread_identical_under_refresh_gc(schedule):
    serial = _run_schedule(schedule, None)
    assert _run_schedule(schedule, "wire") == serial, \
        f"wire diverged from serial on {schedule}"
    assert _run_schedule(schedule, "thread:2") == serial, \
        f"thread diverged from serial on {schedule}"


#: One adversarial-by-construction interleaving: every phase mutates,
#: GC runs twice (the second past a refreshed floor, so it truncates),
#: and refreshes land both before and after truncation.
FIXED_SCHEDULE = {
    "seed": 4171,
    "phases": [
        {"ops": [(0, 3)], "checkpoint": True, "gc": False, "refresh": True},
        {"ops": [(1, 5)], "checkpoint": False, "gc": True, "refresh": True},
        {"ops": [(2, 2), (3, 7)], "checkpoint": True, "gc": True,
         "refresh": True},
    ],
}


@pytest.mark.slow
def test_resident_process_identical_under_refresh_gc():
    serial = _run_schedule(FIXED_SCHEDULE, None)
    assert _run_schedule(FIXED_SCHEDULE, "process:2") == serial
