"""ndlint property suite: the analyzer versus the engines.

Three angles, all randomized:

* **Clean programs run identically.** Random *textual* programs that the
  analyzer passes clean must execute through the full pipeline (parse →
  analyze → gate → plan) with the indexed engine observationally equal
  to the naive reference — the gate must never admit a program the
  engines disagree on, and the SIPS annotations it feeds the planner
  must not change semantics.
* **Mutations are caught precisely.** Breaking a known-clean program in
  a specific way must produce the matching diagnostic code (and gate
  refusal for error severities) — not just "some" complaint.
* **SIPS schedules are sound by construction.** For random rules, every
  schedule probes each body atom exactly once, fires each declared guard
  exactly once, and has no binding-order violations.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Atom, DatalogApp, Guard, NaiveDatalogApp, ProgramAnalysisError, Rule,
    Var,
)
from repro.datalog.analysis import ERROR, rule_sips, sip_violations
from repro.datalog.parser import parse_program
from repro.model import Der, Snd, Tup, Und

NODES = ("n", "m")


# ----------------------------------------------- random textual programs


@st.composite
def program_texts(draw):
    """Analyzer-clean-by-construction program text with declarations."""
    lines = ["input e/2.", "input f/3."]
    heads = ["h", "agg"]
    guard = ""
    if draw(st.booleans()):
        guard = f", B <= {draw(st.integers(0, 3))}"
    if draw(st.booleans()):
        guard += ", A != B"
    lines.append(f"J: h(@L, A, B) :- e(@L, A), f(@L, A, B){guard}.")
    if draw(st.booleans()):
        lines.append("SJ: h2(@L, A, C) :- f(@L, A, B), f(@L, B, C).")
        heads.append("h2")
    if draw(st.booleans()):
        lines.append("CH: h3(@L, B) :- h(@L, A, B), e(@L, A).")
        heads.append("h3")
    if draw(st.booleans()):
        lines.append("P: push(@'m', A, B) :- f(@L, A, B).")
        heads.append("push")
    func = draw(st.sampled_from(["min", "max", "sum", "count"]))
    lines.append(f"AG: agg(@L, A, {func}<B>) :- f(@L, A, B).")
    for head in heads:
        lines.append(f"output {head}.")
    return "\n".join(lines)


def base_tuples():
    locs = st.sampled_from(NODES)
    small = st.integers(0, 2)
    return st.one_of(
        st.builds(lambda l, a: Tup("e", l, a), locs, small),
        st.builds(lambda l, a, b: Tup("f", l, a, b),
                  locs, small, st.integers(0, 3)),
    )


events = st.lists(
    st.tuples(st.sampled_from(["ins", "del"]),
              st.sampled_from(NODES), base_tuples()),
    min_size=1, max_size=20,
)


def _observe(out):
    if isinstance(out, Der):
        return ("der", repr(out.tup), out.rule,
                tuple(repr(s) for s in out.support))
    if isinstance(out, Und):
        return ("und", repr(out.tup), out.rule,
                tuple(repr(s) for s in out.support))
    if isinstance(out, Snd):
        m = out.msg
        return ("snd", m.polarity, repr(m.tup), m.src, m.dst, m.seq)
    return ("other", repr(out))


def _drive(app_cls, program, ops):
    apps = {node: app_cls(node, program) for node in NODES}
    trace = []
    queue = []

    def absorb(outputs):
        for out in outputs:
            trace.append(_observe(out))
            if isinstance(out, Snd):
                queue.append(out.msg)
        while queue:
            msg = queue.pop(0)
            for out in apps[msg.dst].handle_receive(msg, 0.0):
                trace.append(_observe(out))
                if isinstance(out, Snd):
                    queue.append(out.msg)

    for index, (kind, node, tup) in enumerate(ops):
        t = float(index)
        if kind == "ins":
            absorb(apps[node].handle_insert(tup, t))
        else:
            absorb(apps[node].handle_delete(tup, t))

    state = {
        name: [(repr(t), at) for t, at in apps[name].extant_tuples()]
        for name in NODES
    }
    return trace, state


class TestCleanProgramsRunIdentically:
    @given(program_texts(), events)
    @settings(max_examples=60, deadline=None)
    def test_parse_gate_plan_pipeline_agrees_with_naive(self, text, ops):
        program = parse_program(text)        # check=True: the gate runs
        analysis = program.analyze()
        assert analysis.ok
        assert analysis.sips is not None
        indexed = _drive(DatalogApp, program, ops)
        naive = _drive(NaiveDatalogApp, program, ops)
        assert indexed[0] == naive[0]
        assert indexed[1] == naive[1]


# ------------------------------------------------------------- mutations


CLEAN_BASE = "\n".join([
    "input e/2.",
    "input f/3.",
    "output h.",
    "output agg.",
    "J: h(@L, A, B) :- e(@L, A), f(@L, A, B), B <= 2.",
    "AG: agg(@L, A, min<B>) :- f(@L, A, B).",
])

#: (label, [(find, replace)] text edits + appended lines, expected code).
MUTATIONS = [
    ("unbind_head_var",
     [("h(@L, A, B)", "h(@L, A, Z)")], [], "ND101"),
    ("unbind_guard_var",
     [("B <= 2", "Z <= 2")], [], "ND102"),
    ("unbind_expr_var",
     [("h(@L, A, B)", "h(@L, A, B+Z)")], [], "ND103"),
    ("grow_body_arity",
     [("e(@L, A), f", "e(@L, A, A), f")], [], "ND201"),
    ("shrink_declared_arity",
     [("input f/3.", "input f/9.")], [], "ND201"),
    ("conflict_column_types",
     [],
     ["T1: t1(@L, A) :- f(@L, A, 0), f(@L, A, 0).",
      "T2: t2(@L, A) :- f(@L, A, 'x'), f(@L, A, 'x')."],
     "ND202"),
    ("close_sum_cycle",
     [("min<B>", "sum<B>")],
     ["RC: f(@L, A, B) :- agg(@L, A, B)."],
     "ND301"),
    ("drop_input_declaration",
     [("input f/3.", "")], [], "ND504"),
    ("declare_unused_input",
     [], ["input zzz/1."], "ND505"),
]


class TestMutationsCaughtPrecisely:
    def test_base_really_is_clean(self):
        assert parse_program(CLEAN_BASE).analyze().ok

    @given(st.sampled_from(MUTATIONS))
    @settings(max_examples=len(MUTATIONS) * 3, deadline=None)
    def test_mutation_yields_its_code(self, mutation):
        label, edits, appends, code = mutation
        text = CLEAN_BASE
        for find, replace in edits:
            assert find in text, f"{label}: stale mutation"
            text = text.replace(find, replace)
        text = "\n".join([text] + list(appends))
        analysis = parse_program(text, check=False).analyze()
        hits = analysis.by_code(code)
        assert hits, (
            f"{label}: wanted {code}, got "
            f"{[d.code for d in analysis.diagnostics]}"
        )
        if any(d.severity == ERROR for d in hits):
            try:
                parse_program(text)
            except ProgramAnalysisError as exc:
                assert any(d.code == code for d in exc.diagnostics)
            else:
                raise AssertionError(f"{label}: gate admitted {code}")

    @given(st.sampled_from(MUTATIONS))
    @settings(max_examples=len(MUTATIONS), deadline=None)
    def test_analysis_is_deterministic(self, mutation):
        label, edits, appends, _code = mutation
        text = CLEAN_BASE
        for find, replace in edits:
            text = text.replace(find, replace)
        text = "\n".join([text] + list(appends))
        program = parse_program(text, check=False)
        first = [
            (d.code, d.severity, d.message) for d in
            program.analyze().diagnostics
        ]
        again = [
            (d.code, d.severity, d.message) for d in
            parse_program(text, check=False).analyze().diagnostics
        ]
        assert first == again


# ------------------------------------------------------- SIPS invariants


@st.composite
def random_rules(draw):
    pool = [Var(name) for name in ("L", "A", "B", "C", "D")]
    loc = pool[0]
    n_atoms = draw(st.integers(1, 3))
    body = []
    bound = [loc]
    for index in range(n_atoms):
        width = draw(st.integers(1, 3))
        terms = [draw(st.sampled_from(pool[1:])) for _ in range(width)]
        body.append(Atom(f"r{draw(st.integers(0, n_atoms))}", loc, *terms))
        bound.extend(term for term in terms)
    guards = []
    for _ in range(draw(st.integers(0, 2))):
        subset = draw(st.lists(st.sampled_from(bound), min_size=1,
                               max_size=2, unique_by=lambda v: v.name))
        guards.append(Guard(lambda b: True, vars=tuple(subset),
                            label="g"))
    head_terms = [draw(st.sampled_from(bound)) for _ in
                  range(draw(st.integers(1, 2)))]
    return Rule("R", Atom("h", loc, *head_terms), body, guards=guards)


class TestSipsInvariants:
    @given(random_rules())
    @settings(max_examples=120, deadline=None)
    def test_schedules_cover_everything_exactly_once(self, rule):
        for join in rule_sips(rule):
            probed = [join.trigger_pos] + [s.body_pos for s in join.steps]
            assert sorted(probed) == list(range(len(rule.body)))
            fired = list(join.pre_guards)
            for step in join.steps:
                fired.extend(step.guards)
            assert sorted(fired) == list(range(len(rule.guards)))
            assert sip_violations(rule, join) == []

    @given(random_rules())
    @settings(max_examples=120, deadline=None)
    def test_bound_sets_grow_monotonically(self, rule):
        for join in rule_sips(rule):
            for step in join.steps:
                assert step.bound_before <= step.bound_after
