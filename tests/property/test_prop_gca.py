"""Property-based tests of the GCA theorems over random executions.

Hypothesis generates random (but protocol-respecting) base-tuple schedules
for a small MinCost-like network; the deployment executes them with full
commitment-protocol machinery, and we check the Appendix B theorems on the
resulting global history:

* Theorem 1 — prefixes of the history yield subgraphs;
* Theorem 2 — per-node construction equals projection;
* Theorem 3 — no red vertices in a correct execution;
* determinism of replay — running the GCA twice yields identical graphs.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.mincost import link, mincost_factory
from repro.provgraph.gca import GraphConstructor
from repro.snp import Deployment
from repro.snp.replay import log_entries_to_history

NODES = ("a", "b", "c")
EDGES = [("a", "b"), ("b", "c"), ("a", "c")]

schedules = st.lists(
    st.tuples(
        st.sampled_from(["ins", "del"]),
        st.sampled_from(EDGES),
        st.integers(min_value=1, max_value=9),
    ),
    min_size=1, max_size=12,
)


def _execute(schedule, seed=0):
    dep = Deployment(seed=seed, key_bits=256)
    factory = mincost_factory()
    for name in NODES:
        dep.add_node(name, factory)
    live = {}
    for kind, (x, y), k in schedule:
        if kind == "ins":
            if (x, y) in live:
                continue  # no double-insert of the same base tuple
            live[(x, y)] = k
            dep.node(x).insert(link(x, y, k))
        else:
            if (x, y) not in live:
                continue
            k_live = live.pop((x, y))
            dep.node(x).delete(link(x, y, k_live))
        dep.run()
    dep.run()
    return dep


def _history(dep):
    events = []
    for node in dep.nodes.values():
        events.extend(
            log_entries_to_history(node.node_id, node.log.entries))
    events.sort(key=lambda e: (e.t, str(e.node)))
    return events


def _gca(dep):
    return GraphConstructor(lambda n: dep.app_factories[n](n),
                            t_prop=dep.effective_t_prop())


class TestGcaTheoremsRandomized:
    @given(schedules)
    @settings(max_examples=15, deadline=None)
    def test_no_red_in_correct_execution(self, schedule):
        dep = _execute(schedule)
        graph = _gca(dep).run(_history(dep))
        assert graph.red_vertices() == []

    @given(schedules)
    @settings(max_examples=10, deadline=None)
    def test_prefix_yields_subgraph(self, schedule):
        dep = _execute(schedule)
        events = _history(dep)
        full = _gca(dep).run(events)
        for cut in (len(events) // 3, 2 * len(events) // 3):
            partial = _gca(dep).run(events[:cut])
            assert partial.is_subgraph_of(full)

    @given(schedules)
    @settings(max_examples=10, deadline=None)
    def test_compositionality(self, schedule):
        dep = _execute(schedule)
        events = _history(dep)
        full = _gca(dep).run(events)
        for name in NODES:
            local = _gca(dep).run([e for e in events if e.node == name])
            mine = {v.key() for v in local.vertices() if v.node == name}
            projected = {v.key() for v in full.project(name).vertices()
                         if v.node == name}
            assert mine == projected

    @given(schedules)
    @settings(max_examples=10, deadline=None)
    def test_gca_deterministic(self, schedule):
        dep = _execute(schedule)
        events = _history(dep)
        g1 = _gca(dep).run(events)
        g2 = _gca(dep).run(events)
        assert {v.key(): v.color for v in g1.vertices()} == \
            {v.key(): v.color for v in g2.vertices()}
        assert set(g1.edges()) == set(g2.edges())

    @given(schedules, st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_replay_matches_live_state(self, schedule, which):
        """The replayed machine's final tuple set equals the live app's —
        the determinism assumption SNooPy rests on."""
        dep = _execute(schedule)
        name = NODES[which % len(NODES)]
        node = dep.node(name)
        gca = _gca(dep)
        gca.run(log_entries_to_history(name, node.log.entries))
        replayed = gca.machines.get(name)
        if replayed is None:
            return  # node never saw an event
        for relation in ("link", "cost", "bestCost"):
            assert set(replayed.tuples_of(relation)) == \
                set(node.app.tuples_of(relation))
