"""Indexed plan execution ≡ naive scan evaluation.

The compiled-plan engine (:class:`DatalogApp`) must be observationally
identical to the scan-based reference (:class:`NaiveDatalogApp`): same
tuple sets, same Der/Und sequences (including provenance supports and
order), same messages — on *randomized programs* (joins, self-joins,
remote heads, guarded rules, every aggregate function, maybe rules) and
*randomized event schedules* spread over two message-connected nodes.
This is the safety net for every shortcut the optimized engine takes:
index lookups, greedy body reordering, early guard firing, the aggregate
dirty-marking skips.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Var, Atom, Guard, Rule, AggregateRule, MaybeRule, Program,
    DatalogApp, NaiveDatalogApp, choice_tuple,
)
from repro.model import Der, Snd, Tup, Und

L, A, B, C, K = Var("L"), Var("A"), Var("B"), Var("C"), Var("K")

NODES = ("n", "m")


@st.composite
def programs(draw):
    rules = []
    threshold = draw(st.integers(0, 3))
    join_guards = []
    if draw(st.booleans()):
        join_guards.append(Guard(
            lambda b, t=threshold: b["B"] <= t, vars=(B,), label="B<=t"
        ))
    if draw(st.booleans()):
        # Opaque callable: must be scheduled after full binding.
        join_guards.append(lambda b: b["A"] != b["B"])
    rules.append(Rule(
        "J", Atom("h1", L, A, B),
        [Atom("e", L, A), Atom("f", L, A, B)],
        guards=join_guards,
    ))
    if draw(st.booleans()):
        rules.append(Rule(
            "SJ", Atom("h2", L, A, C),
            [Atom("f", L, A, B), Atom("f", L, B, C)],
        ))
    if draw(st.booleans()):
        rules.append(Rule(
            "P", Atom("push", "m", A, B),
            [Atom("f", L, A, B)],
        ))
    if draw(st.booleans()):
        rules.append(Rule(
            "CH", Atom("h3", L, B),
            [Atom("h1", L, A, B), Atom("e", L, A)],
        ))
    func = draw(st.sampled_from(["min", "max", "sum", "count"]))
    agg_guards = []
    if draw(st.booleans()):
        agg_guards.append(Guard(
            lambda b: b["B"] >= 1, vars=(B,), label="B>=1"
        ))
    key = None
    if func in ("min", "max") and draw(st.booleans()):
        key = lambda v: (v % 2, v)  # noqa: E731 — deterministic tie shape
    rules.append(AggregateRule(
        "AG", Atom("agg", L, A, B),
        [Atom("f", L, A, B)],
        agg_var=B, func=func, guards=agg_guards, key=key,
    ))
    if draw(st.booleans()):
        rules.append(MaybeRule(
            "MB", Atom("sel", L, A), [Atom("e", L, A)],
        ))
    return Program(rules)


def base_tuples():
    locs = st.sampled_from(NODES)
    small = st.integers(0, 2)
    return st.one_of(
        st.builds(lambda l, a: Tup("e", l, a), locs, small),
        st.builds(lambda l, a, b: Tup("f", l, a, b),
                  locs, small, st.integers(0, 3)),
        st.builds(lambda l, a: choice_tuple("MB", l, a), locs, small),
    )


events = st.lists(
    st.tuples(st.sampled_from(["ins", "del"]),
              st.sampled_from(NODES), base_tuples()),
    min_size=1, max_size=25,
)


def _observe(out):
    """Project an output onto its full observable content (repr alone
    omits Der/Und supports)."""
    if isinstance(out, Der):
        return ("der", repr(out.tup), out.rule,
                tuple(repr(s) for s in out.support), repr(out.replaces))
    if isinstance(out, Und):
        return ("und", repr(out.tup), out.rule,
                tuple(repr(s) for s in out.support))
    if isinstance(out, Snd):
        m = out.msg
        return ("snd", m.polarity, repr(m.tup), m.src, m.dst, m.seq)
    return ("other", repr(out))


def _drive(app_cls, program, ops, restore_at=None):
    """Run *ops* through a two-node mesh; returns (trace, final_state).

    When *restore_at* is an index, the apps are snapshot+restored fresh
    right before that event — the result must be unaffected.
    """
    apps = {node: app_cls(node, program) for node in NODES}
    trace = []
    queue = []

    def absorb(outputs):
        for out in outputs:
            trace.append(_observe(out))
            if isinstance(out, Snd):
                queue.append(out.msg)
        while queue:
            msg = queue.pop(0)
            for out in apps[msg.dst].handle_receive(msg, 0.0):
                trace.append(_observe(out))
                if isinstance(out, Snd):
                    queue.append(out.msg)

    for index, (kind, node, tup) in enumerate(ops):
        if restore_at == index:
            for name in NODES:
                snap = apps[name].snapshot()
                fresh = app_cls(name, program)
                fresh.restore(snap)
                apps[name] = fresh
        t = float(index)
        if kind == "ins":
            absorb(apps[node].handle_insert(tup, t))
        else:
            absorb(apps[node].handle_delete(tup, t))

    state = {}
    for name in NODES:
        app = apps[name]
        state[name] = {
            "local": [(repr(t), at) for t, at in app.extant_tuples()],
            "beliefs": [(repr(t), peer, at)
                        for t, peer, at in app.believed_tuples()],
            "derivations": sorted(
                (repr(t), sorted(repr(i.key()) for i in
                                 app.store.derivation_instances(t)))
                for t, _at in app.extant_tuples()
            ),
        }
    return trace, state


class TestIndexedMatchesNaive:
    @given(programs(), events)
    @settings(max_examples=120, deadline=None)
    def test_traces_and_state_identical(self, program, ops):
        indexed = _drive(DatalogApp, program, ops)
        naive = _drive(NaiveDatalogApp, program, ops)
        assert indexed[0] == naive[0]   # Der/Und/Snd sequence + supports
        assert indexed[1] == naive[1]   # tuple sets, beliefs, derivations

    @given(programs(), events, st.integers(0, 24))
    @settings(max_examples=60, deadline=None)
    def test_snapshot_restore_preserves_equivalence(self, program, ops, cut):
        cut = min(cut, len(ops) - 1)
        resumed = _drive(DatalogApp, program, ops, restore_at=cut)
        naive = _drive(NaiveDatalogApp, program, ops)
        assert resumed[0] == naive[0]
        assert resumed[1] == naive[1]
