"""Checkpoint GC never corrupts audit verdicts (hypothesis).

For randomized runs (link activity, optional fabricated evidence),
randomized GC floors (checkpoint placement × auditor refresh schedule
drive what the retention handshake may truncate), and randomized query
schedules, truncation must only ever *withhold* judgment. Per vertex,
with ``before`` the verdict of a cold full-log querier and ``after``
that of a cold post-GC querier (both through ``resolve``):

* truncation never *creates* a conviction: ``after`` is red only if
  ``before`` was red;
* green inside retained coverage stays green: black flips to yellow
  only for vertices below the host's checkpoint base (evidence gone),
  never to red;
* yellow stays yellow — a post-GC querier knows strictly less;
* red below the base fades to honest yellow — never to a silent black;
* red inside retained coverage stays red — *unless* the host's
  divergence source (its earliest red) itself fell below the floor: a
  checkpoint commits the node's true state, so the retained suffix may
  legitimately re-resolve from it (the replay-cascade reds downstream
  of a truncated divergence are over-approximations, and the true
  fault, being below the base, resolves yellow — never green);
* serial ≡ thread ≡ wire (the process boundary's serialization
  contract) builds of the post-GC deployment are bit-identical in
  colors, statuses and merged counters.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.mincost import (
    build_paper_network, cost, link,
)
from repro.provgraph.graph import _clone_vertex
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import FabricatorNode
from repro.snp.microquery import OK
from repro.provgraph.vertices import Color

#: Fresh links the random phases may insert (absent from the paper
#: topology, so inserts are always new tuples).
EXTRA_LINKS = (("a", "x"), ("b", "y"), ("c", "w"), ("d", "v"), ("e", "u"))


@st.composite
def schedules(draw):
    seed = draw(st.integers(0, 10_000))
    phases = []
    for _ in range(draw(st.integers(1, 3))):
        phases.append({
            "ops": draw(st.lists(
                st.tuples(st.sampled_from(range(len(EXTRA_LINKS))),
                          st.integers(1, 9)),
                min_size=0, max_size=2, unique_by=lambda op: op[0],
            )),
            "checkpoint": draw(st.booleans()),
            "refresh": draw(st.booleans()),
            "fabricate": draw(st.booleans()),
        })
    # At least one eligible floor: some phase must checkpoint and some
    # later-or-same phase must let the auditor refresh past it.
    phases[0]["checkpoint"] = True
    phases[-1]["refresh"] = True
    audited = draw(st.lists(st.sampled_from("abcde"), min_size=1,
                            max_size=3, unique=True))
    return {"seed": seed, "phases": phases, "audited": audited}


def _run_schedule(schedule):
    dep = Deployment(seed=schedule["seed"], key_bits=256)
    nodes = build_paper_network(dep, node_overrides={"b": FabricatorNode})
    dep.run()
    auditor = QueryProcessor(dep)
    dep.register_querier(auditor)
    auditor.prefetch()
    fabricated = 0
    for phase in schedule["phases"]:
        for which, k in phase["ops"]:
            x, y = EXTRA_LINKS[which]
            nodes[x].insert(link(x, y, k))
            dep.run()
        if phase["fabricate"]:
            fabricated += 1
            nodes["b"].fabricate("+", cost("c", "z", "b", fabricated), "c")
            dep.run()
        if phase["checkpoint"]:
            dep.checkpoint_all()
        if phase["refresh"]:
            auditor.refresh()
    return dep, nodes, auditor


def _pre_gc_colors(dep, audited):
    """Per-vertex verdicts from a cold, full-log querier (the oracle the
    post-GC views are held against), plus each host's *divergence
    source*: the earliest red vertex hosted on it. Verdicts come
    through ``resolve`` — the same mechanism the post-GC side uses — so
    cross-host stub vertices (yellow placeholders in a neighbor's
    partition) are judged by their host's view on both sides of the
    comparison."""
    with QueryProcessor(dep) as qp:
        views = qp.mq.build_views(sorted(dep.nodes, key=str))
        first_red = {}
        for name, view in views.items():
            if view.status != OK:
                continue
            for vertex in view.graph.vertices():
                if vertex.color == Color.RED \
                        and str(vertex.node) == str(name):
                    current = first_red.get(name)
                    if current is None or vertex.t < current:
                        first_red[name] = vertex.t
        colors = {}
        for name in audited:
            view = views[name]
            if view.status != OK:
                continue
            for vertex in view.graph.vertices():
                _resolved, color = qp.mq.resolve(_clone_vertex(vertex))
                colors[(name, vertex.key())] = (vertex, color)
        return colors, first_red


def _post_gc_outcome(dep, audited, executor):
    with QueryProcessor(dep, executor=executor) as qp:
        views = qp.mq.build_views(sorted(dep.nodes, key=str))
        colors = {}
        for name in sorted(audited, key=str):
            view = views[name]
            if view.status != OK:
                continue
            for vertex in view.graph.vertices():
                colors[(str(name), str(vertex.key()))] = vertex.color
        return {
            "statuses": {str(n): v.status for n, v in views.items()},
            "colors": colors,
            "counters": qp.mq.stats.counters(),
        }


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(schedules())
def test_truncation_only_withholds_judgment(schedule):
    dep, _nodes, auditor = _run_schedule(schedule)
    audited = schedule["audited"]
    before, first_red = _pre_gc_colors(dep, audited)
    dep.run_gc(checkpoint=False)
    floors = {name: dep.advertised_floor_of(name) for name in dep.nodes}

    with QueryProcessor(dep) as after:
        for (name, _key), (vertex, color_before) in before.items():
            probe = _clone_vertex(vertex)
            _resolved, color_after = after.mq.resolve(probe)
            detail = (
                f"{vertex.describe()} on {name!r}: {color_before} → "
                f"{color_after} (floors={floors}, schedule={schedule})"
            )
            if color_before != Color.RED:
                assert color_after != Color.RED, \
                    f"truncation created a conviction: {detail}"
            host_view = after.mq.view_of(vertex.node)
            if host_view.status != OK:
                continue  # host verdicts covered by the red rule above
            below_base = vertex.t is not None \
                and vertex.t < host_view.base_time
            if color_before == Color.YELLOW:
                assert color_after == Color.YELLOW, (
                    f"a post-GC querier knows strictly less: {detail}"
                )
            elif color_before == Color.BLACK:
                if below_base:
                    assert color_after in (Color.BLACK, Color.YELLOW), \
                        f"black may only fade to yellow: {detail}"
                else:
                    assert color_after == Color.BLACK, (
                        "green inside retained coverage must stay "
                        f"green: {detail}"
                    )
            elif color_before == Color.RED:
                if below_base:
                    assert color_after == Color.YELLOW, (
                        "a red below the floor must fade to honest "
                        f"yellow, never a silent green: {detail}"
                    )
                else:
                    source_t = first_red.get(vertex.node)
                    source_truncated = source_t is not None \
                        and source_t < host_view.base_time
                    if not source_truncated:
                        assert color_after == Color.RED, (
                            "a red whose divergence source survives "
                            f"truncation must reproduce: {detail}"
                        )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(schedules())
def test_serial_thread_wire_identical_post_gc(schedule):
    dep, _nodes, _auditor = _run_schedule(schedule)
    dep.run_gc(checkpoint=False)
    audited = schedule["audited"]
    serial = _post_gc_outcome(dep, audited, None)
    assert _post_gc_outcome(dep, audited, 2) == serial
    assert _post_gc_outcome(dep, audited, "wire") == serial
