"""Property-based tests of the Datalog engine's core invariants.

The security of the whole system rests on the engine being a correct,
deterministic incremental evaluator: replay regenerates the provenance
graph from it. Hypothesis drives random insert/delete/receive sequences
and checks:

* **incremental = from-scratch**: the tuple set after an arbitrary update
  sequence equals the set produced by a fresh evaluation of the surviving
  base tuples/beliefs;
* **determinism**: identical input sequences give identical output
  sequences (what deterministic replay requires);
* **der/und pairing**: every tuple's der/und outputs strictly alternate;
* **snapshot/restore transparency**.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Var, Expr, Atom, Rule, AggregateRule, Program, DatalogApp,
)
from repro.model import Der, Msg, Snd, Tup, Und, PLUS, MINUS

X, Y, Z, K = Var("X"), Var("Y"), Var("Z"), Var("K")


def _program():
    """A small but representative program: a join, a remote head, and a
    min-aggregate, over base relations e/f."""
    return Program([
        Rule("J", Atom("j", X, Y, K),
             [Atom("e", X, Y), Atom("f", X, Y, K)]),
        Rule("Fwd", Atom("fwd", Y, X, K), [Atom("j", X, Y, K)]),
        AggregateRule("Min", Atom("low", X, K), [Atom("f", X, Y, K)],
                      agg_var=K, func="min"),
    ])


base_tuples = st.one_of(
    st.tuples(st.sampled_from(["p", "q"]),
              st.integers(0, 2)).map(lambda t: Tup("e", "n", t[0], )),
    st.tuples(st.sampled_from(["p", "q"]), st.integers(0, 3)).map(
        lambda t: Tup("f", "n", t[0], t[1])),
)

operations = st.lists(
    st.tuples(st.sampled_from(["ins", "del"]), base_tuples),
    min_size=1, max_size=30,
)


def _apply(app, ops):
    outputs = []
    t = 0.0
    for kind, tup in ops:
        t += 1.0
        if kind == "ins":
            outputs.extend(app.handle_insert(tup, t))
        else:
            outputs.extend(app.handle_delete(tup, t))
    return outputs


def _surviving_base(ops):
    counts = {}
    for kind, tup in ops:
        if kind == "ins":
            counts[tup] = counts.get(tup, 0) + 1
        elif counts.get(tup, 0) > 0:
            counts[tup] -= 1
    return [tup for tup, count in counts.items() for _ in range(count)]


class TestEngineProperties:
    @given(operations)
    @settings(max_examples=100, deadline=None)
    def test_incremental_matches_from_scratch(self, ops):
        incremental = DatalogApp("n", _program())
        _apply(incremental, ops)
        scratch = DatalogApp("n", _program())
        t = 1000.0
        for tup in _surviving_base(ops):
            scratch.handle_insert(tup, t)
            t += 1.0
        for relation in ("j", "low", "fwd"):
            assert set(incremental.tuples_of(relation)) == \
                set(scratch.tuples_of(relation)), relation

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_determinism(self, ops):
        a = _apply(DatalogApp("n", _program()), ops)
        b = _apply(DatalogApp("n", _program()), ops)
        assert [repr(o) for o in a] == [repr(o) for o in b]

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_der_und_strictly_alternate(self, ops):
        outputs = _apply(DatalogApp("n", _program()), ops)
        state = {}
        for out in outputs:
            if isinstance(out, Der):
                assert state.get(out.tup) in (None, "out"), out
                state[out.tup] = "in"
            elif isinstance(out, Und):
                assert state.get(out.tup) == "in", out
                state[out.tup] = "out"

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_plus_minus_messages_alternate_per_tuple(self, ops):
        outputs = _apply(DatalogApp("n", _program()), ops)
        state = {}
        for out in outputs:
            if isinstance(out, Snd):
                tup = out.msg.tup
                if out.msg.polarity == PLUS:
                    assert state.get(tup) in (None, "-")
                    state[tup] = "+"
                else:
                    assert state.get(tup) == "+"
                    state[tup] = "-"

    @given(operations, st.integers(min_value=0, max_value=29))
    @settings(max_examples=60, deadline=None)
    def test_snapshot_restore_is_transparent(self, ops, cut):
        cut = min(cut, len(ops))
        straight = DatalogApp("n", _program())
        _apply(straight, ops)

        first = DatalogApp("n", _program())
        _apply(first, ops[:cut])
        snap = first.snapshot()
        resumed = DatalogApp("n", _program())
        resumed.restore(snap)
        t = float(cut)
        for kind, tup in ops[cut:]:
            t += 1.0
            if kind == "ins":
                resumed.handle_insert(tup, t)
            else:
                resumed.handle_delete(tup, t)
        for relation in ("e", "f", "j", "low"):
            assert set(straight.tuples_of(relation)) == \
                set(resumed.tuples_of(relation))

    @given(st.lists(st.tuples(st.sampled_from([PLUS, MINUS]),
                              st.integers(0, 2)),
                    min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_beliefs_track_notifications(self, notes):
        app = DatalogApp("n", _program())
        seq = 0
        believed = {}
        t = 0.0
        for polarity, value in notes:
            tup = Tup("f", "n", "p", value)
            t += 1.0
            msg = Msg(polarity, tup, "peer", "n", seq, t)
            seq += 1
            app.handle_receive(msg, t)
            count = believed.get(tup, 0)
            if polarity == PLUS:
                believed[tup] = count + 1
            else:
                # The store ignores a spurious −τ for a tuple it does not
                # believe (only a faulty peer produces one).
                believed[tup] = max(0, count - 1)
        for tup, count in believed.items():
            assert app.store.believed(tup) == (count > 0)
