"""Property-based tests: serialization, hash chain, Merkle trees.

These are the invariants the security argument leans on: canonical
encoding must be injective-in-practice and deterministic, the hash chain
must commit to order and content, and Merkle proofs must verify exactly
the committed leaf.
"""

from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import HashChain, content_digest
from repro.crypto.merkle import MerkleTree
from repro.model import Tup
from repro.util.serialization import canonical_bytes

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 64), max_value=2 ** 64),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCanonicalBytes:
    @given(values)
    def test_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    @given(values, values)
    def test_distinct_values_distinct_encodings(self, a, b):
        # For values that compare unequal, encodings differ (int/float
        # cross-equality like 1 == 1.0 is carved out: the encoding is
        # deliberately type-tagged).
        if a != b or type(a) is not type(b):
            if canonical_bytes(a) == canonical_bytes(b):
                assert a == b and type(a) is type(b)

    @given(st.text(max_size=10), st.text(max_size=10),
           st.lists(st.integers(), max_size=3))
    def test_tup_encoding_tracks_fields(self, rel, loc, args):
        t1 = Tup(rel, loc, *args)
        t2 = Tup(rel + "x", loc, *args)
        assert canonical_bytes(t1) != canonical_bytes(t2)


class TestHashChainProperties:
    entries = st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                  st.sampled_from(["ins", "del", "snd", "rcv", "ack"]),
                  st.text(max_size=10)),
        min_size=1, max_size=20,
    )

    @given(entries)
    def test_chain_deterministic(self, items):
        def build():
            chain = HashChain()
            for t, y, c in items:
                chain.append(t, y, content_digest((c,)))
            return chain.head()
        assert build() == build()

    @given(entries, st.integers(min_value=0, max_value=19))
    def test_any_modification_changes_head(self, items, position):
        if position >= len(items):
            position = len(items) - 1
        original = HashChain()
        for t, y, c in items:
            original.append(t, y, content_digest((c,)))
        modified = HashChain()
        for index, (t, y, c) in enumerate(items):
            payload = (c + "-tampered",) if index == position else (c,)
            modified.append(t, y, content_digest(payload))
        assert original.head() != modified.head()

    @given(entries)
    def test_prefix_hashes_stable_under_extension(self, items):
        chain = HashChain()
        prefix_hashes = []
        for t, y, c in items:
            chain.append(t, y, content_digest((c,)))
            prefix_hashes.append(chain.head())
        # Extending the chain never changes earlier hashes.
        chain.append(99.0, "ins", content_digest(("extra",)))
        for index, expected in enumerate(prefix_hashes):
            assert chain.hash_at(index + 1) == expected


class TestMerkleProperties:
    leaves = st.lists(st.tuples(st.text(max_size=8), st.integers()),
                      min_size=1, max_size=24)

    @given(leaves)
    @settings(max_examples=50)
    def test_every_leaf_has_valid_proof(self, items):
        tree = MerkleTree(items)
        for index, leaf in enumerate(items):
            assert MerkleTree.verify_proof(leaf, tree.proof(index),
                                           tree.root())

    @given(leaves, st.integers(min_value=0, max_value=23))
    @settings(max_examples=50)
    def test_proof_rejects_other_leaves(self, items, index):
        index %= len(items)
        tree = MerkleTree(items)
        proof = tree.proof(index)
        impostor = ("impostor", -1)
        if impostor != items[index]:
            assert not MerkleTree.verify_proof(impostor, proof, tree.root())

    @given(leaves)
    @settings(max_examples=50)
    def test_root_commits_to_leaf_set(self, items):
        tree = MerkleTree(items)
        extended = MerkleTree(items + [("extra", 0)])
        assert tree.root() != extended.root()
