"""Differential ≡ indexed ≡ naive under mixed insert/retract schedules.

The differential engine (:class:`DifferentialDatalogApp`) takes every
shortcut the z-set rebuild added on top of the compiled plans:
incrementally maintained aggregate-group membership, the min/max
dirty-marking skip, support-counted retraction with no snapshot-restore
anywhere on the deletion path. This suite pins all of it to the two
slower engines and to the recompute-from-scratch oracle:

* **three-way trace identity** — differential, indexed and naive produce
  bit-identical Der/Und/Snd streams (supports included, in order), tuple
  sets, beliefs, derivation instances and snapshots, on randomized
  programs (joins, guards, all four aggregate functions, maybe rules)
  and randomized mixed insert/retract schedules;
* **snapshot/restore** — a differential app restored mid-schedule (which
  rebuilds its derived membership map from the store) continues exactly
  like one that never restored;
* **scratch oracle** — after any schedule, the differential engine's
  model equals evaluating the schedule's *net base multiset* from
  scratch with no deletion ever issued
  (:func:`repro.datalog.naive.scratch_model`): retraction as weight −1
  converges to the same fixpoint as never having inserted;
* **retract-then-reinsert** — churn that nets to nothing leaves
  bit-identical snapshots and an empty delta z-set;
* **recursive min/max** — the mincost and path-vector programs (ND302 +
  ND305 diagnostics: recursion through a min aggregate whose retraction
  path re-derives from supports) stay three-way identical under link
  churn, the acceptance case for differential routing replay.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.mincost import link as mc_link, mincost_program
from repro.apps.pathvector import link as pv_link, pathvector_program
from repro.datalog import (
    Var, Atom, Guard, Rule, AggregateRule, MaybeRule, Program,
    DatalogApp, DifferentialDatalogApp, NaiveDatalogApp, choice_tuple,
)
from repro.datalog.naive import model_state, net_base_counts, scratch_model
from repro.model import Der, Snd, Tup, Und

L, A, B, C, K = Var("L"), Var("A"), Var("B"), Var("C"), Var("K")

NODES = ("n", "m")

ENGINES = (DifferentialDatalogApp, DatalogApp, NaiveDatalogApp)


@st.composite
def programs(draw):
    rules = []
    threshold = draw(st.integers(0, 3))
    join_guards = []
    if draw(st.booleans()):
        join_guards.append(Guard(
            lambda b, t=threshold: b["B"] <= t, vars=(B,), label="B<=t"
        ))
    if draw(st.booleans()):
        join_guards.append(lambda b: b["A"] != b["B"])  # opaque: full binding
    rules.append(Rule(
        "J", Atom("h1", L, A, B),
        [Atom("e", L, A), Atom("f", L, A, B)],
        guards=join_guards,
    ))
    if draw(st.booleans()):
        rules.append(Rule(
            "P", Atom("push", "m", A, B),
            [Atom("f", L, A, B)],
        ))
    func = draw(st.sampled_from(["min", "max", "sum", "count"]))
    agg_guards = []
    if draw(st.booleans()):
        agg_guards.append(Guard(
            lambda b: b["B"] >= 1, vars=(B,), label="B>=1"
        ))
    key = None
    if func in ("min", "max") and draw(st.booleans()):
        key = lambda v: (v % 2, v)  # noqa: E731 — deterministic tie shape
    rules.append(AggregateRule(
        "AG", Atom("agg", L, A, B),
        [Atom("f", L, A, B)],
        agg_var=B, func=func, guards=agg_guards, key=key,
    ))
    if draw(st.booleans()):
        # A second aggregate over the same relation: distinct rule_index,
        # same member transitions — the membership map must keep them apart.
        rules.append(AggregateRule(
            "AG2", Atom("agg2", L, B),
            [Atom("f", L, A, B)],
            agg_var=B, func="count",
        ))
    if draw(st.booleans()):
        rules.append(MaybeRule(
            "MB", Atom("sel", L, A), [Atom("e", L, A)],
        ))
    return Program(rules)


def base_tuples():
    locs = st.sampled_from(NODES)
    small = st.integers(0, 2)
    return st.one_of(
        st.builds(lambda l, a: Tup("e", l, a), locs, small),
        st.builds(lambda l, a, b: Tup("f", l, a, b),
                  locs, small, st.integers(0, 3)),
        st.builds(lambda l, a: choice_tuple("MB", l, a), locs, small),
    )


# Retract-heavy: dels as likely as inses, so schedules routinely empty
# groups, flip min/max witnesses, and re-insert what they tore down.
events = st.lists(
    st.tuples(st.sampled_from(["ins", "del"]),
              st.sampled_from(NODES), base_tuples()),
    min_size=1, max_size=25,
)


def _observe(out):
    if isinstance(out, Der):
        return ("der", repr(out.tup), out.rule,
                tuple(repr(s) for s in out.support), repr(out.replaces))
    if isinstance(out, Und):
        return ("und", repr(out.tup), out.rule,
                tuple(repr(s) for s in out.support))
    if isinstance(out, Snd):
        m = out.msg
        return ("snd", m.polarity, repr(m.tup), m.src, m.dst, m.seq)
    return ("other", repr(out))


def _drive(app_cls, program, ops, restore_at=None, nodes=NODES, t_of=float):
    """Run *ops* through a message-connected mesh; returns (trace, state,
    snapshots, counters)."""
    apps = {node: app_cls(node, program) for node in nodes}
    trace = []
    queue = []

    def absorb(outputs):
        for out in outputs:
            trace.append(_observe(out))
            if isinstance(out, Snd):
                queue.append(out.msg)
        while queue:
            msg = queue.pop(0)
            for out in apps[msg.dst].handle_receive(msg, 0.0):
                trace.append(_observe(out))
                if isinstance(out, Snd):
                    queue.append(out.msg)

    for index, (kind, node, tup) in enumerate(ops):
        if restore_at == index:
            for name in nodes:
                snap = apps[name].snapshot()
                fresh = app_cls(name, program)
                fresh.restore(snap)
                apps[name] = fresh
        t = t_of(index)
        if kind == "ins":
            absorb(apps[node].handle_insert(tup, t))
        else:
            absorb(apps[node].handle_delete(tup, t))

    state = {name: model_state(app) for name, app in apps.items()}
    snapshots = {name: app.snapshot() for name, app in apps.items()}
    counters = {
        name: (app.delta_tuples_in, app.delta_tuples_out,
               app.retractions_applied, app.support_rederivations)
        for name, app in apps.items()
    }
    return trace, state, snapshots, counters


class TestThreeWayEquivalence:
    @given(programs(), events)
    @settings(max_examples=100, deadline=None)
    def test_traces_states_snapshots_identical(self, program, ops):
        differential = _drive(DifferentialDatalogApp, program, ops)
        indexed = _drive(DatalogApp, program, ops)
        naive = _drive(NaiveDatalogApp, program, ops)
        assert differential[0] == indexed[0] == naive[0]
        assert differential[1] == indexed[1] == naive[1]
        assert differential[2] == indexed[2] == naive[2]
        # The differential and indexed engines share the whole evaluation
        # path, so even their cost counters agree exactly.
        assert differential[3] == indexed[3]

    @given(programs(), events, st.integers(0, 24))
    @settings(max_examples=60, deadline=None)
    def test_restore_rebuilds_membership(self, program, ops, cut):
        cut = min(cut, len(ops) - 1)
        resumed = _drive(DifferentialDatalogApp, program, ops,
                         restore_at=cut)
        straight = _drive(NaiveDatalogApp, program, ops)
        assert resumed[0] == straight[0]
        assert resumed[1] == straight[1]
        assert resumed[2] == straight[2]


class TestScratchOracle:
    @given(programs(), events)
    @settings(max_examples=80, deadline=None)
    def test_retraction_converges_to_scratch_fixpoint(self, program, ops):
        incremental = _drive(DifferentialDatalogApp, program, ops)
        counts = net_base_counts(
            (kind, node, tup) for kind, node, tup in ops
        )
        oracle = scratch_model(program, NODES, counts)
        assert incremental[1] == oracle


def _churn_program():
    return Program([
        Rule("J", Atom("h1", L, A, B),
             [Atom("e", L, A), Atom("f", L, A, B)]),
        AggregateRule("AG", Atom("agg", L, A, B),
                      [Atom("f", L, A, B)], agg_var=B, func="min"),
        AggregateRule("SUM", Atom("tot", L, B),
                      [Atom("f", L, A, B)], agg_var=B, func="sum"),
    ])


class TestRetractThenReinsert:
    def test_bit_identical_to_never_retracted(self):
        """A retract-then-reinsert schedule (all at one timestamp, so
        appear times cannot differ) leaves *bit-identical* snapshots to
        the schedule that never touched the tuple — with derived joins,
        a min witness and a float-free sum all riding on it."""
        program = _churn_program()
        e1 = Tup("e", "n", 1)
        f1 = Tup("f", "n", 1, 2)
        f2 = Tup("f", "n", 1, 3)
        plain = [("ins", "n", e1), ("ins", "n", f1), ("ins", "n", f2)]
        churned = plain + [
            ("del", "n", f1), ("ins", "n", f1),   # witness flap
            ("del", "n", e1), ("ins", "n", e1),   # join-side flap
        ]
        base = _drive(DifferentialDatalogApp, program, plain,
                      t_of=lambda _i: 0.0)
        churn = _drive(DifferentialDatalogApp, program, churned,
                       t_of=lambda _i: 0.0)
        assert base[2] == churn[2]   # snapshots, bit for bit
        assert base[1] == churn[1]

    def test_churn_batch_nets_to_empty_delta(self):
        program = _churn_program()
        app = DifferentialDatalogApp("n", program)
        e1 = Tup("e", "n", 1)
        f1 = Tup("f", "n", 1, 2)
        outputs, delta = app.apply_delta(
            [("ins", e1), ("ins", f1)], 0.0
        )
        assert not delta.is_empty()
        assert delta.weight(f1) == 1
        assert delta.retractions() == []
        churn_out, churn_delta = app.apply_delta(
            [("del", f1), ("ins", f1)], 0.0
        )
        # The flap really ran (Und then Der on the join head and the
        # aggregates) but its net semantic change is nothing.
        assert any(kind == "und" for kind, *_rest in map(_observe, churn_out))
        assert churn_delta.is_empty()
        assert app.retractions_applied > 0

    def test_apply_delta_outputs_match_unbatched(self):
        program = _churn_program()
        ops = [("ins", Tup("e", "n", 1)), ("ins", Tup("f", "n", 1, 2)),
               ("del", Tup("f", "n", 1, 2)), ("ins", Tup("f", "n", 1, 5))]
        batched_app = DifferentialDatalogApp("n", program)
        batched, _delta = batched_app.apply_delta(ops, 0.0)
        plain_app = DifferentialDatalogApp("n", program)
        plain = []
        for kind, tup in ops:
            handler = (plain_app.handle_insert if kind == "ins"
                       else plain_app.handle_delete)
            plain.extend(handler(tup, 0.0))
        assert list(map(_observe, batched)) == list(map(_observe, plain))


def _routing_tuples(program_links, nodes):
    return st.lists(
        st.tuples(
            st.sampled_from(["ins", "del"]),
            st.sampled_from(nodes),
        ).flatmap(lambda kn: st.sampled_from(program_links[kn[1]]).map(
            lambda tup: (kn[0], kn[1], tup))),
        min_size=1, max_size=16,
    )


class TestRecursiveMinMaxApps:
    """The ND302/ND305 programs — recursion through a min aggregate —
    under link churn: the support re-derivation path, end to end."""

    MC_NODES = ("a", "b", "c")
    MC_LINKS = {
        "a": [mc_link("a", "b", 1), mc_link("a", "c", 5)],
        "b": [mc_link("b", "a", 1), mc_link("b", "c", 2)],
        "c": [mc_link("c", "a", 5), mc_link("c", "b", 2)],
    }
    PV_LINKS = {
        "a": [pv_link("a", "b"), pv_link("a", "c")],
        "b": [pv_link("b", "a"), pv_link("b", "c")],
        "c": [pv_link("c", "a"), pv_link("c", "b")],
    }

    @given(_routing_tuples(MC_LINKS, MC_NODES))
    @settings(max_examples=40, deadline=None)
    def test_mincost_three_way_identical(self, ops):
        program = mincost_program()
        differential = _drive(DifferentialDatalogApp, program, ops,
                              nodes=self.MC_NODES)
        indexed = _drive(DatalogApp, program, ops, nodes=self.MC_NODES)
        naive = _drive(NaiveDatalogApp, program, ops, nodes=self.MC_NODES)
        assert differential[0] == indexed[0] == naive[0]
        assert differential[1] == indexed[1] == naive[1]
        assert differential[2] == indexed[2] == naive[2]

    @given(_routing_tuples(MC_LINKS, MC_NODES), st.integers(0, 15))
    @settings(max_examples=25, deadline=None)
    def test_mincost_restore_mid_churn(self, ops, cut):
        cut = min(cut, len(ops) - 1)
        program = mincost_program()
        resumed = _drive(DifferentialDatalogApp, program, ops,
                         nodes=self.MC_NODES, restore_at=cut)
        straight = _drive(DifferentialDatalogApp, program, ops,
                          nodes=self.MC_NODES)
        assert resumed[0] == straight[0]
        assert resumed[2] == straight[2]

    @given(_routing_tuples(PV_LINKS, MC_NODES))
    @settings(max_examples=40, deadline=None)
    def test_pathvector_three_way_identical(self, ops):
        program = pathvector_program()
        differential = _drive(DifferentialDatalogApp, program, ops,
                              nodes=self.MC_NODES)
        indexed = _drive(DatalogApp, program, ops, nodes=self.MC_NODES)
        naive = _drive(NaiveDatalogApp, program, ops, nodes=self.MC_NODES)
        assert differential[0] == indexed[0] == naive[0]
        assert differential[1] == indexed[1] == naive[1]
        assert differential[2] == indexed[2] == naive[2]

    def test_witness_deletion_counts_rederivation(self):
        """Deleting the best link forces the min groups to re-derive from
        their remaining supports — visible on the counter, with the route
        healing through the alternative path."""
        program = mincost_program()
        apps = {n: DifferentialDatalogApp(n, program)
                for n in self.MC_NODES}
        queue = []

        def absorb(outputs):
            for out in outputs:
                if isinstance(out, Snd):
                    queue.append(out.msg)
            while queue:
                msg = queue.pop(0)
                for out in apps[msg.dst].handle_receive(msg, 0.0):
                    if isinstance(out, Snd):
                        queue.append(out.msg)

        for node, links in self.MC_LINKS.items():
            for tup in links:
                absorb(apps[node].handle_insert(tup, 0.0))
        best = Tup("bestCost", "a", "b", 1)     # the direct link wins
        assert apps["a"].has_tuple(best)
        before = apps["a"].support_rederivations
        absorb(apps["a"].handle_delete(mc_link("a", "b", 1), 0.0))
        assert apps["a"].support_rederivations > before
        healed = Tup("bestCost", "a", "b", 7)   # re-routes via c (5 + 2)
        assert apps["a"].has_tuple(healed)
        assert not apps["a"].has_tuple(best)
        assert apps["a"].retractions_applied > 0
