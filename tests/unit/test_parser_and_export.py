"""The DDlog-style text parser and the graph exporters."""

import json

import pytest

from repro.datalog import DatalogApp, MaybeRule, AggregateRule, Rule, choice_tuple
from repro.datalog.parser import parse_program, parse_rules
from repro.model import Tup
from repro.provgraph.export import to_dot, to_json
from repro.util.errors import ConfigurationError

MINCOST_TEXT = """
# MinCost (paper Section 3.3)
R1: cost(@X, Y, Y, K) :- link(@X, Y, K).
R2: cost(@C, D, X, K1+K2) :- link(@X, C, K1), bestCost(@X, D, K2),
    C != D, K1+K2 <= 255.
R3: bestCost(@X, D, min<K>) :- cost(@X, D, Z, K).
"""


class TestParser:
    def test_parses_all_rules(self):
        rules = parse_rules(MINCOST_TEXT)
        assert [r.name for r in rules] == ["R1", "R2", "R3"]
        assert isinstance(rules[0], Rule)
        assert isinstance(rules[2], AggregateRule)
        assert rules[2].func == "min"

    def test_parsed_program_computes_mincost(self):
        program = parse_program(MINCOST_TEXT)
        apps = {n: DatalogApp(n, program) for n in "bcd"}

        def drive(outputs, t):
            from repro.model import Snd
            for out in outputs:
                if isinstance(out, Snd):
                    m = out.msg
                    drive(apps[m.dst].handle_receive(m, t), t)

        links = [("b", "d", 3), ("d", "b", 3), ("b", "c", 2),
                 ("c", "b", 2), ("c", "d", 5), ("d", "c", 5)]
        for index, (x, y, k) in enumerate(links):
            drive(apps[x].handle_insert(Tup("link", x, y, k),
                                        float(index)), float(index))
        assert apps["c"].has_tuple(Tup("bestCost", "c", "d", 5))

    def test_parsed_program_matches_handwritten(self):
        from repro.apps.mincost import mincost_program
        parsed = parse_program(MINCOST_TEXT)
        hand = mincost_program()

        def run(program):
            app = DatalogApp("n", program)
            app.handle_insert(Tup("link", "n", "m", 3), 0.0)
            app.handle_insert(Tup("link", "n", "p", 1), 1.0)
            return set(app.tuples_of("cost")) | set(app.tuples_of("bestCost"))

        assert run(parsed) == run(hand)

    def test_maybe_rule_syntax(self):
        program = parse_program(
            "M: sel(@X, K) :~ opt(@X, K).\n"
        )
        rule = program.rules[0]
        assert isinstance(rule, MaybeRule)
        app = DatalogApp("n", program)
        app.handle_insert(Tup("opt", "n", 1), 0.0)
        assert not app.has_tuple(Tup("sel", "n", 1))
        app.handle_insert(choice_tuple("M", "n", 1), 1.0)
        assert app.has_tuple(Tup("sel", "n", 1))

    def test_string_and_numeric_constants(self):
        program = parse_program(
            "R: out(@X, 'hello', 42) :- trigger(@X).\n"
        )
        app = DatalogApp("n", program)
        app.handle_insert(Tup("trigger", "n"), 0.0)
        assert app.has_tuple(Tup("out", "n", "hello", 42))

    def test_guard_operators(self):
        program = parse_program(
            "R: big(@X, K) :- v(@X, K), K >= 10, K != 13.\n"
        )
        app = DatalogApp("n", program)
        app.handle_insert(Tup("v", "n", 5), 0.0)
        app.handle_insert(Tup("v", "n", 13), 1.0)
        app.handle_insert(Tup("v", "n", 20), 2.0)
        assert app.tuples_of("big") == [Tup("big", "n", 20)]

    def test_lowercase_name_is_constant(self):
        program = parse_program("R: out(@X, foo) :- t(@X, foo).\n")
        app = DatalogApp("n", program)
        app.handle_insert(Tup("t", "n", "foo"), 0.0)
        assert app.has_tuple(Tup("out", "n", "foo"))
        app2 = DatalogApp("n", program)
        app2.handle_insert(Tup("t", "n", "bar"), 0.0)
        assert not app2.tuples_of("out")

    def test_syntax_errors_rejected(self):
        for bad in (
            "R: head(@X) :- .",                 # empty body clause
            "R: head(@X)",                      # missing arrow
            "R head(@X) :- b(@X).",             # missing colon
            "R: min<K>(@X) :- b(@X, K).",       # agg outside atom args
        ):
            with pytest.raises(ConfigurationError):
                parse_program(bad)

    def test_comments_and_whitespace_ignored(self):
        rules = parse_rules("""
            # leading comment
            R1: a(@X) :- b(@X).   # trailing comment

            R2: c(@X) :- a(@X).
        """)
        assert len(rules) == 2


class TestExport:
    @pytest.fixture
    def result(self, mincost_query):
        dep, nodes, qp = mincost_query
        from repro.apps.mincost import best_cost
        return qp.why(best_cost("c", "d", 5))

    def test_dot_contains_every_vertex(self, result):
        dot = to_dot(result.graph, title="fig2")
        assert dot.startswith("digraph provenance")
        assert dot.count("[label=") == len(result.graph)
        assert "->" in dot

    def test_dot_colors_track_verdicts(self, result):
        dot = to_dot(result.graph)
        assert "color=black" in dot
        assert "color=red3" not in dot  # healthy run

    def test_json_round_trips(self, result):
        blob = json.loads(to_json(result.graph))
        assert len(blob["vertices"]) == len(result.graph)
        assert len(blob["edges"]) == result.graph.edge_count()
        ids = {v["id"] for v in blob["vertices"]}
        for a, b in blob["edges"]:
            assert a in ids and b in ids

    def test_json_marks_colors(self, result):
        blob = json.loads(to_json(result.graph))
        assert all(v["color"] == "black" for v in blob["vertices"])
