"""Canonical serialization: determinism, distinctness, type coverage."""

import pytest

from repro.model import Tup
from repro.util.serialization import canonical_bytes, canonical_size


class TestScalars:
    def test_none(self):
        assert canonical_bytes(None) == b"N"

    def test_booleans_distinct_from_ints(self):
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(False) != canonical_bytes(0)

    def test_int_roundtrip_stability(self):
        assert canonical_bytes(12345) == canonical_bytes(12345)

    def test_large_int(self):
        big = 2 ** 4096 + 17
        assert canonical_bytes(big) == canonical_bytes(big)
        assert canonical_bytes(big) != canonical_bytes(big + 1)

    def test_negative_int(self):
        assert canonical_bytes(-5) != canonical_bytes(5)

    def test_float(self):
        assert canonical_bytes(1.5) == canonical_bytes(1.5)
        assert canonical_bytes(1.5) != canonical_bytes(1.25)

    def test_float_distinct_from_int(self):
        assert canonical_bytes(1.0) != canonical_bytes(1)

    def test_str_bytes_distinct(self):
        assert canonical_bytes("ab") != canonical_bytes(b"ab")

    def test_unicode(self):
        assert canonical_bytes("τ@n") == canonical_bytes("τ@n")


class TestContainers:
    def test_tuple_vs_list_distinct(self):
        assert canonical_bytes((1, 2)) != canonical_bytes([1, 2])

    def test_nesting_unambiguous(self):
        # ((1,2),3) must differ from (1,(2,3)) and from (1,2,3).
        a = canonical_bytes(((1, 2), 3))
        b = canonical_bytes((1, (2, 3)))
        c = canonical_bytes((1, 2, 3))
        assert len({a, b, c}) == 3

    def test_dict_key_order_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == \
            canonical_bytes({"b": 2, "a": 1})

    def test_dict_distinct_values(self):
        assert canonical_bytes({"a": 1}) != canonical_bytes({"a": 2})

    def test_frozenset_order_irrelevant(self):
        assert canonical_bytes(frozenset([1, 2, 3])) == \
            canonical_bytes(frozenset([3, 1, 2]))

    def test_empty_containers_distinct(self):
        values = [(), [], {}, frozenset()]
        encodings = {canonical_bytes(v) for v in values}
        assert len(encodings) == 4


class TestObjects:
    def test_tup_canonical_protocol(self):
        t = Tup("link", "a", "b", 3)
        assert canonical_bytes(t) == canonical_bytes(t.canonical())

    def test_tup_loc_matters(self):
        assert canonical_bytes(Tup("r", "a", 1)) != \
            canonical_bytes(Tup("r", "b", 1))

    def test_unencodable_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    def test_canonical_size_positive(self):
        assert canonical_size(("x", 1, 2.0)) > 0
