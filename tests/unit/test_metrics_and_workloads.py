"""Metrics accounting and synthetic workload generators."""

from repro.metrics import TrafficMeter, StorageReport, QueryStats
from repro.model import Msg, Tup, PLUS
from repro.snp.evidence import (
    TIMESTAMP_OVERHEAD_BYTES, AUTHENTICATOR_BYTES, ACK_BYTES,
)
from repro.snp.log import NodeLog, INS, SND
from repro.workloads import (
    RouteViewsTrace, UpdateEvent, ZipfCorpus,
    tiered_as_topology, ring_edges, random_graph_edges,
)


def _msg(i=0):
    return Msg(PLUS, Tup("r", "b", i), "a", "b", i, 1.0)


class TestTrafficMeter:
    def test_batch_accounting(self):
        meter = TrafficMeter()
        meter.record_batch("a", [_msg(0), _msg(1)])
        totals = meter.totals()
        assert totals["authenticators"] == AUTHENTICATOR_BYTES
        assert totals["provenance"] >= 2 * TIMESTAMP_OVERHEAD_BYTES
        assert totals["baseline"] == sum(m.payload_size()
                                         for m in (_msg(0), _msg(1)))
        assert meter.messages_sent == 2 and meter.batches_sent == 1

    def test_ack_accounting(self):
        meter = TrafficMeter()
        meter.record_ack("b")
        assert meter.totals()["acknowledgments"] == ACK_BYTES

    def test_native_sizer_splits_overhead(self):
        meter = TrafficMeter()
        msg = _msg()
        meter.record_batch("a", [msg],
                           native_sizer=lambda m: (10, "proxy"))
        totals = meter.totals()
        assert totals["baseline"] == 10
        assert totals["proxy"] == msg.payload_size() - 10

    def test_overhead_factor(self):
        meter = TrafficMeter()
        meter.record_batch("a", [_msg()])
        meter.record_ack("b")
        assert meter.overhead_factor() > 1.0

    def test_per_node_isolation(self):
        meter = TrafficMeter()
        meter.record_batch("a", [_msg()])
        assert meter.node_totals("zzz")["baseline"] == 0


class TestStorageReport:
    def test_from_log_breakdown(self):
        log = NodeLog("n")
        log.append(1.0, INS, ("x",))
        msg = _msg()
        log.append(2.0, SND, (msg.canonical(), "b"), aux={"msg": msg})
        report = StorageReport.from_log(log, duration_seconds=60.0)
        assert report.entries == 2
        assert report.message_bytes > 0
        assert report.growth_mb_per_minute() > 0

    def test_zero_duration(self):
        log = NodeLog("n")
        report = StorageReport.from_log(log, duration_seconds=0.0)
        assert report.growth_mb_per_minute() == 0.0


class TestQueryStats:
    def test_turnaround_includes_download(self):
        stats = QueryStats()
        stats.log_bytes = int(QueryStats.DOWNLOAD_BANDWIDTH_BPS)  # 1 second
        assert abs(stats.download_seconds() - 1.0) < 1e-9
        stats.replay_seconds = 0.5
        assert stats.turnaround_seconds() >= 1.5

    def test_merge(self):
        a, b = QueryStats(), QueryStats()
        a.log_bytes, b.log_bytes = 10, 20
        a.merge(b)
        assert a.log_bytes == 30

    def test_merge_covers_every_field(self):
        a, b = QueryStats(), QueryStats()
        for offset, field in enumerate(sorted(vars(b))):
            setattr(b, field, offset + 1)
        a.merge(b)
        for offset, field in enumerate(sorted(vars(b))):
            assert getattr(a, field) == offset + 1, field

    def test_diff_covers_every_field(self):
        # Regression: per-query deltas must be derived from the instance
        # field set, so a newly added counter can never be silently
        # dropped from _diff_stats / delta_since.
        from repro.snp.query import _diff_stats
        before, after = QueryStats(), QueryStats()
        for offset, field in enumerate(sorted(vars(after))):
            setattr(before, field, 1)
            setattr(after, field, offset + 3)
        delta = _diff_stats(before, after)
        assert set(vars(delta)) == set(vars(after))
        for offset, field in enumerate(sorted(vars(after))):
            assert getattr(delta, field) == offset + 2, field

    def test_copy_is_independent(self):
        a = QueryStats()
        a.log_bytes = 7
        b = a.copy()
        b.log_bytes += 1
        assert a.log_bytes == 7 and b.log_bytes == 8


class TestRouteViews:
    def test_event_count(self):
        trace = RouteViewsTrace(n_updates=100, n_prefixes=10, seed=1)
        events = list(trace.events())
        assert len(events) == 100

    def test_withdraw_only_after_announce(self):
        trace = RouteViewsTrace(n_updates=300, n_prefixes=10, seed=2)
        announced = set()
        for event in trace.events():
            if event.kind == UpdateEvent.WITHDRAW:
                assert event.prefix in announced
                announced.discard(event.prefix)
            else:
                assert event.prefix not in announced
                announced.add(event.prefix)

    def test_deterministic(self):
        a = [(e.kind, e.prefix) for e in
             RouteViewsTrace(n_updates=50, seed=3).events()]
        b = [(e.kind, e.prefix) for e in
             RouteViewsTrace(n_updates=50, seed=3).events()]
        assert a == b

    def test_skew_concentrates_updates(self):
        trace = RouteViewsTrace(n_updates=2000, n_prefixes=50, skew=1.5,
                                seed=4)
        counts = {}
        for event in trace.events():
            counts[event.prefix] = counts.get(event.prefix, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] > ranked[-1]


class TestZipfCorpus:
    def test_word_count(self):
        corpus = ZipfCorpus(n_words=500, seed=1)
        assert len(corpus.words()) == 500

    def test_planted_counts_exact(self):
        corpus = ZipfCorpus(n_words=500, seed=1,
                            planted={"squirrel": 7})
        assert corpus.true_count("squirrel") == 7

    def test_splits_cover_everything(self):
        corpus = ZipfCorpus(n_words=100, seed=2)
        splits = corpus.splits(4)
        assert len(splits) == 4
        total = sum(len(s.split()) for s in splits)
        assert total == 100

    def test_deterministic(self):
        assert ZipfCorpus(n_words=50, seed=9).words() == \
            ZipfCorpus(n_words=50, seed=9).words()


class TestTopologies:
    def test_tiered_as_topology_shape(self):
        daemons, prefixes = tiered_as_topology(n_tier1=3, n_mid=4, n_stub=8,
                                               seed=0)
        assert len(daemons) == 15
        assert len(prefixes) == 8
        by_name = {d.asn: d for d in daemons}
        # Relationships are symmetric-consistent.
        for daemon in daemons:
            for nbr, rel in daemon.neighbors.items():
                back = by_name[nbr].neighbors[daemon.asn]
                if rel == "peer":
                    assert back == "peer"
                elif rel == "customer":
                    assert back == "provider"
                else:
                    assert back == "customer"

    def test_ring_edges(self):
        edges = ring_edges(["a", "b", "c"])
        assert len(edges) == 3

    def test_random_graph_connected_ring_base(self):
        names = [f"n{i}" for i in range(10)]
        edges = random_graph_edges(names, degree=4, seed=1)
        for a, b in ring_edges(names):
            assert (a, b) in edges or (b, a) in edges
