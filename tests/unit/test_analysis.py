"""ndlint (repro.datalog.analysis) — diagnostics, SIPS, and the gate.

The mutation corpus is the heart: ~15 deliberately broken programs, each
asserted to be caught with its *specific* diagnostic code — an analyzer
that rejects everything would pass a weaker test. The rest covers the
execution gate (both evaluators refuse unsafe programs), the SIPS
validator, strata, rendering, and the CLI.
"""

import io

import pytest

from repro.datalog import (
    AggregateRule, Atom, DatalogApp, Guard, NaiveDatalogApp, Program,
    ProgramAnalysisError, Rule, Var, analyze,
)
from repro.datalog.analysis import (
    CODES, ERROR, INFO, WARNING, SipJoin, SipStep, rule_sips,
    sip_violations,
)
from repro.datalog.analyze import main as analyze_main
from repro.datalog.parser import parse_program


def _analysis(text):
    return parse_program(text, check=False).analyze()


#: The mutation corpus: (label, program text, expected code, severity).
#: Every program is broken in exactly the named way.
CORPUS = [
    ("unsafe_head_var",
     "R1: p(@X, Y) :- q(@X).",
     "ND101", ERROR),
    ("unsafe_aggregate_group_var",
     "R1: best(@X, D, min<K>) :- c(@X, K).",
     "ND101", ERROR),
    ("unbound_guard_var",
     "R1: p(@X, Y) :- q(@X, Y), Z < Y.",
     "ND102", ERROR),
    ("unbound_expr_var",
     "R1: p(@X, Y+1) :- q(@X).",
     "ND103", ERROR),
    ("arity_clash_between_rules",
     "R1: p(@X) :- q(@X, Y), q(@X, Y).\n"
     "R2: r(@X) :- q(@X).",
     "ND201", ERROR),
    ("arity_clash_with_declaration",
     "input q/3.\n"
     "R1: p(@X) :- q(@X, Y), q(@X, Y).",
     "ND201", ERROR),
    ("arity_clash_within_rule",
     "R1: p(@X) :- q(@X, Y), q(@X, Y, Y).",
     "ND201", ERROR),
    ("column_type_conflict",
     "R1: p(@X) :- q(@X, 1), q(@X, 1).\n"
     "R2: r(@X) :- q(@X, 'one'), q(@X, 'one').",
     "ND202", ERROR),
    ("sum_aggregation_cycle",
     "R1: total(@X, sum<K>) :- p(@X, K).\n"
     "R2: p(@X, K) :- total(@X, K).",
     "ND301", ERROR),
    ("count_cycle_via_longer_path",
     "R1: c(@X, count<K>) :- p(@X, K).\n"
     "R2: q(@X, K) :- c(@X, K).\n"
     "R3: p(@X, K) :- q(@X, K).",
     "ND301", ERROR),
    ("minmax_recursion_is_info",
     "R1: best(@X, min<K>) :- p(@X, K).\n"
     "R2: p(@X, K) :- best(@X, K).",
     "ND302", INFO),
    ("minmax_recursion_flags_retraction_path",
     "R1: best(@X, min<K>) :- p(@X, K).\n"
     "R2: p(@X, K) :- best(@X, K).",
     "ND305", INFO),
    ("dead_recursive_rules",
     "input a/1.\n"
     "output p.\n"
     "R1: p(@X) :- a(@X).\n"
     "R2: q(@X) :- s(@X).\n"
     "R3: s(@X) :- q(@X).",
     "ND501", WARNING),
    ("unreachable_relation",
     "input a/1.\n"
     "output p.\n"
     "R1: p(@X) :- a(@X).\n"
     "R2: s(@X) :- a(@X).",
     "ND502", WARNING),
    ("singleton_variable",
     "R1: p(@X) :- q(@X, Y).",
     "ND503", INFO),
    ("unknown_body_predicate",
     "input a/1.\n"
     "R1: p(@X) :- b(@X).",
     "ND504", ERROR),
    ("unused_declared_input",
     "input a/1.\n"
     "input z/1.\n"
     "output p.\n"
     "R1: p(@X) :- a(@X).",
     "ND505", WARNING),
]


class TestMutationCorpus:
    @pytest.mark.parametrize(
        "label,text,code,severity",
        CORPUS, ids=[entry[0] for entry in CORPUS])
    def test_caught_with_the_right_code(self, label, text, code, severity):
        analysis = _analysis(text)
        hits = analysis.by_code(code)
        assert hits, (
            f"{label}: expected {code}, got "
            f"{[d.code for d in analysis.diagnostics]}"
        )
        assert all(d.severity == severity for d in hits)

    @pytest.mark.parametrize(
        "label,text,code,severity",
        [entry for entry in CORPUS if entry[3] == ERROR],
        ids=[entry[0] for entry in CORPUS if entry[3] == ERROR])
    def test_errors_gate_parse_program(self, label, text, code, severity):
        with pytest.raises(ProgramAnalysisError) as excinfo:
            parse_program(text)
        assert any(d.code == code for d in excinfo.value.diagnostics)

    @pytest.mark.parametrize(
        "label,text,code,severity",
        [entry for entry in CORPUS if entry[3] != ERROR],
        ids=[entry[0] for entry in CORPUS if entry[3] != ERROR])
    def test_non_errors_do_not_gate(self, label, text, code, severity):
        program = parse_program(text)   # must not raise
        assert program.analyze().ok

    def test_every_corpus_code_is_documented(self):
        for _label, _text, code, _severity in CORPUS:
            assert code in CODES

    def test_wildcard_underscore_silences_singleton(self):
        assert not _analysis("R1: p(@X) :- q(@X, _Y).").by_code("ND503")

    def test_singleton_not_double_reported_with_nd101(self):
        analysis = _analysis("R1: p(@X, Y) :- q(@X).")
        assert analysis.by_code("ND101")
        assert not analysis.by_code("ND503")

    def test_count_output_var_is_safe(self):
        # count<N> binds N to the group size during aggregation; a head
        # that carries it without any body occurrence is the idiom, not
        # an unsafe variable or a wildcard.
        analysis = _analysis(
            "input done/2.\noutput c.\n"
            "R1: c(@X, count<N>) :- done(@X, _M).")
        assert not analysis.by_code("ND101")
        assert not analysis.by_code("ND503")
        assert analysis.ok

    def test_other_aggregates_still_need_bound_agg_var(self):
        for func in ("min", "max", "sum"):
            analysis = _analysis(
                f"R1: c(@X, {func}<N>) :- done(@X, M).")
            assert analysis.by_code("ND101"), func


class TestDiagnosticPrecision:
    def test_span_points_at_the_offending_variable(self):
        text = "R1: p(@X, Y) :- q(@X)."
        diag = _analysis(text).by_code("ND101")[0]
        assert diag.span is not None
        assert diag.span.line == 1
        assert text[diag.span.col - 1] == "Y"
        assert diag.rule == "R1"
        assert diag.variable == "Y"
        assert diag.hint

    def test_format_with_filename(self):
        diag = _analysis("R1: p(@X, Y) :- q(@X).").by_code("ND101")[0]
        line = diag.format(filename="prog.ndl")
        assert line.startswith("prog.ndl:1:")
        assert "error ND101" in line

    def test_render_draws_carets(self):
        text = "R1: p(@X, Y) :- q(@X)."
        analysis = _analysis(text)
        report = analysis.render(source=text, filename="prog.ndl")
        assert "^" in report
        assert text in report
        assert "hint:" in report

    def test_render_clean(self):
        analysis = _analysis("input q/2.\noutput p.\n"
                             "R1: p(@X, Y) :- q(@X, Y).")
        assert analysis.ok
        assert analysis.render() == "clean: no diagnostics"


class TestStrata:
    def test_dependencies_come_first(self):
        analysis = _analysis(
            "R1: p(@X, Y) :- q(@X, Y).\n"
            "R2: r(@X, Y) :- p(@X, Y)."
        )
        order = {rel: i for i, stratum in enumerate(analysis.strata)
                 for rel in stratum}
        assert order["q"] < order["p"] < order["r"]

    def test_recursive_relations_share_a_stratum(self):
        analysis = _analysis(
            "R1: best(@X, min<K>) :- p(@X, K).\n"
            "R2: p(@X, K) :- best(@X, K).\n"
            "R3: p(@X, K) :- base(@X, K)."
        )
        stratum = next(s for s in analysis.strata if "p" in s)
        assert "best" in stratum

    def test_nd305_paired_with_nd302_on_recursive_minmax(self):
        analysis = _analysis(
            "R1: best(@X, min<K>) :- p(@X, K).\n"
            "R2: p(@X, K) :- best(@X, K)."
        )
        assert len(analysis.by_code("ND302")) == 1
        hits = analysis.by_code("ND305")
        assert len(hits) == 1
        assert hits[0].severity == INFO
        assert hits[0].rule == "R1"
        assert "support" in hits[0].message

    def test_nd305_not_emitted_for_acyclic_minmax(self):
        analysis = _analysis(
            "R1: best(@X, min<K>) :- p(@X, K)."
        )
        assert not analysis.by_code("ND302")
        assert not analysis.by_code("ND305")


class TestSipsValidator:
    def _rule(self):
        X, Y = Var("X"), Var("Y")
        return Rule(
            "R",
            head=Atom("h", X, Y),
            body=[Atom("q", X), Atom("r", X, Y)],
            guards=[Guard(lambda b: b["Y"] > 0, vars=(Y,), label="Y>0")],
        )

    def test_built_schedules_are_always_valid(self):
        rule = self._rule()
        for join in rule_sips(rule):
            assert sip_violations(rule, join) == []

    def test_premature_guard_is_detected(self):
        rule = self._rule()
        # Hand-built schedule firing the Y guard on the trigger bindings
        # of q(@X) — before r(@X, Y) has bound Y.
        bad = SipJoin(
            trigger_pos=0,
            pre_guards=(0,),
            steps=(SipStep(1, frozenset({"X"}), frozenset({"X", "Y"}),
                           ()),),
        )
        assert sip_violations(rule, bad) == [0]

    def test_nd401_reported_for_premature_schedule(self):
        from repro.datalog.analysis import _pass_binding
        rule = self._rule()
        diags = []
        _pass_binding([rule], set(), diags)
        assert not [d for d in diags if d.code == "ND401"]


class TestExecutionGate:
    def _unsafe_program(self):
        X, Y = Var("X"), Var("Y")
        return Program([Rule("R", Atom("p", X, Y), [Atom("q", X)])])

    @pytest.mark.parametrize("app_cls", [DatalogApp, NaiveDatalogApp])
    def test_both_evaluators_refuse_unsafe_programs(self, app_cls):
        with pytest.raises(ProgramAnalysisError) as excinfo:
            app_cls("n1", self._unsafe_program())
        assert any(d.code == "ND101" for d in excinfo.value.diagnostics)
        assert "unsafe_skip_analysis" in str(excinfo.value)

    @pytest.mark.parametrize("app_cls", [DatalogApp, NaiveDatalogApp])
    def test_escape_hatch(self, app_cls):
        app = app_cls("n1", self._unsafe_program(),
                      unsafe_skip_analysis=True)
        assert app.node_id == "n1"

    def test_analysis_memoized_and_invalidated_by_add(self):
        X = Var("X")
        program = Program([Rule("R", Atom("p", X), [Atom("q", X)])])
        first = program.analyze()
        assert program.analyze() is first
        program.add(Rule("R2", Atom("r", X), [Atom("p", X)]))
        second = program.analyze()
        assert second is not first
        assert len(second.rules) == 2

    def test_opaque_guard_is_only_an_info(self):
        X = Var("X")
        program = Program([
            Rule("R", Atom("p", X), [Atom("q", X)],
                 guards=[Guard(lambda b: True, label="opaque")]),
        ])
        analysis = program.analyze()
        assert analysis.ok
        assert analysis.by_code("ND104")
        DatalogApp("n1", program)   # gate passes

    def test_aggregate_rules_analyzed_too(self):
        X, K, D = Var("X"), Var("K"), Var("D")
        program = Program([
            AggregateRule("A", Atom("best", X, D, K),
                          [Atom("c", X, K)], agg_var=K, func="min"),
        ])
        with pytest.raises(ProgramAnalysisError):
            DatalogApp("n1", program)


class TestAppsAreClean:
    def test_all_builtin_apps_pass_ndlint(self):
        from repro.apps import lint_targets
        for name, program in lint_targets().items():
            analysis = program.analyze()
            assert analysis.errors == (), (
                f"{name}: {[d.format() for d in analysis.errors]}"
            )

    def test_analyze_accepts_plain_rule_lists(self):
        X = Var("X")
        rules = [Rule("R", Atom("p", X), [Atom("q", X)])]
        assert analyze(rules).ok


class TestCli:
    def test_file_mode_clean(self, tmp_path):
        path = tmp_path / "ok.ndl"
        path.write_text("input q/2.\noutput p.\n"
                        "R1: p(@X, Y) :- q(@X, Y).\n")
        out = io.StringIO()
        assert analyze_main([str(path)], out=out) == 0
        assert "clean" in out.getvalue()

    def test_file_mode_errors_exit_nonzero_with_carets(self, tmp_path):
        path = tmp_path / "bad.ndl"
        path.write_text("R1: p(@X, Y) :- q(@X).\n")
        out = io.StringIO()
        assert analyze_main([str(path)], out=out) == 1
        report = out.getvalue()
        assert "ND101" in report
        assert "^" in report

    def test_parse_error_reported_with_location(self, tmp_path):
        path = tmp_path / "syntax.ndl"
        path.write_text("R1: p(@X :- q(@X).\n")
        out = io.StringIO()
        assert analyze_main([str(path)], out=out) == 1
        assert "error" in out.getvalue()

    def test_apps_mode_is_clean(self):
        out = io.StringIO()
        assert analyze_main(["--apps"], out=out) == 0
        report = out.getvalue()
        for name in ("mincost", "pathvector", "chord", "bgp", "mapreduce"):
            assert f"{name}: ok" in report

    def test_strata_flag(self, tmp_path):
        path = tmp_path / "ok.ndl"
        path.write_text("input q/2.\noutput p.\n"
                        "R1: p(@X, Y) :- q(@X, Y).\n")
        out = io.StringIO()
        assert analyze_main([str(path), "--strata"], out=out) == 0
        assert "stratum 0" in out.getvalue()
