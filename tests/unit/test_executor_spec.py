"""Executor spec parsing (``make_executor``), including the bare
``"process"``/``"thread"`` specs that auto-size to ``os.cpu_count()``
clamped to ``MAX_DEFAULT_WORKERS``."""

import pytest

import repro.snp.executor as executor_mod
from repro.snp.executor import (
    MAX_DEFAULT_WORKERS, ProcessExecutor, SerialExecutor, ThreadedExecutor,
    WireCheckExecutor, default_worker_count, make_executor,
)


class TestExplicitSpecs:
    def test_none_and_serial(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_int_specs(self):
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ThreadedExecutor) and pool.workers == 3

    def test_thread_and_process_with_counts(self):
        assert make_executor("thread:4").workers == 4
        pool = make_executor("process:2")
        assert isinstance(pool, ProcessExecutor) and pool.workers == 2
        pool.close()

    def test_wire(self):
        assert isinstance(make_executor("wire"), WireCheckExecutor)

    def test_invalid_specs_rejected(self):
        for bad in (0, -2, True, "bogus", "process:x", 3.5):
            with pytest.raises((ValueError, TypeError)):
                make_executor(bad)

    def test_instances_pass_through(self):
        pool = ThreadedExecutor(2)
        assert make_executor(pool) is pool


class TestDefaultWorkerCount:
    def test_bare_process_spec_uses_cpu_count(self, monkeypatch):
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 3)
        pool = make_executor("process")
        assert isinstance(pool, ProcessExecutor) and pool.workers == 3
        pool.close()

    def test_bare_thread_spec_uses_cpu_count(self, monkeypatch):
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 3)
        pool = make_executor("thread")
        assert isinstance(pool, ThreadedExecutor) and pool.workers == 3

    def test_clamped_to_ceiling(self, monkeypatch):
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 128)
        assert default_worker_count() == MAX_DEFAULT_WORKERS
        pool = make_executor("process")
        assert pool.workers == MAX_DEFAULT_WORKERS
        pool.close()

    def test_unknown_cpu_count_falls_back_to_one(self, monkeypatch):
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: None)
        assert default_worker_count() == 1
        # A one-worker thread spec degrades to the serial executor,
        # exactly like make_executor(1).
        assert isinstance(make_executor("thread"), SerialExecutor)
