"""wirelint (tools/wirelint.py) — the serialization-contract lint.

Two directions: the real source tree must be clean (this is the same
gate CI runs), and seeded violations in a synthetic tree must each be
caught with the right code — otherwise "clean" means nothing.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_wirelint():
    spec = importlib.util.spec_from_file_location(
        "wirelint", REPO_ROOT / "tools" / "wirelint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


wirelint = _load_wirelint()


def _make_tree(tmp_path, wire_body, extra_modules=()):
    """A minimal repro-shaped tree: repro/model.py + repro/snp/wire.py."""
    (tmp_path / "repro" / "snp").mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (tmp_path / "repro" / "snp" / "__init__.py").write_text("")
    (tmp_path / "repro" / "snp" / "wire.py").write_text(wire_body)
    for rel, body in extra_modules:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
    return tmp_path


class TestRealTreeClean:
    def test_src_is_clean(self):
        violations = wirelint.lint(REPO_ROOT / "src")
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_known_codecs_are_recognized(self):
        """Tup and Msg carry __reduce__ — the index must see them."""
        index = wirelint._class_codec_index(REPO_ROOT / "src")
        assert index["Tup"][1] is True
        assert index["Msg"][1] is True


class TestBoundaryClassCheck:
    def test_codec_less_import_flagged(self, tmp_path):
        root = _make_tree(
            tmp_path,
            "from repro.model import Payload\n",
            extra_modules=[("repro/model.py", "class Payload:\n    pass\n")],
        )
        violations = wirelint.lint(root)
        assert [v.code for v in violations] == ["WL001"]
        assert "Payload" in violations[0].message

    def test_reduce_satisfies_the_contract(self, tmp_path):
        root = _make_tree(
            tmp_path,
            "from repro.model import Payload\n",
            extra_modules=[(
                "repro/model.py",
                "class Payload:\n"
                "    def __reduce__(self):\n"
                "        return (Payload, ())\n",
            )],
        )
        assert wirelint.lint(root) == []

    def test_to_wire_satisfies_the_contract(self, tmp_path):
        root = _make_tree(
            tmp_path,
            "from repro.model import Payload\n",
            extra_modules=[(
                "repro/model.py",
                "class Payload:\n"
                "    def to_wire(self):\n"
                "        return ()\n",
            )],
        )
        assert wirelint.lint(root) == []

    def test_construction_in_wire_is_a_codec(self, tmp_path):
        root = _make_tree(
            tmp_path,
            "from repro.model import Payload\n"
            "def decode(fields):\n"
            "    return Payload(*fields)\n",
            extra_modules=[("repro/model.py", "class Payload:\n    pass\n")],
        )
        assert wirelint.lint(root) == []

    def test_function_imports_are_ignored(self, tmp_path):
        root = _make_tree(
            tmp_path,
            "from repro.model import helper\n",
            extra_modules=[("repro/model.py", "def helper():\n    pass\n")],
        )
        assert wirelint.lint(root) == []


class TestUnorderedIterationCheck:
    @pytest.mark.parametrize("expr,what", [
        ("canonical_bytes(list(d.items()))", ".items()"),
        ("canonical_bytes(list(d.keys()))", ".keys()"),
        ("canonical_bytes(list(d.values()))", ".values()"),
        ("canonical_bytes(set(xs))", "set(...)"),
        ("canonical_bytes(frozenset(xs))", "frozenset(...)"),
        ("signer.sign(tuple(d.items()))", ".items()"),
        ("h.update(bytes(len(set(xs))))", "set(...)"),
    ])
    def test_unsorted_iteration_flagged(self, tmp_path, expr, what):
        root = _make_tree(
            tmp_path,
            "",
            extra_modules=[(
                "repro/snp/hashing_use.py",
                f"def f(d, xs, signer, h):\n    return {expr}\n",
            )],
        )
        violations = wirelint.lint(root)
        assert [v.code for v in violations] == ["WL002"]
        assert what in violations[0].message

    @pytest.mark.parametrize("expr", [
        "canonical_bytes(sorted(d.items()))",
        "canonical_bytes(sorted(set(xs)))",
        "signer.sign(canonical_bytes(sorted(d.values())))",
        "canonical_bytes(list(d))",         # plain iteration, not flagged
        "other_function(d.items())",        # not a sink
    ])
    def test_sorted_or_non_sink_passes(self, tmp_path, expr):
        root = _make_tree(
            tmp_path,
            "",
            extra_modules=[(
                "repro/snp/hashing_use.py",
                f"def f(d, xs, signer):\n    return {expr}\n",
            )],
        )
        assert wirelint.lint(root) == []

    def test_scope_is_limited(self, tmp_path):
        """The determinism rule applies to snp/crypto/util, not apps."""
        root = _make_tree(
            tmp_path,
            "",
            extra_modules=[(
                "repro/apps/stats.py",
                "def f(d):\n"
                "    return canonical_bytes(list(d.items()))\n",
            )],
        )
        assert wirelint.lint(root) == []

    def test_nested_sinks_report_once(self, tmp_path):
        root = _make_tree(
            tmp_path,
            "",
            extra_modules=[(
                "repro/snp/hashing_use.py",
                "def f(d, signer):\n"
                "    return signer.sign(canonical_bytes(list(d.items())))\n",
            )],
        )
        violations = wirelint.lint(root)
        assert len(violations) == 1


class TestCli:
    def test_main_exit_codes(self, tmp_path, capsys):
        clean = _make_tree(tmp_path / "clean", "")
        assert wirelint.main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

        dirty = _make_tree(
            tmp_path / "dirty",
            "from repro.model import Payload\n",
            extra_modules=[("repro/model.py", "class Payload:\n    pass\n")],
        )
        assert wirelint.main([str(dirty)]) == 1
        assert "WL001" in capsys.readouterr().out

    def test_main_usage(self, capsys):
        assert wirelint.main([]) == 2
        capsys.readouterr()
