"""The graph construction algorithm on hand-built histories.

These tests drive the GCA directly with event sequences (no network, no
logs) to pin down the pseudocode's behaviors: vertex/edge construction per
Table 1, the pending/ackpend/unacked bookkeeping, and the red-coloring
rules of Appendix B.6/B.7.
"""

from repro.datalog import Var, Atom, Rule, Program, DatalogApp
from repro.model import Ack, Msg, Tup, PLUS, MINUS
from repro.provgraph.gca import Event, GraphConstructor
from repro.provgraph.vertices import (
    Color, INSERT, DELETE, APPEAR, DISAPPEAR, EXIST, DERIVE, UNDERIVE,
    SEND, RECEIVE, BELIEVE, BELIEVE_APPEAR,
)

X, Y = Var("X"), Var("Y")

LOCAL_RULE = Rule("R", Atom("h", X, Y), [Atom("b", X, Y)])
REMOTE_RULE = Rule("F", Atom("fwd", Y, X), [Atom("b", X, Y)])


def _gca(rules=(LOCAL_RULE,), t_prop=1.0):
    program = Program(list(rules))
    return GraphConstructor(lambda n: DatalogApp(n, program), t_prop=t_prop)


def _ack_for(msg, t):
    return Ack(msg.dst, msg.src, [msg], t)


class TestLocalEvents:
    def test_insert_builds_insert_appear_exist(self):
        gca = _gca()
        tup = Tup("x", "n", 1)
        gca.process(Event(1.0, "n", "ins", tup))
        g = gca.graph
        ins = g.get((INSERT, "n", tup, 1.0))
        app = g.get((APPEAR, "n", tup, 1.0))
        exi = g.get((EXIST, "n", tup, 1.0))
        assert ins and app and exi
        assert g.has_edge(ins, app) and g.has_edge(app, exi)
        assert exi.t_end is None

    def test_delete_closes_exist(self):
        gca = _gca()
        tup = Tup("x", "n", 1)
        gca.process(Event(1.0, "n", "ins", tup))
        gca.process(Event(2.0, "n", "del", tup))
        g = gca.graph
        exi = g.get((EXIST, "n", tup, 1.0))
        dis = g.get((DISAPPEAR, "n", tup, 2.0))
        dele = g.get((DELETE, "n", tup, 2.0))
        assert exi.t_end == 2.0
        assert g.has_edge(dele, dis) and g.has_edge(dis, exi)

    def test_delete_of_nonexistent_is_red(self):
        gca = _gca()
        tup = Tup("x", "n", 1)
        gca.process(Event(1.0, "n", "del", tup))
        dis = gca.graph.get((DISAPPEAR, "n", tup, 1.0))
        assert dis.color == Color.RED

    def test_derivation_vertices_and_edges(self):
        gca = _gca()
        body = Tup("b", "n", 1)
        head = Tup("h", "n", 1)
        gca.process(Event(1.0, "n", "ins", body))
        g = gca.graph
        der = g.get((DERIVE, "n", head, "R", 1.0))
        assert der is not None
        body_appear = g.get((APPEAR, "n", body, 1.0))
        head_appear = g.get((APPEAR, "n", head, 1.0))
        assert g.has_edge(body_appear, der)
        assert g.has_edge(der, head_appear)

    def test_underive_on_delete(self):
        gca = _gca()
        body = Tup("b", "n", 1)
        head = Tup("h", "n", 1)
        gca.process(Event(1.0, "n", "ins", body))
        gca.process(Event(2.0, "n", "del", body))
        g = gca.graph
        und = g.get((UNDERIVE, "n", head, "R", 2.0))
        assert und is not None
        head_exist = g.get((EXIST, "n", head, 1.0))
        assert head_exist.t_end == 2.0

    def test_all_vertices_black_for_correct_history(self):
        gca = _gca()
        tup = Tup("b", "n", 1)
        gca.process(Event(1.0, "n", "ins", tup))
        gca.process(Event(2.0, "n", "del", tup))
        assert not gca.graph.red_vertices()


class TestMessaging:
    def _send_flow(self, gca):
        """A correct remote derivation at node 'a' destined to node 'b'."""
        body = Tup("b", "a", "b")  # REMOTE_RULE: fwd(@b, a)
        gca.process(Event(1.0, "a", "ins", body))
        machine = gca.machines["a"]
        # Recover the message the machine sent (seq 0 to b).
        sends = [v for v in gca.graph.vertices() if v.vtype == SEND]
        assert len(sends) == 1
        return sends[0].msg

    def test_send_vertex_initially_yellow(self):
        gca = _gca((REMOTE_RULE,))
        msg = self._send_flow(gca)
        gca.process(Event(1.0, "a", "snd", msg))
        send = gca.graph.get((SEND, msg.full_key()))
        assert send.color == Color.YELLOW

    def test_ack_turns_send_black(self):
        gca = _gca((REMOTE_RULE,))
        msg = self._send_flow(gca)
        gca.process(Event(1.0, "a", "snd", msg))
        gca.process(Event(1.3, "a", "rcv", _ack_for(msg, 1.2)))
        send = gca.graph.get((SEND, msg.full_key()))
        assert send.color == Color.BLACK

    def test_receive_flow_builds_believe(self):
        gca = _gca((REMOTE_RULE,))
        msg = Msg(PLUS, Tup("fwd", "b", "a"), "a", "b", 0, 1.0)
        gca.process(Event(1.2, "b", "rcv", msg))
        gca.process(Event(1.2, "b", "snd", Ack("b", "a", [msg], 1.2)))
        g = gca.graph
        recv = g.get((RECEIVE, msg.full_key()))
        ba = g.get((BELIEVE_APPEAR, "b", msg.tup, 1.2))
        bel = g.get((BELIEVE, "b", msg.tup, 1.2))
        assert recv.color == Color.BLACK  # acked immediately
        assert g.has_edge(recv, ba) and g.has_edge(ba, bel)
        send_stub = g.get((SEND, msg.full_key()))
        assert send_stub.color == Color.YELLOW  # sender side unknown

    def test_unacked_receive_goes_red(self):
        gca = _gca((REMOTE_RULE,))
        msg = Msg(PLUS, Tup("fwd", "b", "a"), "a", "b", 0, 1.0)
        gca.process(Event(1.2, "b", "rcv", msg))
        # Next input arrives without the node having sent the ack.
        gca.process(Event(1.5, "b", "ins", Tup("x", "b", 0)))
        recv = gca.graph.get((RECEIVE, msg.full_key()))
        assert recv.color == Color.RED

    def test_fabricated_send_goes_red(self):
        gca = _gca((REMOTE_RULE,))
        bogus = Msg(PLUS, Tup("fwd", "b", "zzz"), "a", "b", 0, 1.0)
        gca.process(Event(1.0, "a", "snd", bogus))
        send = gca.graph.get((SEND, bogus.full_key()))
        assert send.color == Color.RED

    def test_suppressed_output_goes_red(self):
        gca = _gca((REMOTE_RULE,))
        msg = self._send_flow(gca)
        # The machine produced the output, but no snd event follows; the
        # next input flags it.
        gca.process(Event(2.0, "a", "ins", Tup("x", "a", 0)))
        send = gca.graph.get((SEND, msg.full_key()))
        assert send.color == Color.RED

    def test_stale_unacked_send_goes_red_after_2tprop(self):
        gca = _gca((REMOTE_RULE,), t_prop=0.1)
        msg = self._send_flow(gca)
        gca.process(Event(1.0, "a", "snd", msg))
        gca.process(Event(5.0, "a", "ins", Tup("x", "a", 0)))
        send = gca.graph.get((SEND, msg.full_key()))
        assert send.color == Color.RED

    def test_alarmed_unacked_send_stays_yellow(self):
        gca = _gca((REMOTE_RULE,), t_prop=0.1)
        msg = self._send_flow(gca)
        gca.known_alarm_msg_ids = frozenset([msg.msg_id()])
        gca.process(Event(1.0, "a", "snd", msg))
        gca.process(Event(5.0, "a", "ins", Tup("x", "a", 0)))
        send = gca.graph.get((SEND, msg.full_key()))
        assert send.color == Color.YELLOW

    def test_same_seq_different_content_not_aliased(self):
        gca = _gca((REMOTE_RULE,))
        msg = self._send_flow(gca)
        forged = Msg(msg.polarity, Tup("fwd", "b", "forged"), msg.src,
                     msg.dst, msg.seq, msg.t_sent)
        gca.process(Event(1.0, "a", "snd", forged))
        forged_send = gca.graph.get((SEND, forged.full_key()))
        honest_send = gca.graph.get((SEND, msg.full_key()))
        assert forged_send.color == Color.RED
        assert forged_send is not honest_send

    def test_extra_msg_creates_red_pair(self):
        gca = _gca()
        msg = Msg(PLUS, Tup("fwd", "b", "a"), "a", "b", 0, 1.0)
        gca.handle_extra_msg(msg)
        send = gca.graph.get((SEND, msg.full_key()))
        recv = gca.graph.get((RECEIVE, msg.full_key()))
        assert send.color == Color.RED and recv.color == Color.RED

    def test_extra_msg_does_not_recolor_existing(self):
        gca = _gca((REMOTE_RULE,))
        msg = self._send_flow(gca)
        gca.process(Event(1.0, "a", "snd", msg))
        gca.process(Event(1.3, "a", "rcv", _ack_for(msg, 1.2)))
        gca.handle_extra_msg(msg)
        send = gca.graph.get((SEND, msg.full_key()))
        assert send.color == Color.BLACK


class TestCheckpointSeeding:
    def test_seeded_vertices_are_open_and_flagged(self):
        gca = _gca()
        tup = Tup("b", "n", 1)
        gca.seed_node("n", [(tup, 0.5)], [(Tup("r", "n", 2), "p", 0.6)])
        exist = gca.graph.open_interval(EXIST, "n", tup)
        believe = gca.graph.open_interval(BELIEVE, "n", Tup("r", "n", 2))
        assert exist.seeded and believe.seeded
        assert exist.t == 0.5

    def test_replay_continues_from_seed(self):
        program = Program([LOCAL_RULE])
        gca = GraphConstructor(lambda n: DatalogApp(n, program))
        machine = gca.machine("n")
        body = Tup("b", "n", 1)
        # Simulate a checkpoint where body already exists.
        machine.store.add_base(body, 0.5)
        gca.seed_node("n", [(body, 0.5)], [])
        gca.process(Event(2.0, "n", "del", body))
        exist = gca.graph.get((EXIST, "n", body, 0.5))
        assert exist.t_end == 2.0
